//! Machine/rank symmetry: the orbit relation, the static symmetry
//! profile, and the canonical-representative map used to intern one state
//! per orbit.
//!
//! ## The orbit relation
//!
//! The deployment is one group member per machine plus the abstract Vcl's
//! rank table, so a product state has two independent label spaces:
//!
//! * **machine ids** — a member's instance index encodes its machine
//!   (`n_suggested + g * n_hosts + h`), the Vcl stores a host per rank and
//!   a free-host list, and in-flight/inbox message endpoints name member
//!   instances. Machines that no send expression can statically single
//!   out are interchangeable: relabelling them commutes with every
//!   firing rule (automata are per-class, the protocol treats hosts as
//!   opaque — see `AbstractVcl::relabel`).
//! * **rank ids** — ranks appear only in the Vcl table and in the
//!   op-program communication skeleton. When the skeleton is empty or
//!   complete, rank ids are interchangeable the same way.
//!
//! Two states are in the same orbit iff some [`Perm`] maps one onto the
//! other. Interning only the canonical representative shrinks the
//! reachable set by up to the orbit size (`(n_hosts - pinned)! × n_ranks!`
//! in the fully symmetric case) without losing any verdict: a freeze is
//! reachable from a state iff it is reachable from every orbit member, at
//! identical (faults, steps) cost.
//!
//! ## Soundness gate: the symmetry profile
//!
//! [`profile_of`] decides, per scenario, which labels are actually
//! opaque. A machine is **pinned** (excluded from permutation) when any
//! `Send` to a group indexes it through an expression with a known
//! constant range; if a group index is *sometimes* a runtime-known value
//! that the range analysis cannot bound, machine symmetry is switched off
//! entirely. The "never known" proof is a fixpoint over variable
//! definitions (`maybe_known`): the builtins' `FAIL_RANDOM(0, N)` indices
//! stay `Top` forever, so their fan-out is host-uniform and symmetric.
//! Rank symmetry requires the comm skeleton to be empty or complete.
//! Everything here over-approximates asymmetry: a wrongly-pinned host only
//! costs reduction, never correctness.

use failmpi_backend::BackendKind;
use failmpi_core::lang::compile::{Action, Class, Dest, Expr, Scenario};
use failmpi_mpichv::AbstractPhase;

use super::explore::{Ctx, InstState, MoveKind, ProdState, VarVal};
use super::ModelCheckConfig;

/// A product-state relabelling: `hosts[h]` is machine `h`'s new id,
/// `ranks[r]` is rank `r`'s new id. Suggested (machine-less) instances
/// are fixed points by construction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) struct Perm {
    pub(crate) hosts: Vec<u8>,
    pub(crate) ranks: Vec<u8>,
}

impl Perm {
    pub(crate) fn identity(n_hosts: usize, n_ranks: usize) -> Perm {
        Perm {
            hosts: (0..n_hosts as u8).collect(),
            ranks: (0..n_ranks as u8).collect(),
        }
    }

    pub(crate) fn is_identity(&self) -> bool {
        self.hosts.iter().enumerate().all(|(i, &v)| v as usize == i)
            && self.ranks.iter().enumerate().all(|(i, &v)| v as usize == i)
    }

    pub(crate) fn invert(&self) -> Perm {
        let mut hosts = vec![0u8; self.hosts.len()];
        for (i, &v) in self.hosts.iter().enumerate() {
            hosts[v as usize] = i as u8;
        }
        let mut ranks = vec![0u8; self.ranks.len()];
        for (i, &v) in self.ranks.iter().enumerate() {
            ranks[v as usize] = i as u8;
        }
        Perm { hosts, ranks }
    }

    /// `self` then `other`: `(self.then(other))[x] = other[self[x]]`.
    pub(crate) fn then(&self, other: &Perm) -> Perm {
        Perm {
            hosts: self.hosts.iter().map(|&h| other.hosts[h as usize]).collect(),
            ranks: self.ranks.iter().map(|&r| other.ranks[r as usize]).collect(),
        }
    }

    /// Where instance `i` lands: suggested instances are fixed, a group
    /// member follows its machine.
    pub(crate) fn map_inst(&self, ctx: &Ctx, i: usize) -> usize {
        if i < ctx.n_suggested {
            return i;
        }
        let n_hosts = ctx.cfg.n_hosts;
        let g = (i - ctx.n_suggested) / n_hosts;
        let h = (i - ctx.n_suggested) % n_hosts;
        ctx.n_suggested + g * n_hosts + self.hosts[h] as usize
    }

    /// The relabelled product state.
    pub(crate) fn apply_state(&self, ctx: &Ctx, s: &ProdState) -> ProdState {
        let mut insts: Vec<InstState> = s.insts.clone();
        for (i, old) in s.insts.iter().enumerate() {
            let mut st = old.clone();
            for e in &mut st.inbox {
                e.0 = self.map_inst(ctx, e.0 as usize) as u8;
            }
            insts[self.map_inst(ctx, i)] = st;
        }
        let mut msgs: Vec<(u8, u8, u8)> = s
            .msgs
            .iter()
            .map(|&(f, t, m)| {
                (
                    self.map_inst(ctx, f as usize) as u8,
                    self.map_inst(ctx, t as usize) as u8,
                    m,
                )
            })
            .collect();
        msgs.sort_unstable();
        ProdState { insts, msgs, proto: s.proto.relabel(&self.hosts, &self.ranks) }
    }

    /// The same structural move in the relabelled frame.
    pub(crate) fn apply_move(&self, ctx: &Ctx, m: &MoveKind) -> MoveKind {
        match m {
            MoveKind::Deliver { from, to, msg } => MoveKind::Deliver {
                from: self.map_inst(ctx, *from as usize) as u8,
                to: self.map_inst(ctx, *to as usize) as u8,
                msg: *msg,
            },
            MoveKind::Register(r) => MoveKind::Register(self.ranks[*r as usize]),
            MoveKind::Ready(r) => MoveKind::Ready(self.ranks[*r as usize]),
            MoveKind::Breakpoint { rank, holder } => MoveKind::Breakpoint {
                rank: self.ranks[*rank as usize],
                holder: self.map_inst(ctx, *holder),
            },
            MoveKind::Spawn(r) => MoveKind::Spawn(self.ranks[*r as usize]),
            MoveKind::StopClosure(r) => MoveKind::StopClosure(self.ranks[*r as usize]),
            MoveKind::Timer { inst, slot } => MoveKind::Timer {
                inst: self.map_inst(ctx, *inst),
                slot: *slot,
            },
            MoveKind::WaveStart => MoveKind::WaveStart,
            MoveKind::WaveCommit => MoveKind::WaveCommit,
        }
    }
}

/// What the scenario's text allows the reducer to permute.
#[derive(Clone, Debug)]
pub(crate) struct SymmetryProfile {
    /// Machines may be relabelled (modulo `pinned`).
    pub(crate) host_sym: bool,
    /// Machines some send can statically single out; fixed points of every
    /// permutation. Indexed by host id.
    pub(crate) pinned: Vec<bool>,
    /// Rank ids may be relabelled.
    pub(crate) rank_sym: bool,
}

/// Computes the symmetry a scenario (plus op-program skeleton) admits.
pub(crate) fn profile_of(
    sc: &Scenario,
    params: &[i64],
    cfg: &ModelCheckConfig,
    comm_peers: &[Vec<u32>],
) -> SymmetryProfile {
    let n_hosts = cfg.n_hosts;
    let mut pinned = vec![false; n_hosts];
    let mut host_sym = true;
    let mks: Vec<Vec<bool>> = sc.classes.iter().map(|c| class_maybe_known(c, params)).collect();
    for (c, class) in sc.classes.iter().enumerate() {
        for node in &class.nodes {
            for tr in &node.transitions {
                for a in &tr.actions {
                    let Action::Send { dest: Dest::Group(_, idx), .. } = a else {
                        continue;
                    };
                    match idx.const_range(params) {
                        Some((l, h)) => {
                            let lo = l.max(0);
                            let hi = h.min(n_hosts as i64 - 1);
                            if lo <= 0 && hi >= n_hosts as i64 - 1 {
                                // Whole-group fan-out: host-uniform.
                            } else {
                                for p in lo..=hi.max(lo - 1) {
                                    pinned[p as usize] = true;
                                }
                            }
                        }
                        None => {
                            // Unbounded index: symmetric only if it can
                            // never evaluate to a Known host id (then the
                            // send always fans out to the whole group).
                            if expr_maybe_known(idx, &mks[c], params) {
                                host_sym = false;
                            }
                        }
                    }
                }
            }
        }
    }

    // Replica slots are not interchangeable with primary slots (the unit
    // space is heterogeneous), so rank symmetry only applies to the
    // rank-per-unit backends.
    let rank_sym = cfg.backend != BackendKind::Replica
        && cfg.n_ranks >= 2
        && (comm_peers.is_empty()
            || (comm_peers.len() >= cfg.n_ranks
                && (0..cfg.n_ranks).all(|r| comm_peers[r].len() == cfg.n_ranks - 1)));

    SymmetryProfile { host_sym, pinned, rank_sym }
}

/// Fixpoint over a class's variable definitions: `true` means the slot
/// might ever hold a [`VarVal::Known`] value in some reachable state.
fn class_maybe_known(class: &Class, params: &[i64]) -> Vec<bool> {
    let n = class.var_names.len();
    let mut mk = vec![false; n];
    // Initial values: slots the class never initializes start Known(0);
    // initialized slots start at their init expression's abstraction.
    let mut covered = vec![false; n];
    for (slot, _) in &class.var_init {
        covered[*slot] = true;
    }
    if let Some(node0) = class.nodes.first() {
        for (slot, _) in &node0.always {
            covered[*slot] = true;
        }
    }
    for (i, c) in covered.iter().enumerate() {
        if !c {
            mk[i] = true;
        }
    }
    // Probes write Known values directly.
    for (_, slot) in &class.probes {
        mk[*slot] = true;
    }
    loop {
        let mut changed = false;
        let visit = |slot: usize, e: &Expr, mk: &mut Vec<bool>| {
            if !mk[slot] && expr_maybe_known(e, mk, params) {
                mk[slot] = true;
                true
            } else {
                false
            }
        };
        for (slot, e) in &class.var_init {
            changed |= visit(*slot, e, &mut mk);
        }
        for node in &class.nodes {
            for (slot, e) in &node.always {
                changed |= visit(*slot, e, &mut mk);
            }
            for tr in &node.transitions {
                for a in &tr.actions {
                    if let Action::Assign(slot, e) = a {
                        changed |= visit(*slot, e, &mut mk);
                    }
                }
            }
        }
        if !changed {
            return mk;
        }
    }
}

/// Whether `e` can evaluate to [`VarVal::Known`] under `mk`'s slot facts
/// (mirrors [`Ctx::eval`]'s Known-propagation, over-approximated).
fn expr_maybe_known(e: &Expr, mk: &[bool], params: &[i64]) -> bool {
    if e.fold_const(params).is_some() {
        return true;
    }
    match e {
        Expr::Int(_) | Expr::Param(_) => true,
        Expr::Var(i) => mk[*i],
        Expr::Rand(..) => matches!(e.const_range(params), Some((l, h)) if l == h),
        Expr::Bin(_, a, b) => {
            expr_maybe_known(a, mk, params) && expr_maybe_known(b, mk, params)
        }
        Expr::Neg(a) => expr_maybe_known(a, mk, params),
    }
}

// ---------------------------------------------------------------------------
// Canonicalization
// ---------------------------------------------------------------------------

/// One group member's state inside a [`HostKey`]: (node, vars,
/// abstracted inbox, armed, controlled, suspended). Inbox senders become
/// (tag, id-or-group, same-machine) triples.
type MemberKey = (u16, Vec<VarVal>, Vec<(u8, u8, u8, u8)>, Vec<bool>, bool, bool);

/// Everything observable about one machine in one state, with other-machine
/// identities abstracted away so the key is invariant under permutations of
/// the *other* unpinned machines. Imperfect tie-breaking is sound — it only
/// merges fewer orbits.
#[derive(PartialEq, Eq, PartialOrd, Ord)]
struct HostKey {
    /// Per-group member state.
    members: Vec<MemberKey>,
    /// The Vcl's view: hosted (phase, incarnation) multiset + free-list slot.
    proto: (Vec<(AbstractPhase, u8)>, Option<usize>),
    /// In-flight messages touching this machine, endpoints abstracted.
    msgs: Vec<(u8, u8, u8, u8, u8)>,
    /// Rank ids hosted here — only when ranks are NOT symmetric (when they
    /// are, rank identity is erased by the rank pass instead).
    ranks: Vec<u8>,
}

fn endpoint_code(ctx: &Ctx, i: usize, h: usize) -> (u8, u8) {
    if i < ctx.n_suggested {
        (0, i as u8)
    } else {
        let g = (i - ctx.n_suggested) / ctx.cfg.n_hosts;
        let at = (i - ctx.n_suggested) % ctx.cfg.n_hosts;
        if at == h {
            (1, g as u8)
        } else {
            (2, g as u8)
        }
    }
}

fn host_key(ctx: &Ctx, s: &ProdState, h: usize, rank_sym: bool) -> HostKey {
    let mut members = Vec::with_capacity(ctx.n_groups);
    for g in 0..ctx.n_groups {
        let i = ctx.n_suggested + g * ctx.cfg.n_hosts + h;
        let st = &s.insts[i];
        let inbox: Vec<(u8, u8, u8, u8)> = st
            .inbox
            .iter()
            .map(|&(from, msg)| {
                let (tag, idx) = endpoint_code(ctx, from as usize, h);
                let same = u8::from(tag == 1);
                (tag, idx, same, msg)
            })
            .collect();
        members.push((
            st.node,
            st.vars.clone(),
            inbox,
            st.armed.clone(),
            st.controlled,
            st.suspended,
        ));
    }
    let mut msgs: Vec<(u8, u8, u8, u8, u8)> = Vec::new();
    for &(f, t, m) in &s.msgs {
        let fc = endpoint_code(ctx, f as usize, h);
        let tc = endpoint_code(ctx, t as usize, h);
        if fc.0 == 1 || tc.0 == 1 {
            msgs.push((fc.0, fc.1, tc.0, tc.1, m));
        }
    }
    msgs.sort_unstable();
    let ranks = if rank_sym {
        Vec::new()
    } else {
        (0..s.proto.n_units())
            .filter(|&r| s.proto.unit(r).host as usize == h)
            .map(|r| r as u8)
            .collect()
    };
    HostKey { members, proto: s.proto.host_key(h as u8), msgs, ranks }
}

/// The canonical orbit representative of `s` and the permutation that maps
/// `s` onto it. Unpinned machines are sorted by [`HostKey`] and renamed to
/// the unpinned labels in ascending order; rank slots are then sorted by
/// (phase, relabelled host, incarnation). Any deterministic sort yields a
/// sound representative — it is some member of the orbit — and determinism
/// makes the interned set canonical.
pub(crate) fn canonicalize(ctx: &Ctx, s: &ProdState) -> (ProdState, Perm) {
    let n_hosts = ctx.cfg.n_hosts;
    let n_units = ctx.cfg.n_units();
    let prof = &ctx.profile;

    let mut host_map: Vec<u8> = (0..n_hosts as u8).collect();
    if prof.host_sym {
        let unpinned: Vec<usize> = (0..n_hosts).filter(|&h| !prof.pinned[h]).collect();
        if unpinned.len() > 1 {
            let mut keyed: Vec<(HostKey, usize)> = unpinned
                .iter()
                .map(|&h| (host_key(ctx, s, h, prof.rank_sym), h))
                .collect();
            keyed.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));
            for (slot, (_, h)) in keyed.iter().enumerate() {
                host_map[*h] = unpinned[slot] as u8;
            }
        }
    }

    let mut rank_map: Vec<u8> = (0..n_units as u8).collect();
    if prof.rank_sym {
        let mut keyed: Vec<((AbstractPhase, u8, u8), usize)> = (0..n_units)
            .map(|r| {
                let rk = s.proto.unit(r);
                ((rk.phase, host_map[rk.host as usize], rk.incarnation), r)
            })
            .collect();
        keyed.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));
        for (new_id, (_, r)) in keyed.iter().enumerate() {
            rank_map[*r] = new_id as u8;
        }
    }

    let perm = Perm { hosts: host_map, ranks: rank_map };
    if perm.is_identity() {
        (s.clone(), perm)
    } else {
        (perm.apply_state(ctx, s), perm)
    }
}

/// Test hook behind [`ModelCheckConfig::permute_seed`]: a seeded shuffle of
/// the symmetric label spaces. The result is a genuine orbit member of
/// whatever state it is applied to, so with `--reduce` the verdict and the
/// witness (faults, steps) cost must not change — the canonicalization
/// property test's lever.
pub(crate) fn seeded_perm(ctx: &Ctx, seed: u64) -> Perm {
    let mut perm = Perm::identity(ctx.cfg.n_hosts, ctx.cfg.n_units());
    let mut rng = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1);
    let mut next = move || {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        rng
    };
    if ctx.profile.host_sym {
        let unpinned: Vec<usize> =
            (0..ctx.cfg.n_hosts).filter(|&h| !ctx.profile.pinned[h]).collect();
        if unpinned.len() > 1 {
            let mut order = unpinned.clone();
            for i in (1..order.len()).rev() {
                order.swap(i, (next() as usize) % (i + 1));
            }
            for (slot, &h) in order.iter().enumerate() {
                perm.hosts[h] = unpinned[slot] as u8;
            }
        }
    }
    if ctx.profile.rank_sym && ctx.cfg.n_units() > 1 {
        let mut order: Vec<usize> = (0..ctx.cfg.n_units()).collect();
        for i in (1..order.len()).rev() {
            order.swap(i, (next() as usize) % (i + 1));
        }
        for (slot, &r) in order.iter().enumerate() {
            perm.ranks[r] = slot as u8;
        }
    }
    perm
}
