//! Deterministic parallel frontier expansion.
//!
//! The worklist is bucketed by (faults, steps) cost; every successor of a
//! layer costs strictly more than the layer itself, so the set of states a
//! layer will expand is fixed the moment the layer starts. That makes the
//! layer an embarrassingly parallel unit: [`Ctx::expand`] is pure (the
//! halt-site log is threaded out as data), workers share the context and
//! state table read-only, and results are merged back **in the layer's
//! insertion order** — so verdicts, witnesses, diagnostics, and the JSON
//! rendering are byte-identical for any `--threads` value, including 1.

use super::explore::{Ctx, Expansion, ProdState};

/// Expands every state in `todo`, in order. With `threads > 1` the work
/// is chunked across scoped std threads; the output order is the input
/// order either way.
pub(crate) fn expand_layer(
    ctx: &Ctx,
    states: &[ProdState],
    todo: &[u32],
    threads: usize,
) -> Vec<Expansion> {
    if threads <= 1 || todo.len() < 2 {
        return todo.iter().map(|&id| ctx.expand(&states[id as usize])).collect();
    }
    let chunk = todo.len().div_ceil(threads);
    let mut out: Vec<Expansion> = Vec::with_capacity(todo.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = todo
            .chunks(chunk)
            .map(|ids| {
                scope.spawn(move || {
                    ids.iter()
                        .map(|&id| ctx.expand(&states[id as usize]))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for h in handles {
            out.extend(h.join().expect("frontier worker"));
        }
    });
    out
}
