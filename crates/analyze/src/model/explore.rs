//! The product explorer: abstract state types, the pure per-instance
//! firing engine ([`Ctx`]), canonical move enumeration ([`MoveKind`]), and
//! the deterministic lowest-(faults, steps, insertion) worklist.
//!
//! The firing engine is immutable-`self` so frontier workers can share it
//! across threads: the one historical mutation (halt-site bookkeeping for
//! FC001/FC005) is threaded out as a [`SiteLog`] and applied by the
//! sequential merge, which keeps flag state identical to the old in-line
//! mutation because the flags are monotone.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::Arc;

use failmpi_core::lang::compile::{Action, Dest, Expr, Guard, Scenario};
use failmpi_mpi::{Op, Program};
use failmpi_mpichv::{AbstractEvent, AbstractStep};

use crate::diag::{Diagnostic, Severity};

use super::canon::{self, Perm, SymmetryProfile};
use super::world::AbstractWorld;
use super::{frontier, por};
use super::{Fnv1a, ModelCheckConfig, ModelCheckResult, ModelSummary, StaticVerdict, Witness};

/// Magnitude cap for abstract variable values: a counter that strays past
/// this saturates to [`VarVal::Top`], keeping the state space finite.
const VAR_CAP: i64 = 64;

/// Abstract class-variable value.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub(crate) enum VarVal {
    /// Exactly this value.
    Known(i64),
    /// Any value (random picks, saturated counters).
    Top,
}

/// Stores a value, saturating big magnitudes to `Top` so counters cannot
/// unfold the state space.
fn store(v: VarVal) -> VarVal {
    match v {
        VarVal::Known(x) if x.abs() > VAR_CAP => VarVal::Top,
        other => other,
    }
}

/// Abstract state of one FAIL daemon instance (mirrors
/// `failmpi_core::runtime`'s per-instance state field by field, with
/// timer generations replaced by a per-node armed set).
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub(crate) struct InstState {
    pub(crate) node: u16,
    pub(crate) vars: Vec<VarVal>,
    /// FIFO of undelivered-but-received messages `(from, msg)`.
    pub(crate) inbox: Vec<(u8, u8)>,
    /// Timer slots armed by the current node entry.
    pub(crate) armed: Vec<bool>,
    /// Whether a live process is attached (the `onload`…`onexit` window).
    pub(crate) controlled: bool,
    /// Whether the attached process is `stop`-suspended.
    pub(crate) suspended: bool,
}

/// One product state: every FAIL instance, the in-flight message multiset,
/// and the abstract Vcl protocol state.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub(crate) struct ProdState {
    pub(crate) insts: Vec<InstState>,
    /// Sorted multiset of in-flight FAIL messages `(from, to, msg)` —
    /// deliveries race, so order is not part of the state.
    pub(crate) msgs: Vec<(u8, u8, u8)>,
    pub(crate) proto: AbstractWorld,
}

/// An automaton input, mirroring `FailInput` minus process identities.
#[derive(Clone, Debug)]
enum AIn {
    OnLoad,
    OnExit,
    OnError,
    Msg { from: usize, msg: usize },
    Timer(usize),
    Breakpoint,
    Probe { slot: usize, value: i64 },
}

/// Deferred consequence inside one product step.
#[derive(Clone, Debug)]
enum Pend {
    In { inst: usize, input: AIn },
    Fault(u8),
}

/// World-visible side effects of one instance firing.
#[derive(Clone, Debug, Default)]
struct Effects {
    /// `(from, to, msg)` sends, in emission order.
    sends: Vec<(usize, usize, usize)>,
    /// A `halt` executed while a process was controlled.
    halted: bool,
    stop: bool,
    cont: bool,
}

impl Effects {
    fn merge(&mut self, other: Effects) {
        self.sends.extend(other.sends);
        self.halted |= other.halted;
        self.stop |= other.stop;
        self.cont |= other.cont;
    }
}

/// One branch of a step application: the state it leads to, the faults it
/// injected, and human-readable annotations for the witness.
#[derive(Clone, Debug)]
pub(crate) struct Micro {
    pub(crate) st: ProdState,
    pub(crate) faults: u32,
    pub(crate) notes: Vec<String>,
}

/// Halt-site flags recorded while firing (`(site index, stale)`); the
/// sequential merge ORs them into the explorer's [`HaltSite`] table. The
/// flags are monotone, so apply order is immaterial.
pub(crate) type SiteLog = Vec<(usize, bool)>;

pub(crate) struct HaltSite {
    pub(crate) class: usize,
    pub(crate) line: u32,
    pub(crate) executed: bool,
    pub(crate) stale: bool,
}

/// One enabled product step, structurally. Instance and rank identities
/// are frame-relative: [`Perm::apply_move`] transports a move between a
/// state and its orbit representative.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) enum MoveKind {
    Deliver { from: u8, to: u8, msg: u8 },
    Register(u8),
    Ready(u8),
    Breakpoint { rank: u8, holder: usize },
    Spawn(u8),
    StopClosure(u8),
    Timer { inst: usize, slot: usize },
    WaveStart,
    WaveCommit,
}

/// One labelled successor branch.
#[derive(Clone, Debug)]
pub(crate) struct Succ {
    pub(crate) label: String,
    pub(crate) kind: MoveKind,
    pub(crate) micro: Micro,
    /// Raw-frame → canonical-frame permutation (reduce mode only).
    pub(crate) perm: Option<Perm>,
}

/// Everything one state expansion produced, computed purely so frontier
/// workers can run it in parallel.
pub(crate) struct Expansion {
    pub(crate) succs: Vec<Succ>,
    pub(crate) log: SiteLog,
    pub(crate) por_pruned: usize,
    pub(crate) orbit_hits: usize,
}

// ---------------------------------------------------------------------------
// The immutable exploration context
// ---------------------------------------------------------------------------

/// Everything successor generation reads: the compiled scenario, the
/// deployment binding, and the symmetry profile. Shared read-only across
/// frontier worker threads.
pub(crate) struct Ctx<'a> {
    pub(crate) sc: &'a Scenario,
    pub(crate) cfg: &'a ModelCheckConfig,
    pub(crate) params: Vec<i64>,
    /// Instance class indices; suggested instances first, then one group
    /// member per host for every suggested group.
    pub(crate) inst_class: Vec<usize>,
    pub(crate) inst_names: Vec<String>,
    /// `Some(h)` when the instance controls machine `h`.
    pub(crate) inst_host: Vec<Option<u8>>,
    /// Controllers of each host, in instance order.
    pub(crate) controllers: Vec<Vec<usize>>,
    pub(crate) by_name: HashMap<String, usize>,
    pub(crate) groups: HashMap<String, Vec<usize>>,
    /// Ranks each rank transitively exchanges messages with (op-program
    /// communication skeleton), used to phrase the freeze diagnosis.
    pub(crate) comm_peers: Vec<Vec<u32>>,
    pub(crate) halt_sites: HashMap<(usize, usize, usize), usize>,
    pub(crate) n_suggested: usize,
    pub(crate) n_groups: usize,
    pub(crate) profile: SymmetryProfile,
}

impl<'a> Ctx<'a> {
    // -- abstract expression evaluation ------------------------------------

    fn eval(&self, e: &Expr, vars: &[VarVal]) -> VarVal {
        if let Some(v) = e.fold_const(&self.params) {
            return VarVal::Known(v);
        }
        match e {
            Expr::Int(n) => VarVal::Known(*n),
            Expr::Var(i) => vars[*i],
            Expr::Param(i) => VarVal::Known(self.params[*i]),
            Expr::Rand(..) => match e.const_range(&self.params) {
                Some((l, h)) if l == h => VarVal::Known(l),
                _ => VarVal::Top,
            },
            Expr::Bin(op, a, b) => match (self.eval(a, vars), self.eval(b, vars)) {
                (VarVal::Known(x), VarVal::Known(y)) => {
                    VarVal::Known(failmpi_core::lang::compile::apply_bin(*op, x, y))
                }
                _ => VarVal::Top,
            },
            Expr::Neg(a) => match self.eval(a, vars) {
                VarVal::Known(x) => VarVal::Known(x.wrapping_neg()),
                VarVal::Top => VarVal::Top,
            },
        }
    }

    /// Tri-state condition: `Some(b)` when decidable, `None` when the
    /// abstraction cannot tell (both branches are then explored).
    fn cond3(&self, e: &Expr, vars: &[VarVal]) -> Option<bool> {
        match self.eval(e, vars) {
            VarVal::Known(v) => Some(v != 0),
            VarVal::Top => None,
        }
    }

    /// All conditions of a transition, three-valued.
    fn conds3(&self, conds: &[Expr], vars: &[VarVal]) -> Option<bool> {
        let mut maybe = false;
        for c in conds {
            match self.cond3(c, vars) {
                Some(false) => return Some(false),
                Some(true) => {}
                None => maybe = true,
            }
        }
        if maybe {
            None
        } else {
            Some(true)
        }
    }

    /// The group members a `G[idx]` destination can resolve to. Constant
    /// and interval-bounded indices narrow the set; opaque ones fan out
    /// to the whole group (see [`Expr::const_range`]).
    fn dest_members(&self, members: &[usize], idx: &Expr, vars: &[VarVal]) -> Vec<usize> {
        match self.eval(idx, vars) {
            VarVal::Known(k) => usize::try_from(k)
                .ok()
                .filter(|k| *k < members.len())
                .map(|k| vec![members[k]])
                .unwrap_or_default(),
            VarVal::Top => match idx.const_range(&self.params) {
                Some((l, h)) => {
                    let lo = l.max(0) as usize;
                    let hi = (h.min(members.len() as i64 - 1)).max(-1);
                    if hi < 0 {
                        Vec::new()
                    } else {
                        members[lo.min(members.len())..=hi as usize].to_vec()
                    }
                }
                None => members.to_vec(),
            },
        }
    }

    // -- the per-instance firing engine ------------------------------------
    //
    // Mirrors `FailRuntime::{feed, try_fire, fire, enter_node,
    // drain_inbox}` over abstract values. Every function returns the set
    // of branch outcomes (undecidable conditions and random group indices
    // branch). Halt-site flags go into `log`.

    fn class_of(&self, inst: usize) -> &failmpi_core::lang::compile::Class {
        &self.sc.classes[self.inst_class[inst]]
    }

    fn enter_node(
        &self,
        inst: usize,
        mut st: InstState,
        node: usize,
        log: &mut SiteLog,
    ) -> Vec<(InstState, Effects)> {
        st.node = node as u16;
        let nd = &self.class_of(inst).nodes[node];
        for (slot, e) in &nd.always {
            let v = store(self.eval(e, &st.vars));
            st.vars[*slot] = v;
        }
        st.armed.iter_mut().for_each(|a| *a = false);
        for (t, _) in &nd.timers {
            st.armed[*t] = true;
        }
        self.drain_from(inst, st, 0, 0, log)
    }

    /// Scans the FIFO for the first consumable message starting at message
    /// `mi0`, transition `ti0`; `Maybe` conditions split the scan.
    fn drain_from(
        &self,
        inst: usize,
        st: InstState,
        mi0: usize,
        ti0: usize,
        log: &mut SiteLog,
    ) -> Vec<(InstState, Effects)> {
        let node_idx = st.node as usize;
        let class = self.inst_class[inst];
        let n_trans = self.sc.classes[class].nodes[node_idx].transitions.len();
        for mi in mi0..st.inbox.len() {
            let (from, msg) = st.inbox[mi];
            let t_start = if mi == mi0 { ti0 } else { 0 };
            for t in t_start..n_trans {
                let tr = &self.sc.classes[class].nodes[node_idx].transitions[t];
                if !matches!(tr.guard, Guard::Recv(m) if m == msg as usize) {
                    continue;
                }
                match self.conds3(&tr.conds, &st.vars) {
                    Some(false) => continue,
                    Some(true) => {
                        let mut consumed = st.clone();
                        consumed.inbox.remove(mi);
                        return self.chain_fire(inst, consumed, node_idx, t, Some(from as usize), log);
                    }
                    None => {
                        // Branch: the conditions hold (fire) or they do
                        // not (keep scanning past this transition).
                        let mut out = Vec::new();
                        let mut consumed = st.clone();
                        consumed.inbox.remove(mi);
                        out.extend(self.chain_fire(
                            inst,
                            consumed,
                            node_idx,
                            t,
                            Some(from as usize),
                            log,
                        ));
                        out.extend(self.drain_from(inst, st, mi, t + 1, log));
                        return dedup_fire(out);
                    }
                }
            }
        }
        vec![(st, Effects::default())]
    }

    /// Fires transition `(node, t)` and re-drains the inbox when the
    /// transition moved to a new node (`enter_node` does the drain).
    fn chain_fire(
        &self,
        inst: usize,
        st: InstState,
        node: usize,
        t: usize,
        sender: Option<usize>,
        log: &mut SiteLog,
    ) -> Vec<(InstState, Effects)> {
        let class = self.inst_class[inst];
        let actions = &self.sc.classes[class].nodes[node].transitions[t].actions;
        let site = self.halt_sites.get(&(class, node, t)).copied();
        self.run_actions(inst, st, actions, sender, site, log)
    }

    /// Executes a transition's actions in order. Branches on opaque group
    /// indices; applies `Goto` last exactly like `FailRuntime::fire`.
    fn run_actions(
        &self,
        inst: usize,
        st: InstState,
        actions: &[Action],
        sender: Option<usize>,
        site: Option<usize>,
        log: &mut SiteLog,
    ) -> Vec<(InstState, Effects)> {
        // Work items: (state so far, effects so far, next action index,
        // pending goto).
        let mut work = vec![(st, Effects::default(), 0usize, None::<usize>)];
        let mut done = Vec::new();
        while let Some((mut s, mut eff, i, goto)) = work.pop() {
            if i == actions.len() {
                done.push((s, eff, goto));
                continue;
            }
            match &actions[i] {
                Action::Send { msg, dest } => {
                    let targets: Vec<usize> = match dest {
                        Dest::Instance(name) => {
                            self.by_name.get(name).copied().into_iter().collect()
                        }
                        Dest::Group(name, idx) => match self.groups.get(name) {
                            Some(members) => self.dest_members(members, idx, &s.vars),
                            None => Vec::new(),
                        },
                        Dest::Sender => sender.into_iter().collect(),
                    };
                    if targets.len() <= 1 {
                        if let Some(to) = targets.first() {
                            eff.sends.push((inst, *to, *msg));
                        }
                        work.push((s, eff, i + 1, goto));
                    } else {
                        for to in targets {
                            let mut e2 = eff.clone();
                            e2.sends.push((inst, to, *msg));
                            work.push((s.clone(), e2, i + 1, goto));
                        }
                    }
                }
                Action::Goto(n) => {
                    work.push((s, eff, i + 1, Some(*n)));
                }
                Action::Halt => {
                    if let Some(siteidx) = site {
                        log.push((siteidx, !s.controlled));
                    }
                    if s.controlled {
                        s.controlled = false;
                        s.suspended = false;
                        eff.halted = true;
                    }
                    work.push((s, eff, i + 1, goto));
                }
                Action::Stop => {
                    if s.controlled {
                        s.suspended = true;
                        eff.stop = true;
                    }
                    work.push((s, eff, i + 1, goto));
                }
                Action::Continue => {
                    if s.controlled {
                        s.suspended = false;
                        eff.cont = true;
                    }
                    work.push((s, eff, i + 1, goto));
                }
                Action::Assign(slot, e) => {
                    let v = store(self.eval(e, &s.vars));
                    s.vars[*slot] = v;
                    work.push((s, eff, i + 1, goto));
                }
            }
        }
        let mut out = Vec::new();
        for (s, eff, goto) in done {
            match goto {
                Some(n) => {
                    for (s2, e2) in self.enter_node(inst, s, n, log) {
                        let mut merged = eff.clone();
                        merged.merge(e2);
                        out.push((s2, merged));
                    }
                }
                None => out.push((s, eff)),
            }
        }
        dedup_fire(out)
    }

    /// `FailRuntime::try_fire`: first transition whose guard matches and
    /// whose conditions hold. Returns branch outcomes plus whether each
    /// branch actually fired.
    fn try_fire(
        &self,
        inst: usize,
        st: InstState,
        pred: impl Fn(&Guard) -> bool,
        sender: Option<usize>,
        log: &mut SiteLog,
    ) -> Vec<(InstState, Effects, bool)> {
        self.try_fire_from(inst, st, &pred, sender, 0, log)
    }

    fn try_fire_from(
        &self,
        inst: usize,
        st: InstState,
        pred: &impl Fn(&Guard) -> bool,
        sender: Option<usize>,
        t0: usize,
        log: &mut SiteLog,
    ) -> Vec<(InstState, Effects, bool)> {
        let node = st.node as usize;
        let class = self.inst_class[inst];
        let n_trans = self.sc.classes[class].nodes[node].transitions.len();
        for t in t0..n_trans {
            let tr = &self.sc.classes[class].nodes[node].transitions[t];
            if !pred(&tr.guard) {
                continue;
            }
            match self.conds3(&tr.conds, &st.vars) {
                Some(false) => continue,
                Some(true) => {
                    return self
                        .chain_fire(inst, st, node, t, sender, log)
                        .into_iter()
                        .map(|(s, e)| (s, e, true))
                        .collect();
                }
                None => {
                    let mut out: Vec<(InstState, Effects, bool)> = self
                        .chain_fire(inst, st.clone(), node, t, sender, log)
                        .into_iter()
                        .map(|(s, e)| (s, e, true))
                        .collect();
                    out.extend(self.try_fire_from(inst, st, pred, sender, t + 1, log));
                    return out;
                }
            }
        }
        vec![(st, Effects::default(), false)]
    }

    /// `FailRuntime::feed` for one abstract input.
    fn feed(
        &self,
        inst: usize,
        st: InstState,
        input: &AIn,
        log: &mut SiteLog,
    ) -> Vec<(InstState, Effects, bool)> {
        match input {
            AIn::Msg { from, msg } => {
                let mut s = st;
                s.inbox.push((*from as u8, *msg as u8));
                self.drain_from(inst, s, 0, 0, log)
                    .into_iter()
                    .map(|(s, e)| (s, e, true))
                    .collect()
            }
            AIn::OnLoad => {
                let mut s = st;
                s.controlled = true;
                s.suspended = false;
                self.try_fire(inst, s, |g| matches!(g, Guard::OnLoad), None, log)
            }
            AIn::OnExit | AIn::OnError => {
                let mut s = st;
                if !s.controlled {
                    return vec![(s, Effects::default(), false)]; // stale
                }
                s.controlled = false;
                s.suspended = false;
                let want_exit = matches!(input, AIn::OnExit);
                self.try_fire(
                    inst,
                    s,
                    move |g| {
                        if want_exit {
                            matches!(g, Guard::OnExit)
                        } else {
                            matches!(g, Guard::OnError)
                        }
                    },
                    None,
                    log,
                )
            }
            AIn::Timer(t) => {
                let mut s = st;
                if !s.armed[*t] {
                    return vec![(s, Effects::default(), false)];
                }
                s.armed[*t] = false;
                let t = *t;
                self.try_fire(inst, s, move |g| matches!(g, Guard::Timer(x) if *x == t), None, log)
            }
            AIn::Breakpoint => self.try_fire(inst, st, |g| matches!(g, Guard::Before(_)), None, log),
            AIn::Probe { slot, value } => {
                let mut s = st;
                let old = s.vars[*slot];
                s.vars[*slot] = VarVal::Known(*value);
                if old == VarVal::Known(*value) {
                    return vec![(s, Effects::default(), false)];
                }
                let slot = *slot;
                self.try_fire(inst, s, move |g| matches!(g, Guard::Change(p) if *p == slot), None, log)
            }
        }
    }

    // -- world-level step application --------------------------------------

    /// Processes a queue of pending consequences to completion, branching
    /// as the automata branch. Returns the settled micro-states.
    fn drive(
        &self,
        st: ProdState,
        queue: VecDeque<Pend>,
        faults: u32,
        notes: Vec<String>,
        log: &mut SiteLog,
    ) -> Vec<Micro> {
        let mut out = Vec::new();
        let mut work = vec![(st, queue, faults, notes)];
        while let Some((mut s, mut q, f, notes)) = work.pop() {
            let Some(p) = q.pop_front() else {
                out.push(Micro { st: s, faults: f, notes });
                continue;
            };
            match p {
                Pend::Fault(r) => {
                    if !s.proto.unit_live(r as usize) {
                        // The process died between the halt decision and
                        // this point (cascaded recovery) — nothing to kill.
                        work.push((s, q, f, notes));
                        continue;
                    }
                    let mut evs = Vec::new();
                    let phase = s.proto.unit(r as usize).phase;
                    let during = s.proto.recovery_active();
                    let desc = s.proto.unit_desc(r as usize);
                    s.proto.apply(AbstractStep::Fault(r), &mut evs);
                    let mut notes = notes.clone();
                    notes.push(format!(
                        "fault kills {desc} ({}{})",
                        phase_name(phase),
                        if during { ", during recovery" } else { "" }
                    ));
                    for e in &evs {
                        if let AbstractEvent::RankLost { rank } = e {
                            notes.push(s.proto.lost_note(*rank));
                        }
                    }
                    let mut q2 = q.clone();
                    self.enqueue_events(&mut q2, &evs);
                    work.push((s, q2, f + 1, notes));
                }
                Pend::In { inst, input } => {
                    let ist = s.insts[inst].clone();
                    let branches = self.feed(inst, ist, &input, log);
                    for (ist2, eff, _) in branches {
                        let mut s2 = s.clone();
                        s2.insts[inst] = ist2;
                        let mut q2 = q.clone();
                        let mut notes2 = notes.clone();
                        for (from, to, msg) in &eff.sends {
                            insert_msg(&mut s2.msgs, (*from as u8, *to as u8, *msg as u8));
                        }
                        if eff.halted {
                            match self.inst_host[inst].and_then(|h| s2.proto.live_rank_on_host(h)) {
                                Some(r) => q2.push_back(Pend::Fault(r)),
                                None => notes2.push(format!(
                                    "halt from {} found no live process",
                                    self.inst_names[inst]
                                )),
                            }
                        }
                        work.push((s2, q2, f, notes2));
                    }
                }
            }
        }
        dedup_micro(out)
    }

    /// Maps abstract Vcl events onto automaton inputs, honoring the
    /// dynamic runtime's routing (lifecycle hooks to the host's
    /// controllers, committed-wave / epoch updates to probe subscribers).
    fn enqueue_events(&self, q: &mut VecDeque<Pend>, evs: &[AbstractEvent]) {
        for e in evs {
            match e {
                AbstractEvent::OnLoad { host } => {
                    for &c in &self.controllers[*host as usize] {
                        q.push_back(Pend::In { inst: c, input: AIn::OnLoad });
                    }
                }
                AbstractEvent::OnExit { host } => {
                    for &c in &self.controllers[*host as usize] {
                        q.push_back(Pend::In { inst: c, input: AIn::OnExit });
                    }
                }
                AbstractEvent::OnError { host } => {
                    for &c in &self.controllers[*host as usize] {
                        q.push_back(Pend::In { inst: c, input: AIn::OnError });
                    }
                }
                AbstractEvent::CommittedWave(v) => self.enqueue_probe(q, "committed_wave", *v),
                AbstractEvent::EpochBumped(v) => self.enqueue_probe(q, "epoch", *v),
                AbstractEvent::FailureDetected { .. } | AbstractEvent::RankLost { .. } => {}
            }
        }
    }

    fn enqueue_probe(&self, q: &mut VecDeque<Pend>, name: &str, value: u8) {
        for inst in 0..self.inst_class.len() {
            let class = &self.sc.classes[self.inst_class[inst]];
            if let Some((_, slot)) = class.probes.iter().find(|(n, _)| n == name) {
                q.push_back(Pend::In {
                    inst,
                    input: AIn::Probe { slot: *slot, value: value as i64 },
                });
            }
        }
    }

    // -- successor generation ----------------------------------------------

    /// Whether any controller suspends the process of `rank` (a
    /// `stop`-suspended process neither registers nor acks commands).
    fn rank_suspended(&self, s: &ProdState, rank: usize) -> bool {
        let h = s.proto.unit(rank).host as usize;
        self.controllers[h]
            .iter()
            .any(|&c| s.insts[c].controlled && s.insts[c].suspended)
    }

    /// The first controller holding an armed breakpoint over `rank`'s
    /// process (current node has a `before(...)` guard and the process is
    /// attached) — it intercepts the rank's ready step.
    pub(crate) fn breakpoint_holder(&self, s: &ProdState, rank: usize) -> Option<usize> {
        let h = s.proto.unit(rank).host as usize;
        self.controllers[h].iter().copied().find(|&c| {
            if !s.insts[c].controlled {
                return false;
            }
            let class = &self.sc.classes[self.inst_class[c]];
            class.nodes[s.insts[c].node as usize]
                .transitions
                .iter()
                .any(|t| matches!(t.guard, Guard::Before(_)))
        })
    }

    /// Whether instance `i`'s node `node` arms a `before(...)` breakpoint
    /// — the part of an automaton's state that `breakpoint_holder` reads,
    /// so the ample filter can prove a node change invisible to rank moves.
    pub(crate) fn breakpoint_armed(&self, i: usize, node: u16) -> bool {
        let class = &self.sc.classes[self.inst_class[i]];
        class.nodes[node as usize]
            .transitions
            .iter()
            .any(|t| matches!(t.guard, Guard::Before(_)))
    }

    /// Every enabled product move of `s`, in canonical enumeration order
    /// (the order the pre-refactor `successors` generated them in).
    pub(crate) fn moves(&self, s: &ProdState) -> Vec<MoveKind> {
        let mut out = Vec::new();

        // Fast: message deliveries (multiset duplicates collapse).
        let mut seen_msg = None;
        for &m in &s.msgs {
            if seen_msg == Some(m) {
                continue;
            }
            seen_msg = Some(m);
            out.push(MoveKind::Deliver { from: m.0, to: m.1, msg: m.2 });
        }

        // Fast: register / ready (they race the FAIL plane).
        for step in s.proto.protocol_steps() {
            match step {
                AbstractStep::Register(r) if !self.rank_suspended(s, r as usize) => {
                    out.push(MoveKind::Register(r));
                }
                AbstractStep::Ready(r) => {
                    if self.rank_suspended(s, r as usize) {
                        continue;
                    }
                    match self.breakpoint_holder(s, r as usize) {
                        Some(c) => out.push(MoveKind::Breakpoint { rank: r, holder: c }),
                        None => out.push(MoveKind::Ready(r)),
                    }
                }
                _ => {}
            }
        }

        // Slow: spawns and stop-closures only run on a silent FAIL plane.
        if s.msgs.is_empty() {
            for step in s.proto.protocol_steps() {
                match step {
                    AbstractStep::Spawn(r) => out.push(MoveKind::Spawn(r)),
                    AbstractStep::StopClosure(r) => out.push(MoveKind::StopClosure(r)),
                    _ => {}
                }
            }
        }

        // Quiescent: scenario timers and checkpoint waves.
        if s.msgs.is_empty() && s.proto.all_running() {
            for (inst, ist) in s.insts.iter().enumerate() {
                for (slot, armed) in ist.armed.iter().enumerate() {
                    if *armed {
                        out.push(MoveKind::Timer { inst, slot });
                    }
                }
            }
            if s.proto.wave_startable() {
                out.push(MoveKind::WaveStart);
            }
            if s.proto.wave_committable() {
                out.push(MoveKind::WaveCommit);
            }
        }
        out
    }

    /// The human-readable step label of `m` taken from `s`.
    pub(crate) fn label_of(&self, s: &ProdState, m: &MoveKind) -> String {
        match m {
            MoveKind::Deliver { from, to, msg } => format!(
                "deliver {} {} -> {}",
                self.sc.messages[*msg as usize],
                self.inst_names[*from as usize],
                self.inst_names[*to as usize]
            ),
            MoveKind::Register(r) => format!("register {}", s.proto.unit_desc(*r as usize)),
            MoveKind::Ready(r) => format!("ready {}", s.proto.unit_desc(*r as usize)),
            MoveKind::Breakpoint { rank, holder } => format!(
                "breakpoint before set-command: {} held by {}",
                s.proto.unit_desc(*rank as usize),
                self.inst_names[*holder]
            ),
            MoveKind::Spawn(r) => format!(
                "spawn {} on host {}",
                s.proto.unit_desc(*r as usize),
                s.proto.unit(*r as usize).host
            ),
            MoveKind::StopClosure(r) => format!("stop-closure rank {r}"),
            MoveKind::Timer { inst, slot } => format!(
                "timer {} at {}",
                self.sc.classes[self.inst_class[*inst]].timer_names[*slot],
                self.inst_names[*inst]
            ),
            MoveKind::WaveStart => "checkpoint wave starts".to_string(),
            MoveKind::WaveCommit => "checkpoint wave commits".to_string(),
        }
    }

    /// Applies one enabled move, returning its settled micro-branches.
    /// `m` must come from [`Ctx::moves`] on `s` (or be transported there
    /// by a permutation): the protocol steps assert enabledness.
    pub(crate) fn apply_move(&self, s: &ProdState, m: &MoveKind, log: &mut SiteLog) -> Vec<Micro> {
        match m {
            MoveKind::Deliver { from, to, msg } => {
                let mut s2 = s.clone();
                let i = s2
                    .msgs
                    .iter()
                    .position(|x| *x == (*from, *to, *msg))
                    .expect("delivered message in flight");
                s2.msgs.remove(i);
                let q = VecDeque::from([Pend::In {
                    inst: *to as usize,
                    input: AIn::Msg { from: *from as usize, msg: *msg as usize },
                }]);
                self.drive(s2, q, 0, Vec::new(), log)
            }
            MoveKind::Register(r) | MoveKind::Ready(r) => {
                let step = match m {
                    MoveKind::Register(_) => AbstractStep::Register(*r),
                    _ => AbstractStep::Ready(*r),
                };
                let mut s2 = s.clone();
                let mut evs = Vec::new();
                s2.proto.apply(step, &mut evs);
                let mut q = VecDeque::new();
                self.enqueue_events(&mut q, &evs);
                self.drive(s2, q, 0, Vec::new(), log)
            }
            MoveKind::Breakpoint { rank: r, holder: c } => {
                // The controller's debugger holds the process just before
                // `localMPI_setCommand`; the scenario decides whether the
                // call proceeds.
                let mut out = Vec::new();
                let ist = s.insts[*c].clone();
                let branches = self.feed(*c, ist, &AIn::Breakpoint, log);
                for (ist2, eff, _) in branches {
                    let mut s2 = s.clone();
                    s2.insts[*c] = ist2;
                    let mut q = VecDeque::new();
                    let mut notes = Vec::new();
                    for (from, to, msg) in &eff.sends {
                        insert_msg(&mut s2.msgs, (*from as u8, *to as u8, *msg as u8));
                    }
                    if eff.halted {
                        // Killed at the breakpoint: the rank dies
                        // registered, before acking the command.
                        q.push_back(Pend::Fault(*r));
                    } else {
                        // Released: the call completes.
                        let mut evs = Vec::new();
                        s2.proto.apply(AbstractStep::Ready(*r), &mut evs);
                        self.enqueue_events(&mut q, &evs);
                        notes.push("released".to_string());
                    }
                    out.extend(self.drive(s2, q, 0, notes, log));
                }
                out
            }
            MoveKind::Spawn(r) | MoveKind::StopClosure(r) => {
                let step = match m {
                    MoveKind::Spawn(_) => AbstractStep::Spawn(*r),
                    _ => AbstractStep::StopClosure(*r),
                };
                let mut s2 = s.clone();
                let mut evs = Vec::new();
                s2.proto.apply(step, &mut evs);
                let mut q = VecDeque::new();
                self.enqueue_events(&mut q, &evs);
                self.drive(s2, q, 0, Vec::new(), log)
            }
            MoveKind::Timer { inst, slot } => {
                let q = VecDeque::from([Pend::In { inst: *inst, input: AIn::Timer(*slot) }]);
                self.drive(s.clone(), q, 0, Vec::new(), log)
            }
            MoveKind::WaveStart => {
                let mut s2 = s.clone();
                let mut evs = Vec::new();
                s2.proto.apply(AbstractStep::WaveStart, &mut evs);
                vec![Micro { st: s2, faults: 0, notes: Vec::new() }]
            }
            MoveKind::WaveCommit => {
                let mut s2 = s.clone();
                let mut evs = Vec::new();
                s2.proto.apply(AbstractStep::WaveCommit, &mut evs);
                let mut q = VecDeque::new();
                self.enqueue_events(&mut q, &evs);
                self.drive(s2, q, 0, Vec::new(), log)
            }
        }
    }

    /// All successor branches of `s` in enumeration order, before
    /// reduction, scramble, and the canonical sort.
    pub(crate) fn successors_raw(&self, s: &ProdState, log: &mut SiteLog) -> Vec<Succ> {
        let mut out = Vec::new();
        for m in self.moves(s) {
            let label = self.label_of(s, &m);
            for micro in self.apply_move(s, &m, log) {
                out.push(Succ { label: label.clone(), kind: m.clone(), micro, perm: None });
            }
        }
        out
    }

    /// One full expansion: raw successors, then (reduce mode) the ample
    /// filter and orbit canonicalization, then the scramble hook and the
    /// canonical sort/dedup that makes generation order immaterial.
    pub(crate) fn expand(&self, s: &ProdState) -> Expansion {
        let mut log = SiteLog::new();
        let mut succs = self.successors_raw(s, &mut log);
        let mut por_pruned = 0;
        let mut orbit_hits = 0;
        if self.cfg.reduce {
            let before = succs.len();
            succs = por::ample_filter(self, s, succs);
            por_pruned = before - succs.len();
            for succ in &mut succs {
                let (rep, perm) = canon::canonicalize(self, &succ.micro.st);
                if rep != succ.micro.st {
                    orbit_hits += 1;
                }
                succ.micro.st = rep;
                succ.perm = Some(perm);
            }
        }

        // Scramble (test hook), then the canonical sort that must undo it.
        if let Some(seed) = self.cfg.scramble {
            let mut rng = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1);
            for i in (1..succs.len()).rev() {
                rng ^= rng << 13;
                rng ^= rng >> 7;
                rng ^= rng << 17;
                succs.swap(i, (rng as usize) % (i + 1));
            }
        }
        succs.sort_by(|a, b| {
            (&a.label, &a.micro.st, a.micro.faults, &a.micro.notes)
                .cmp(&(&b.label, &b.micro.st, b.micro.faults, &b.micro.notes))
        });
        succs.dedup_by(|a, b| {
            a.label == b.label && a.micro.st == b.micro.st && a.micro.faults == b.micro.faults
        });
        Expansion { succs, log, por_pruned, orbit_hits }
    }
}

// ---------------------------------------------------------------------------
// The explorer
// ---------------------------------------------------------------------------

pub(crate) struct Explorer<'a> {
    pub(crate) ctx: Ctx<'a>,
    sites: Vec<HaltSite>,

    // Exploration graph.
    states: Vec<ProdState>,
    index: HashMap<ProdState, u32>,
    dist: Vec<(u32, u32)>,
    parent: Vec<Option<(u32, String)>>,
    /// Reduce mode: the structural move and raw→canonical permutation
    /// behind each parent edge, for concrete witness replay.
    parent_move: Vec<Option<(MoveKind, Perm, u32)>>,
    edges: Vec<Vec<(u32, bool)>>,
    expanded: Vec<bool>,
    all_running: Vec<bool>,
    /// Cost-layered worklist: `(faults, steps)` → state ids in insertion
    /// order. Replaces the old binary heap with identical pop order —
    /// every successor lands strictly deeper than the layer being
    /// processed, so a layer is closed the moment it starts.
    buckets: BTreeMap<(u32, u32), Vec<u32>>,
    n_expanded: usize,
    freeze: Option<(u32, String)>,
    budget_hit: bool,

    /// Raw (pre-canonicalization) initial state and its canonicalizing
    /// permutation, for witness replay.
    init_raw: Option<ProdState>,
    init_perm: Perm,
    orbit_hits: usize,
    por_pruned: usize,
}

impl<'a> Explorer<'a> {
    pub(crate) fn new(sc: &'a Scenario, cfg: &'a ModelCheckConfig, programs: &[Arc<Program>]) -> Self {
        // Resolve parameters: defaults, then overrides; `N` tracks the
        // model's machine count unless the caller pinned it.
        let mut params = sc.param_defaults.clone();
        for (i, name) in sc.param_names.iter().enumerate() {
            if name == "N" && !cfg.params.iter().any(|(n, _)| n == "N") {
                params[i] = cfg.n_hosts as i64 - 1;
            }
        }
        for (name, v) in &cfg.params {
            if let Some(i) = sc.param_names.iter().position(|n| n == name) {
                params[i] = *v;
            }
        }

        let mut inst_class = Vec::new();
        let mut inst_names = Vec::new();
        let mut inst_host = Vec::new();
        let mut by_name = HashMap::new();
        let mut groups = HashMap::new();
        for (name, class) in &sc.suggested.instances {
            by_name.insert(name.clone(), inst_class.len());
            inst_names.push(name.clone());
            inst_class.push(*class);
            inst_host.push(None);
        }
        let n_suggested = inst_class.len();
        let mut controllers = vec![Vec::new(); cfg.n_hosts];
        for (gname, _, class) in &sc.suggested.groups {
            // One member per machine, the harness's deployment shape; the
            // declared size is paper scale and is overridden here.
            let mut members = Vec::new();
            for (h, ctl) in controllers.iter_mut().enumerate() {
                let idx = inst_class.len();
                inst_names.push(format!("{gname}[{h}]"));
                inst_class.push(*class);
                inst_host.push(Some(h as u8));
                ctl.push(idx);
                members.push(idx);
            }
            groups.insert(gname.clone(), members);
        }

        let mut sites = Vec::new();
        let mut halt_sites = HashMap::new();
        for (c, class) in sc.classes.iter().enumerate() {
            for (n, node) in class.nodes.iter().enumerate() {
                for (t, tr) in node.transitions.iter().enumerate() {
                    if tr.actions.iter().any(|a| matches!(a, Action::Halt)) {
                        halt_sites.insert((c, n, t), sites.len());
                        sites.push(HaltSite {
                            class: c,
                            line: tr.line,
                            executed: false,
                            stale: false,
                        });
                    }
                }
            }
        }

        let comm_peers = comm_closure(programs, cfg.n_ranks);
        let profile = canon::profile_of(sc, &params, cfg, &comm_peers);

        let ctx = Ctx {
            sc,
            cfg,
            params,
            inst_class,
            inst_names,
            inst_host,
            controllers,
            by_name,
            groups,
            comm_peers,
            halt_sites,
            n_suggested,
            n_groups: sc.suggested.groups.len(),
            profile,
        };
        Explorer {
            ctx,
            sites,
            states: Vec::new(),
            index: HashMap::new(),
            dist: Vec::new(),
            parent: Vec::new(),
            parent_move: Vec::new(),
            edges: Vec::new(),
            expanded: Vec::new(),
            all_running: Vec::new(),
            buckets: BTreeMap::new(),
            n_expanded: 0,
            freeze: None,
            budget_hit: false,
            init_raw: None,
            init_perm: Perm::identity(cfg.n_hosts, cfg.n_units()),
            orbit_hits: 0,
            por_pruned: 0,
        }
    }

    fn initial(&mut self) -> ProdState {
        let ctx = &self.ctx;
        let mut insts = Vec::new();
        let mut log = SiteLog::new();
        for i in 0..ctx.inst_class.len() {
            let class = &ctx.sc.classes[ctx.inst_class[i]];
            let mut st = InstState {
                node: 0,
                vars: vec![VarVal::Known(0); class.var_names.len()],
                inbox: Vec::new(),
                armed: vec![false; class.timer_names.len()],
                controlled: false,
                suspended: false,
            };
            for (slot, e) in &class.var_init {
                let v = store(ctx.eval(e, &st.vars));
                st.vars[*slot] = v;
            }
            insts.push(st);
        }
        let mut s = ProdState {
            insts,
            msgs: Vec::new(),
            proto: AbstractWorld::new(ctx.cfg),
        };
        // Node-0 entry (always vars, timers); builtins' initial nodes have
        // no consumable inbox, so this never branches.
        for i in 0..s.insts.len() {
            let entered = ctx.enter_node(i, s.insts[i].clone(), 0, &mut log);
            s.insts[i] = entered.into_iter().next().expect("initial entry").0;
        }
        for (site, stale) in log {
            self.sites[site].executed = true;
            if stale {
                self.sites[site].stale = true;
            }
        }
        // Test hook: start from a seeded point of the initial state's
        // machine orbit. Canonicalization must erase the difference.
        if let Some(seed) = ctx.cfg.permute_seed {
            let pi = canon::seeded_perm(ctx, seed);
            s = pi.apply_state(ctx, &s);
        }
        s
    }

    fn intern(&mut self, s: ProdState) -> u32 {
        if let Some(&id) = self.index.get(&s) {
            return id;
        }
        let id = self.states.len() as u32;
        self.all_running.push(s.proto.all_running());
        self.index.insert(s.clone(), id);
        self.states.push(s);
        self.dist.push((u32::MAX, u32::MAX));
        self.parent.push(None);
        self.parent_move.push(None);
        self.edges.push(Vec::new());
        self.expanded.push(false);
        id
    }

    /// Puts the unprocessed tail of an interrupted layer back — including
    /// stale entries — so frontier accounting sees exactly what the old
    /// heap would still hold at the same stop point.
    fn requeue(&mut self, cost: (u32, u32), tail: &[u32]) {
        if !tail.is_empty() {
            // Successors always cost strictly more than the layer being
            // processed, so no new entries can have landed at `cost`.
            self.buckets.entry(cost).or_default().extend_from_slice(tail);
        }
    }

    /// Whether any worklist entry remains, stale or not — the exact
    /// equivalent of the old heap's `!heap.is_empty()` budget condition
    /// (the heap kept superseded entries until popped).
    fn worklist_pending(&self, tail: &[u32]) -> bool {
        !tail.is_empty() || self.buckets.values().any(|b| !b.is_empty())
    }

    pub(crate) fn run(&mut self) {
        let raw = self.initial();
        let (root, p0) = if self.ctx.cfg.reduce {
            canon::canonicalize(&self.ctx, &raw)
        } else {
            (raw.clone(), Perm::identity(self.ctx.cfg.n_hosts, self.ctx.cfg.n_units()))
        };
        self.init_raw = Some(raw);
        self.init_perm = p0;
        let id = self.intern(root);
        self.dist[id as usize] = (0, 0);
        self.buckets.insert((0, 0), vec![id]);

        let threads = self.ctx.cfg.threads.max(1);
        while let Some((&cost, _)) = self.buckets.iter().next() {
            let layer = self.buckets.remove(&cost).expect("bucket");
            // Every successor of this layer costs strictly more (steps+1),
            // so expansion can neither add to the layer nor change which
            // of its entries are stale: the valid set is fixed the moment
            // the layer starts and is safe to expand in parallel. The
            // stale ones (already expanded via an equal-cost duplicate
            // push) are skipped below exactly like heap pop-skips.
            let fresh = |ex: &Self, id: u32| {
                !ex.expanded[id as usize] && cost <= ex.dist[id as usize]
            };
            let todo: Vec<u32> = layer.iter().copied().filter(|&id| fresh(self, id)).collect();
            let exps = frontier::expand_layer(&self.ctx, &self.states, &todo, threads);
            let mut exp_it = exps.into_iter();
            let (f, steps) = cost;
            for (k, &id) in layer.iter().enumerate() {
                if !fresh(self, id) {
                    continue; // heap pop-skip: does not count as expansion
                }
                let exp = exp_it.next().expect("expansion for fresh entry");
                self.expanded[id as usize] = true;
                self.n_expanded += 1;

                if self.states[id as usize].proto.lost_rank().is_some() {
                    // Freeze found: stop before applying this state's halt
                    // log — its (speculative) successors are never taken.
                    let why = self.states[id as usize].proto.freeze_reason();
                    self.freeze = Some((id, why.to_string()));
                    self.requeue(cost, &layer[k + 1..]);
                    return;
                }
                for (site, stale) in exp.log {
                    self.sites[site].executed = true;
                    if stale {
                        self.sites[site].stale = true;
                    }
                }
                self.orbit_hits += exp.orbit_hits;
                self.por_pruned += exp.por_pruned;
                if exp.succs.is_empty() && !self.states[id as usize].proto.all_running() {
                    self.freeze = Some((
                        id,
                        "no enabled step short of the all-running state".to_string(),
                    ));
                    self.requeue(cost, &layer[k + 1..]);
                    return;
                }
                for succ in exp.succs {
                    let full_label = if succ.micro.notes.is_empty() {
                        succ.label
                    } else {
                        format!("{} [{}]", succ.label, succ.micro.notes.join("; "))
                    };
                    let nid = self.intern(succ.micro.st);
                    self.edges[id as usize].push((nid, succ.micro.faults > 0));
                    let cand = (f + succ.micro.faults, steps + 1);
                    if cand < self.dist[nid as usize] {
                        self.dist[nid as usize] = cand;
                        self.parent[nid as usize] = Some((id, full_label));
                        if let Some(perm) = succ.perm {
                            self.parent_move[nid as usize] =
                                Some((succ.kind, perm, succ.micro.faults));
                        }
                        self.buckets.entry(cand).or_default().push(nid);
                    }
                }
                if self.n_expanded >= self.ctx.cfg.budget && self.worklist_pending(&layer[k + 1..])
                {
                    self.budget_hit = true;
                    self.requeue(cost, &layer[k + 1..]);
                    return;
                }
            }
        }
    }

    /// The stored (canonical-frame) witness path to `id`.
    fn witness_to(&self, id: u32) -> Witness {
        let mut steps = Vec::new();
        let mut cur = id;
        while let Some((p, label)) = &self.parent[cur as usize] {
            steps.push(label.clone());
            cur = *p;
        }
        steps.reverse();
        Witness { steps, faults: self.dist[id as usize].0 as usize }
    }

    /// Whether `s` satisfies either freeze predicate the exploration
    /// stops on: a lost rank in the Vcl, or no enabled step short of the
    /// all-running state.
    fn frozen(&self, s: &ProdState) -> bool {
        s.proto.lost_rank().is_some()
            || (self.ctx.moves(s).is_empty() && !s.proto.all_running())
    }

    /// Replays `moves` — `(move, recorded faults, recorded branch
    /// index)` triples — concretely from `init`. Succeeds only when
    /// every move is still enabled in order and its recorded branch
    /// still exists with the recorded fault count. Every branch
    /// `apply_move` returns is a real successor, so any successful
    /// replay is a valid full-graph path; the caller's frozen-end check
    /// decides whether it is a witness. Returns the rendered step
    /// labels and the final state.
    fn replay_exact(
        &self,
        init: &ProdState,
        moves: &[(MoveKind, u32, usize)],
    ) -> Option<(Vec<String>, ProdState)> {
        let mut u = init.clone();
        let mut labels = Vec::with_capacity(moves.len());
        for (m, faults, branch) in moves {
            if !self.ctx.moves(&u).contains(m) {
                return None;
            }
            let label = self.ctx.label_of(&u, m);
            let mut scratch = SiteLog::new();
            let micros = self.ctx.apply_move(&u, m, &mut scratch);
            let micro = micros.into_iter().nth(*branch)?;
            if micro.faults != *faults {
                return None;
            }
            labels.push(if micro.notes.is_empty() {
                label
            } else {
                format!("{label} [{}]", micro.notes.join("; "))
            });
            u = micro.st;
        }
        Some((labels, u))
    }

    /// Greedily deletes zero-fault steps from a replayed witness
    /// schedule, keeping a deletion only when the remaining schedule
    /// still replays unambiguously and still ends frozen. The ample-set
    /// filter forces commuting moves early, which can leave steps in the
    /// reduced-graph witness that the unreduced minimal schedule would
    /// have left pending at the freeze; this strips them again. The
    /// result is a valid full-graph path, so its (faults, steps) cost
    /// never undercuts the true minimum.
    fn minimize_moves(
        &self,
        init: &ProdState,
        mut moves: Vec<(MoveKind, u32, usize)>,
    ) -> Vec<(MoveKind, u32, usize)> {
        loop {
            let mut improved = false;
            let mut i = 0;
            while i < moves.len() {
                if moves[i].1 == 0 {
                    let mut trial = moves.clone();
                    trial.remove(i);
                    if let Some((_, end)) = self.replay_exact(init, &trial) {
                        if self.frozen(&end) {
                            moves = trial;
                            improved = true;
                            continue;
                        }
                    }
                }
                i += 1;
            }
            if !improved {
                return moves;
            }
        }
    }

    /// Reduce mode: replays the canonical-frame path concretely from the
    /// true initial state, transporting each stored move through the
    /// accumulated permutation, so labels and notes name the machines and
    /// ranks of an actual run, then strips ample-forced steps via
    /// [`Self::minimize_moves`]. Returns the witness plus the concrete
    /// freeze state the (minimized) replay lands in.
    fn witness_replayed(&self, id: u32) -> (Witness, ProdState) {
        let mut chain = vec![id];
        let mut cur = id;
        while let Some((p, _)) = &self.parent[cur as usize] {
            chain.push(*p);
            cur = *p;
        }
        chain.reverse();

        // sigma_k maps the canonical frame of chain[k] to the concrete
        // frame; each edge's raw→canonical perm composes in.
        let mut sigma = self.init_perm.invert();
        let init = sigma.apply_state(&self.ctx, &self.states[chain[0] as usize]);
        let mut u = init.clone();
        let mut steps = Vec::new();
        let mut moves: Vec<(MoveKind, u32, usize)> = Vec::new();
        let mut clean = true;
        for &cid in chain.iter().skip(1) {
            let nid = cid as usize;
            let Some((kind, pi, faults)) = &self.parent_move[nid] else {
                // Root edge bookkeeping missing (cannot happen in reduce
                // mode); fall back to the stored label.
                steps.push(self.parent[nid].as_ref().expect("parent edge").1.clone());
                clean = false;
                continue;
            };
            let sigma_next = pi.invert().then(&sigma);
            let expected = sigma_next.apply_state(&self.ctx, &self.states[nid]);
            let cm = sigma.apply_move(&self.ctx, kind);
            let label = self.ctx.label_of(&u, &cm);
            let mut scratch = SiteLog::new();
            let micros = self.ctx.apply_move(&u, &cm, &mut scratch);
            match micros
                .iter()
                .position(|m| m.st == expected && m.faults == *faults)
            {
                Some(branch) => {
                    let m = &micros[branch];
                    if m.notes.is_empty() {
                        steps.push(label);
                    } else {
                        steps.push(format!("{label} [{}]", m.notes.join("; ")));
                    }
                    moves.push((cm, *faults, branch));
                }
                None => {
                    // Replay diverged (a canonicalization bug would land
                    // here) — keep the canonical-frame label rather than
                    // fabricate one.
                    steps.push(self.parent[nid].as_ref().expect("parent edge").1.clone());
                    clean = false;
                }
            }
            u = expected;
            sigma = sigma_next;
        }
        let faults = self.dist[id as usize].0 as usize;
        if clean {
            let minimized = self.minimize_moves(&init, moves);
            if let Some((labels, end)) = self.replay_exact(&init, &minimized) {
                if self.frozen(&end) {
                    return (Witness { steps: labels, faults }, end);
                }
            }
        }
        (Witness { steps, faults }, u)
    }

    pub(crate) fn finish(self) -> ModelCheckResult {
        let mut diagnostics = Vec::new();
        let frontier_ids: std::collections::HashSet<u32> = self
            .buckets
            .values()
            .flatten()
            .copied()
            .filter(|&id| !self.expanded[id as usize])
            .collect();
        let frontier = frontier_ids.len();

        let witness_and_state: Option<(Witness, Option<ProdState>)> =
            self.freeze.as_ref().map(|(id, _)| {
                if self.ctx.cfg.reduce {
                    let (w, final_state) = self.witness_replayed(*id);
                    (w, Some(final_state))
                } else {
                    (self.witness_to(*id), None)
                }
            });

        let verdict = if let Some((id, why)) = &self.freeze {
            let (witness, final_state) = witness_and_state.as_ref().expect("freeze witness");
            // Phrase the blocked-ranks diagnosis in the concrete frame the
            // replayed witness ends in, not the orbit representative's.
            let blocked = match final_state {
                Some(st) => self.blocked_ranks_of(st),
                None => self.blocked_ranks_of(&self.states[*id as usize]),
            };
            diagnostics.push(Diagnostic::new(
                Severity::Error,
                "FC003",
                0,
                format!(
                    "reachable freeze state ({why}) under the {} backend \
                     after {} fault(s) in {} step(s){blocked}",
                    self.ctx.cfg.backend.name(),
                    witness.faults,
                    witness.steps.len()
                ),
                "the scenario can wedge the dispatcher's recovery \
                 bookkeeping; run the witness schedule through the dynamic \
                 simulator (or pass --expect-freeze to sweep it anyway)",
            ));
            StaticVerdict::Freezes
        } else if self.budget_hit {
            diagnostics.push(Diagnostic::new(
                Severity::Warning,
                "FC006",
                0,
                format!(
                    "exploration budget exceeded: {} state(s) expanded, \
                     {frontier} frontier state(s) unexplored — verdict unknown{}",
                    self.n_expanded,
                    self.stall_summary()
                ),
                "raise --budget to finish the exploration, or simplify the \
                 scenario's unbounded counters",
            ));
            StaticVerdict::Unknown
        } else {
            StaticVerdict::Survives
        };

        if verdict == StaticVerdict::Survives {
            // FC001 — halts that no explored path ever executed.
            for site in &self.sites {
                if !site.executed {
                    diagnostics.push(Diagnostic::new(
                        Severity::Warning,
                        "FC001",
                        site.line,
                        format!(
                            "`halt` in daemon {} is never executed on any \
                             reachable schedule",
                            self.ctx.sc.classes[site.class].name
                        ),
                        "the fault injection is statically unreachable; the \
                         scenario strains nothing",
                    ));
                }
            }
            // FC004 — fault/relaunch cycles that never pass all-running.
            for line in self.livelock_sccs() {
                diagnostics.push(line);
            }
        }
        // FC005 — halts observed with no controlled process.
        for site in &self.sites {
            if site.stale {
                diagnostics.push(Diagnostic::new(
                    Severity::Warning,
                    "FC005",
                    site.line,
                    format!(
                        "`halt` in daemon {} can execute with no controlled \
                         process (the target incarnation is already dead)",
                        self.ctx.sc.classes[site.class].name
                    ),
                    "guard the halt behind an onload-reached node or answer \
                     the order with `no` when the machine is empty",
                ));
            }
        }
        // FC002 — every fault provably lands before the first commit.
        if let Some(d) = self.fc002() {
            diagnostics.push(d);
        }
        // FC007 — reduction statistics (info): how much work the orbit
        // and ample reductions saved, and whether symmetry applied at all.
        if self.ctx.cfg.reduce {
            diagnostics.push(Diagnostic::new(
                Severity::Info,
                "FC007",
                0,
                format!(
                    "reduction ({} backend): {} canonical state(s) interned, \
                     {} orbit merge(s), {} commuting step(s) pruned; machine \
                     symmetry {}, rank symmetry {}",
                    self.ctx.cfg.backend.name(),
                    self.states.len(),
                    self.orbit_hits,
                    self.por_pruned,
                    if self.ctx.profile.host_sym { "on" } else { "off" },
                    if self.ctx.profile.rank_sym { "on" } else { "off" },
                ),
                "informational — compare against an unreduced run to gauge \
                 the reduction factor",
            ));
        }

        let state_digest = {
            use std::hash::{Hash, Hasher};
            let mut h = Fnv1a::new();
            for st in &self.states {
                st.hash(&mut h);
            }
            h.finish()
        };

        ModelCheckResult {
            summary: ModelSummary {
                verdict,
                explored: self.n_expanded,
                frontier,
                reduced: self.ctx.cfg.reduce,
                interned: self.states.len(),
                orbit_hits: self.orbit_hits,
                por_pruned: self.por_pruned,
                state_digest,
                witness: witness_and_state.map(|(w, _)| w),
            },
            diagnostics,
        }
    }

    /// FC006 detail: where a budget-exhausted exploration stalled — the
    /// cheapest pending cost layers and their pending-state counts.
    fn stall_summary(&self) -> String {
        let mut layers: Vec<((u32, u32), usize)> = Vec::new();
        for (&cost, bucket) in &self.buckets {
            let pending = bucket.iter().filter(|&&id| !self.expanded[id as usize]).count();
            if pending > 0 {
                layers.push((cost, pending));
            }
        }
        if layers.is_empty() {
            return String::new();
        }
        let shown: Vec<String> = layers
            .iter()
            .take(3)
            .map(|((fa, st), n)| format!("{n} at ({fa} fault(s), {st} step(s))"))
            .collect();
        let more = if layers.len() > 3 {
            format!(" and {} deeper layer(s)", layers.len() - 3)
        } else {
            String::new()
        };
        format!(
            "; stalled with {} pending across cost layers: {}{more}",
            layers.iter().map(|(_, n)| n).sum::<usize>(),
            shown.join(", ")
        )
    }

    /// For the FC003 message: which surviving ranks the op-program
    /// communication skeleton says will block on the lost rank.
    fn blocked_ranks_of(&self, s: &ProdState) -> String {
        let Some(lost) = s.proto.lost_rank() else {
            return String::new();
        };
        if self.ctx.comm_peers.is_empty() {
            return format!("; rank {lost} is permanently lost");
        }
        let blocked: Vec<String> = (0..self.ctx.cfg.n_ranks)
            .filter(|r| *r != lost as usize)
            .filter(|r| self.ctx.comm_peers[*r].contains(&(lost as u32)))
            .map(|r| r.to_string())
            .collect();
        if blocked.is_empty() {
            format!("; rank {lost} is permanently lost")
        } else {
            format!(
                "; rank {lost} is permanently lost and rank(s) {} block on \
                 it through the op-program communication graph",
                blocked.join(", ")
            )
        }
    }

    /// FC002: the purely timing-based argument — a scenario whose every
    /// timer is a compile-time constant shorter than the checkpoint period
    /// injects all of its (timer-driven) faults before any wave can
    /// commit, so every restart replays from scratch.
    fn fc002(&self) -> Option<Diagnostic> {
        let mut has_halt = false;
        let mut max_delay: Option<(i64, u32)> = None;
        for class in &self.ctx.sc.classes {
            if !class.probes.is_empty() {
                return None; // probe-driven scenarios time off live state
            }
            for node in &class.nodes {
                for tr in &node.transitions {
                    if tr.actions.iter().any(|a| matches!(a, Action::Halt)) {
                        has_halt = true;
                    }
                }
                for (_, e) in &node.timers {
                    let (_, hi) = e.const_range(&self.ctx.params)?;
                    if max_delay.is_none_or(|(m, _)| hi > m) {
                        max_delay = Some((hi, node.line));
                    }
                }
            }
        }
        let (delay, line) = max_delay?;
        if !has_halt || delay >= self.ctx.cfg.wave_period_secs {
            return None;
        }
        Some(Diagnostic::new(
            Severity::Warning,
            "FC002",
            line,
            format!(
                "every timer delay is at most {delay} s — shorter than the \
                 {} s checkpoint period, so all timer-driven faults land \
                 before the first wave can commit",
                self.ctx.cfg.wave_period_secs
            ),
            "the scenario never exercises restart-from-checkpoint; lengthen \
             the timer past the checkpoint period",
        ))
    }

    /// FC004: strongly connected components of the explored graph that
    /// contain a fault edge but no all-running state — the system keeps
    /// faulting and relaunching without ever restarting the computation.
    fn livelock_sccs(&self) -> Vec<Diagnostic> {
        let n = self.states.len();
        // Iterative Tarjan.
        let mut index_of = vec![u32::MAX; n];
        let mut low = vec![0u32; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<u32> = Vec::new();
        let mut next_index = 0u32;
        let mut sccs: Vec<Vec<u32>> = Vec::new();
        let mut call: Vec<(u32, usize)> = Vec::new();
        for root in 0..n as u32 {
            if index_of[root as usize] != u32::MAX {
                continue;
            }
            call.push((root, 0));
            index_of[root as usize] = next_index;
            low[root as usize] = next_index;
            next_index += 1;
            stack.push(root);
            on_stack[root as usize] = true;
            while let Some((v, ei)) = call.pop() {
                if ei < self.edges[v as usize].len() {
                    call.push((v, ei + 1));
                    let (w, _) = self.edges[v as usize][ei];
                    if index_of[w as usize] == u32::MAX {
                        index_of[w as usize] = next_index;
                        low[w as usize] = next_index;
                        next_index += 1;
                        stack.push(w);
                        on_stack[w as usize] = true;
                        call.push((w, 0));
                    } else if on_stack[w as usize] {
                        low[v as usize] = low[v as usize].min(index_of[w as usize]);
                    }
                } else {
                    if low[v as usize] == index_of[v as usize] {
                        let mut scc = Vec::new();
                        loop {
                            let w = stack.pop().expect("tarjan stack");
                            on_stack[w as usize] = false;
                            scc.push(w);
                            if w == v {
                                break;
                            }
                        }
                        sccs.push(scc);
                    }
                    if let Some((u, _)) = call.last() {
                        let lu = low[*u as usize].min(low[v as usize]);
                        low[*u as usize] = lu;
                    }
                }
            }
        }
        let mut out = Vec::new();
        for scc in &sccs {
            if scc.len() < 2 && {
                let v = scc[0];
                !self.edges[v as usize].iter().any(|(w, _)| *w == v)
            } {
                continue; // trivial SCC, no self-loop
            }
            let members: std::collections::HashSet<u32> = scc.iter().copied().collect();
            let has_fault = scc.iter().any(|&v| {
                self.edges[v as usize]
                    .iter()
                    .any(|(w, fault)| *fault && members.contains(w))
            });
            let runs = scc.iter().any(|&v| self.all_running[v as usize]);
            if has_fault && !runs {
                out.push(Diagnostic::new(
                    Severity::Warning,
                    "FC004",
                    0,
                    format!(
                        "fault/relaunch livelock: a cycle of {} state(s) \
                         keeps killing and relaunching daemons without ever \
                         reaching the all-running state",
                        scc.len()
                    ),
                    "the scenario can starve the run of progress without \
                     freezing it; bound the fault rate or add a terminal \
                     node",
                ));
                break; // one finding describes the pathology
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

fn phase_name(p: failmpi_mpichv::AbstractPhase) -> &'static str {
    use failmpi_mpichv::AbstractPhase as P;
    match p {
        P::Launched => "launched",
        P::Booted => "booted, unregistered",
        P::Registered => "registered",
        P::Ready => "ready",
        P::Running => "running",
        P::Stopping => "stopping",
        P::Lost => "lost",
        P::Done => "done",
    }
}

pub(crate) fn insert_msg(msgs: &mut Vec<(u8, u8, u8)>, m: (u8, u8, u8)) {
    let pos = msgs.partition_point(|x| *x <= m);
    msgs.insert(pos, m);
}

fn dedup_fire(mut v: Vec<(InstState, Effects)>) -> Vec<(InstState, Effects)> {
    // Keep deterministic order while dropping exact state duplicates with
    // identical effects (branches that converged).
    let mut out: Vec<(InstState, Effects)> = Vec::new();
    v.reverse();
    while let Some((s, e)) = v.pop() {
        if !out
            .iter()
            .any(|(s2, e2)| *s2 == s && e2.sends == e.sends && e2.halted == e.halted)
        {
            out.push((s, e));
        }
    }
    out
}

fn dedup_micro(mut v: Vec<Micro>) -> Vec<Micro> {
    v.sort_by(|a, b| (&a.st, a.faults, &a.notes).cmp(&(&b.st, b.faults, &b.notes)));
    v.dedup_by(|a, b| a.st == b.st && a.faults == b.faults);
    v
}

/// Transitive closure of "exchanges messages with" over the op-programs —
/// the communication skeleton leg of the product.
fn comm_closure(programs: &[Arc<Program>], n_ranks: usize) -> Vec<Vec<u32>> {
    if programs.is_empty() {
        return Vec::new();
    }
    let n = programs.len().min(n_ranks.max(programs.len()));
    let mut adj = vec![std::collections::HashSet::new(); n];
    for (rank, p) in programs.iter().enumerate() {
        for op in p.ops() {
            let peer = match op {
                Op::Send { to, .. } => Some(to.0 as usize),
                Op::Recv { from, .. } => Some(from.0 as usize),
                _ => None,
            };
            if let Some(peer) = peer {
                if peer < n && peer != rank {
                    adj[rank].insert(peer as u32);
                    adj[peer].insert(rank as u32);
                }
            }
        }
    }
    // Floyd-Warshall style closure (n is tiny).
    let mut changed = true;
    while changed {
        changed = false;
        for a in 0..n {
            let via: Vec<u32> = adj[a].iter().copied().collect();
            for &b in &via {
                let more: Vec<u32> = adj[b as usize]
                    .iter()
                    .copied()
                    .filter(|&c| c as usize != a && !adj[a].contains(&c))
                    .collect();
                if !more.is_empty() {
                    changed = true;
                    adj[a].extend(more);
                }
            }
        }
    }
    adj.into_iter()
        .map(|s| {
            let mut v: Vec<u32> = s.into_iter().collect();
            v.sort_unstable();
            v
        })
        .collect()
}
