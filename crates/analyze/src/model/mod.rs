//! The FC-series static model checker: bounded synchronous-product
//! reachability over {compiled FAIL automata × abstract Vcl protocol model
//! × op-program communication skeleton}.
//!
//! The paper isolated its headline finding — a fault landing on an
//! already-re-registered rank during an active recovery permanently wedges
//! the dispatcher — *dynamically*, after many 1500-second cluster runs.
//! This pass finds the same schedule in milliseconds: it explores every
//! interleaving of a small abstract deployment (by default 2 ranks on 3
//! machines) running the scenario's own compiled automata against
//! [`failmpi_mpichv::AbstractVcl`], and reports whether a freeze state
//! (stale dispatcher entry, or no enabled step short of the healthy
//! all-running state) is reachable — with the minimal fault schedule as a
//! counterexample witness.
//!
//! ## The timing abstraction
//!
//! The product is time-free but **speed-classed**, mirroring the latency
//! hierarchy of the real deployment (FAIL messages ≈ 4–11 ms, daemon
//! registration ≈ 70 ms, stop-closure + ssh relaunch ≥ 150 ms, scenario
//! timers ≥ seconds):
//!
//! * **fast** steps — FAIL message deliveries and the register/ready
//!   protocol hops — interleave freely (they genuinely race; this race is
//!   exactly the partial bugginess of paper Fig. 9);
//! * **slow** steps — spawns and stop-closures — only run when no FAIL
//!   message is in flight (a millisecond message never loses to an ssh);
//! * **quiescent** steps — scenario timers and checkpoint-wave
//!   start/commit — only run when every rank is computing and the FAIL
//!   plane is silent.
//!
//! | code  | severity | finding |
//! |-------|----------|---------|
//! | FC001 | warning  | a `halt` action is never executed on any explored path |
//! | FC002 | warning  | every fault provably lands before the first possible wave commit |
//! | FC003 | error    | reachable freeze state, with a minimal fault-schedule witness |
//! | FC004 | warning  | fault/relaunch livelock cycle that never reaches all-running |
//! | FC005 | warning  | a `halt` executes with no controlled process (stale target) |
//! | FC006 | warning  | exploration budget exceeded — verdict unknown, frontier summary |
//! | FC007 | info     | reduction statistics (orbit merges, pruned steps) for `--reduce` |
//!
//! Exploration is deterministic: successors are generated in a canonical
//! order, the worklist is a (faults, steps, insertion) priority queue, and
//! the reported witness is minimal in fault count, then length. The
//! [`ModelCheckConfig::scramble`] hook shuffles candidate orderings before
//! the canonical sort so tests can prove insertion-order independence.
//!
//! ## Scaling to paper-sized grids
//!
//! The paper's headline configs run 25 ranks; the raw product blows the
//! default budget well before that. [`ModelCheckConfig::reduce`] turns on
//! two sound reductions plus a parallel frontier (see [`canon`], [`por`],
//! and [`frontier`] for the arguments, and DESIGN.md for the prose):
//!
//! * **symmetry canonicalization** — machines outside every send's
//!   statically-pinned index range, and ranks outside the op-program's
//!   distinguished roles, are interchangeable; each discovered state is
//!   interned as its sorted orbit representative and witnesses are mapped
//!   back through the accumulated permutation by concrete replay;
//! * **partial-order reduction** — when every enabled step is a pure-local
//!   FAIL delivery and they all pairwise commute, only the canonically
//!   first is expanded (deliveries strictly shrink the in-flight multiset,
//!   so nothing is postponed forever);
//! * **deterministic parallel frontier** — the (faults, steps) worklist is
//!   bucketed by cost layer; a layer's states are expanded by
//!   [`ModelCheckConfig::threads`] workers and merged back in insertion
//!   order, so the JSON output is byte-identical across thread counts.

mod canon;
mod explore;
mod frontier;
mod por;
mod world;

use std::sync::Arc;

use failmpi_backend::BackendKind;
use failmpi_core::compile;
use failmpi_core::lang::compile::Scenario;
use failmpi_mpi::Program;
use failmpi_mpichv::DispatcherMode;
use serde::Serialize;

use crate::diag::Diagnostic;

use explore::Explorer;

/// How the model checker scales and bounds the product exploration.
#[derive(Clone, Debug)]
pub struct ModelCheckConfig {
    /// Protocol backend whose abstract model anchors the product (the
    /// `--backend` flag of `failck --model-check`). The Vcl dispatcher is
    /// the default; [`BackendKind::Ulfm`] and [`BackendKind::Replica`]
    /// swap in the shrink-and-continue / replication-failover models.
    pub backend: BackendKind,
    /// Abstract MPI ranks (compute processes).
    pub n_ranks: usize,
    /// Abstract machines; `n_hosts - n_ranks` are spares. Every suggested
    /// group is instantiated with one member per machine, exactly like
    /// the experiment harness deploys controllers.
    pub n_hosts: usize,
    /// Maximum number of product states to expand before giving up with
    /// FC006 / [`StaticVerdict::Unknown`].
    pub budget: usize,
    /// Dispatcher bookkeeping variant to model.
    pub mode: DispatcherMode,
    /// Parameter overrides by name (defaults come from the scenario). The
    /// machine-count parameter `N` is auto-set to `n_hosts - 1` unless
    /// overridden here, mirroring how the figure drivers scale it.
    pub params: Vec<(String, i64)>,
    /// Checkpoint period in seconds, for the FC002 timing argument.
    pub wave_period_secs: i64,
    /// Test hook: deterministically shuffle candidate successor lists
    /// before the canonical sort. Any seed must produce byte-identical
    /// results — the determinism property test relies on this.
    pub scramble: Option<u64>,
    /// Turn on symmetry canonicalization + partial-order reduction. Off by
    /// default: the unreduced state digest is a persisted fuzzer coverage
    /// key, so the default exploration must stay bit-stable.
    pub reduce: bool,
    /// Worker threads for frontier expansion (1 = in-line). Output is
    /// byte-identical across thread counts by construction.
    pub threads: usize,
    /// Test hook: apply a seeded machine permutation to the initial state
    /// before exploring. With `reduce` on, any seed must leave verdict and
    /// witness cost unchanged — the canonicalization property test's lever.
    pub permute_seed: Option<u64>,
}

impl ModelCheckConfig {
    /// Number of process units the backend's abstract model tracks. Equal
    /// to `n_ranks` except under replication, where each protected rank
    /// adds a replica unit (see [`failmpi_replica::AbstractReplica`]).
    pub(crate) fn n_units(&self) -> usize {
        match self.backend {
            BackendKind::Replica => {
                self.n_ranks + self.n_hosts.saturating_sub(self.n_ranks).min(self.n_ranks)
            }
            _ => self.n_ranks,
        }
    }
}

impl Default for ModelCheckConfig {
    fn default() -> Self {
        ModelCheckConfig {
            backend: BackendKind::Vcl,
            n_ranks: 2,
            n_hosts: 3,
            budget: 50_000,
            mode: DispatcherMode::Historical,
            params: Vec::new(),
            wave_period_secs: 30,
            scramble: None,
            reduce: false,
            threads: 1,
            permute_seed: None,
        }
    }
}

/// The model checker's pre-run prediction for a scenario.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StaticVerdict {
    /// No freeze state is reachable in the bounded product.
    Survives,
    /// A freeze state is reachable (FC003 carries the witness).
    Freezes,
    /// The exploration budget ran out before a verdict (FC006).
    Unknown,
    /// The scenario declares no deployment (no `instance`/`group` sugar),
    /// so there is nothing to bind the product to.
    NotApplicable,
}

impl std::fmt::Display for StaticVerdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            StaticVerdict::Survives => "survives",
            StaticVerdict::Freezes => "freezes",
            StaticVerdict::Unknown => "unknown",
            StaticVerdict::NotApplicable => "not-applicable",
        })
    }
}

impl Serialize for StaticVerdict {
    fn serialize_json(&self, out: &mut String) {
        serde::write_json_str(out, &self.to_string());
    }
}

/// The minimal counterexample schedule reaching the freeze state.
#[derive(Clone, Debug, PartialEq, Eq, Serialize)]
pub struct Witness {
    /// Product steps from the initial state, in order.
    pub steps: Vec<String>,
    /// Faults injected along the schedule (the minimized quantity).
    pub faults: usize,
}

/// 64-bit FNV-1a. `std::hash::DefaultHasher` is explicitly unstable
/// across Rust releases, and [`ModelSummary::state_digest`] feeds the
/// fuzzer's persisted coverage corpus, so the algorithm must be pinned.
pub(crate) struct Fnv1a(pub u64);

impl Fnv1a {
    pub(crate) fn new() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }
}

impl std::hash::Hasher for Fnv1a {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

/// Machine-readable exploration summary, attached to a
/// [`crate::Report`] when `--model-check` runs.
#[derive(Clone, Debug, PartialEq, Eq, Serialize)]
pub struct ModelSummary {
    /// The verdict.
    pub verdict: StaticVerdict,
    /// Product states expanded.
    pub explored: usize,
    /// Discovered-but-unexpanded states left when exploration stopped
    /// (nonzero only for [`StaticVerdict::Unknown`] and freeze stops).
    pub frontier: usize,
    /// Whether symmetry + partial-order reduction was on for this run.
    pub reduced: bool,
    /// Distinct (canonical, when reduced) product states interned.
    pub interned: usize,
    /// Successor states whose canonicalization was a nontrivial orbit
    /// merge (zero when `reduced` is false).
    pub orbit_hits: usize,
    /// Enabled steps the ample-set filter declined to expand (zero when
    /// `reduced` is false).
    pub por_pruned: usize,
    /// Order-sensitive FNV-1a digest over every interned product state,
    /// in discovery order — a cheap behavioural signature of the explored
    /// state space. Two scenarios whose products unfold identically share
    /// a digest; the scenario fuzzer uses it as its static coverage
    /// signal. Deterministic per build (same source, same config, same
    /// digest), but not an across-release file format.
    pub state_digest: u64,
    /// Minimal fault schedule, when the verdict is a freeze.
    pub witness: Option<Witness>,
}

/// Result of one model-check run: the summary plus FC diagnostics.
#[derive(Clone, Debug)]
pub struct ModelCheckResult {
    /// Exploration summary (verdict, counts, witness).
    pub summary: ModelSummary,
    /// FC001–FC007 findings.
    pub diagnostics: Vec<Diagnostic>,
}

fn not_applicable() -> ModelCheckResult {
    ModelCheckResult {
        summary: ModelSummary {
            verdict: StaticVerdict::NotApplicable,
            explored: 0,
            frontier: 0,
            reduced: false,
            interned: 0,
            orbit_hits: 0,
            por_pruned: 0,
            state_digest: 0,
            witness: None,
        },
        diagnostics: Vec::new(),
    }
}

/// Model-checks FAIL source text. A source that does not compile gets
/// [`StaticVerdict::NotApplicable`] with no FC diagnostics (the FA000
/// lint already reports the compile error).
pub fn model_check_source(src: &str, cfg: &ModelCheckConfig) -> ModelCheckResult {
    match compile(src) {
        Ok(sc) => model_check_scenario(&sc, cfg),
        Err(_) => not_applicable(),
    }
}

/// Model-checks a compiled scenario against the abstract Vcl model.
pub fn model_check_scenario(sc: &Scenario, cfg: &ModelCheckConfig) -> ModelCheckResult {
    model_check_with_programs(sc, &[], cfg)
}

/// Like [`model_check_scenario`], additionally threading the op-program
/// communication skeleton into the freeze diagnosis: when rank programs
/// are supplied, the FC003 message names which surviving ranks block on
/// the lost one through the program's communication graph.
pub fn model_check_with_programs(
    sc: &Scenario,
    programs: &[Arc<Program>],
    cfg: &ModelCheckConfig,
) -> ModelCheckResult {
    if sc.suggested.groups.is_empty() {
        // No machine controllers: the scenario is a class library (paper
        // Fig. 4) — there is no deployment to bind the product to.
        return not_applicable();
    }
    let mut ex = Explorer::new(sc, cfg, programs);
    ex.run();
    ex.finish()
}
