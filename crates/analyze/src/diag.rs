//! The shared diagnostic type and its renderers.
//!
//! Every pass in this crate — scenario automata checks ([`crate::scenario`])
//! and op-program checks ([`crate::ops`]) — reports findings as
//! [`Diagnostic`] values collected into a [`Report`]. The harness, the
//! `failck` binary and CI all consume the same representation, in either
//! human-readable or JSON form.

use std::fmt;

use serde::Serialize;

use crate::model::ModelSummary;

/// How bad a finding is.
///
/// `Error` findings describe scenarios/programs that cannot behave as
/// written (dead guards, orphan sends, guaranteed deadlocks); strict-mode
/// gating refuses to run them. `Warning` findings are suspicious but
/// runnable (unreachable nodes, unused timers, write-only variables).
/// `Info` findings are purely informational (reduction statistics) and
/// never gate anything — declared first so the derived order keeps
/// `Info < Warning < Error`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational; never gates a run or an exit code.
    Info,
    /// Suspicious but runnable.
    Warning,
    /// The artifact cannot behave as written.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

// The vendored serde derive only handles named-field structs, so the enum
// gets a hand-written impl emitting its display name as a JSON string.
impl Serialize for Severity {
    fn serialize_json(&self, out: &mut String) {
        serde::write_json_str(out, &self.to_string());
    }
}

/// Source span of an op-program finding: which rank's instruction stream
/// and which op inside it.
///
/// Op-programs have no source text, so this is the machine-readable
/// location FA diagnostics get from `line`: `op` is the 1-based op index
/// inside rank `rank`'s program (0 anchors the whole program).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub struct Span {
    /// The rank whose program the finding is in.
    pub rank: u32,
    /// 1-based op index within that rank's program; 0 = whole program.
    pub op: u32,
}

/// One finding, tied to a stable code and a source location.
///
/// For scenario passes `line` is the 1-based source line in the `.fail`
/// text. For op-program passes it is the **1-based op index** within the
/// flagged rank's program (op-programs have no source text), and `span`
/// additionally names the rank so JSON consumers need not parse the
/// message.
#[derive(Clone, Debug, PartialEq, Eq, Serialize)]
pub struct Diagnostic {
    /// Error, warning, or info.
    pub severity: Severity,
    /// Stable code: `FA…` for scenario passes, `FB…` for op-program
    /// passes, `FC…` for model-checking verdicts.
    pub code: &'static str,
    /// 1-based source line (scenarios) or op index (op-programs); 0 when
    /// the finding has no better anchor than the whole artifact.
    pub line: u32,
    /// Rank/op location for op-program findings; `None` for scenario and
    /// model-checking findings (which anchor on `line`).
    pub span: Option<Span>,
    /// What is wrong.
    pub message: String,
    /// How to fix it.
    pub help: String,
}

impl Diagnostic {
    /// Shorthand constructor (no span).
    pub fn new(
        severity: Severity,
        code: &'static str,
        line: u32,
        message: impl Into<String>,
        help: impl Into<String>,
    ) -> Self {
        Diagnostic {
            severity,
            code,
            line,
            span: None,
            message: message.into(),
            help: help.into(),
        }
    }

    /// Attaches an op-program span (builder style).
    pub fn with_span(mut self, rank: u32, op: u32) -> Self {
        self.span = Some(Span { rank, op });
        self
    }
}

/// A sorted batch of diagnostics for one artifact.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize)]
pub struct Report {
    /// The artifact the diagnostics refer to (file name, scenario name,
    /// or op-program set label).
    pub subject: String,
    /// Findings, sorted by line then code.
    pub diagnostics: Vec<Diagnostic>,
    /// Model-check exploration summary, present when the report came from
    /// a `--model-check` run (the FC findings live in `diagnostics`).
    /// Boxed: the summary is large and most reports (plain lints) carry
    /// none, so `Result<_, Report>` stays small.
    pub model: Option<Box<ModelSummary>>,
}

impl Report {
    /// Wraps diagnostics for `subject`, sorting them by (line, code).
    pub fn new(subject: impl Into<String>, mut diagnostics: Vec<Diagnostic>) -> Self {
        diagnostics.sort_by(|a, b| (a.line, a.code).cmp(&(b.line, b.code)));
        Report {
            subject: subject.into(),
            diagnostics,
            model: None,
        }
    }

    /// Attaches a model-check summary (builder style).
    pub fn with_model(mut self, model: ModelSummary) -> Self {
        self.model = Some(Box::new(model));
        self
    }

    /// Whether any finding is `Error`-level.
    pub fn has_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }

    /// Number of `Error`-level findings.
    pub fn error_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Number of `Warning`-level findings.
    pub fn warning_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
            .count()
    }

    /// Whether any finding is at least `Warning`-level — the strict-mode
    /// gate (`Info` findings never fail a run).
    pub fn has_gating_findings(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity >= Severity::Warning)
    }

    /// Renders the findings the way compilers do:
    ///
    /// ```text
    /// scenario.fail:7: error[FA002]: guard condition is always false …
    ///     help: remove the transition or fix the condition
    /// ```
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            let at = match d.span {
                Some(s) => format!(" (rank {}, op {})", s.rank, s.op),
                None => String::new(),
            };
            out.push_str(&format!(
                "{}:{}: {}[{}]: {}{}\n",
                self.subject, d.line, d.severity, d.code, d.message, at
            ));
            if !d.help.is_empty() {
                out.push_str(&format!("    help: {}\n", d.help));
            }
        }
        if let Some(m) = &self.model {
            out.push_str(&format!(
                "{}: model check: {} ({} state(s) explored)\n",
                self.subject, m.verdict, m.explored
            ));
            if let Some(w) = &m.witness {
                out.push_str(&format!(
                    "    minimal witness ({} fault(s), {} step(s)):\n",
                    w.faults,
                    w.steps.len()
                ));
                for step in &w.steps {
                    out.push_str(&format!("      {step}\n"));
                }
            }
        }
        out
    }

    /// Renders the report as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serializes")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_sorts_and_counts() {
        let r = Report::new(
            "x.fail",
            vec![
                Diagnostic::new(Severity::Warning, "FA004", 9, "b", ""),
                Diagnostic::new(Severity::Error, "FA002", 3, "a", "fix it"),
                Diagnostic::new(Severity::Warning, "FA001", 3, "c", ""),
            ],
        );
        assert_eq!(r.diagnostics[0].code, "FA001");
        assert_eq!(r.diagnostics[1].code, "FA002");
        assert_eq!(r.diagnostics[2].code, "FA004");
        assert!(r.has_errors());
        assert_eq!(r.error_count(), 1);
        assert_eq!(r.warning_count(), 2);
    }

    #[test]
    fn human_rendering_includes_location_and_help() {
        let r = Report::new(
            "s.fail",
            vec![Diagnostic::new(
                Severity::Error,
                "FA002",
                7,
                "always false",
                "remove it",
            )],
        );
        let text = r.render_human();
        assert!(text.contains("s.fail:7: error[FA002]: always false"));
        assert!(text.contains("help: remove it"));
    }

    #[test]
    fn json_rendering_is_parseable_and_complete() {
        let r = Report::new(
            "s.fail",
            vec![Diagnostic::new(Severity::Warning, "FB004", 4, "m", "h")
                .with_span(2, 4)],
        );
        let v = serde_json::from_str(&r.to_json()).unwrap();
        assert_eq!(v["subject"].as_str(), Some("s.fail"));
        assert_eq!(v["diagnostics"][0]["severity"].as_str(), Some("warning"));
        assert_eq!(v["diagnostics"][0]["code"].as_str(), Some("FB004"));
        assert_eq!(v["diagnostics"][0]["line"].as_u64(), Some(4));
        assert_eq!(v["diagnostics"][0]["span"]["rank"].as_u64(), Some(2));
        assert_eq!(v["diagnostics"][0]["span"]["op"].as_u64(), Some(4));
    }

    #[test]
    fn spanless_diagnostics_serialize_null_span() {
        let r = Report::new(
            "s.fail",
            vec![Diagnostic::new(Severity::Error, "FA002", 7, "m", "h")],
        );
        assert!(r.to_json().contains("\"span\": null"));
        // Human rendering mentions the span only when one exists.
        assert!(!r.render_human().contains("rank"));
        let spanned = Report::new(
            "p",
            vec![Diagnostic::new(Severity::Error, "FB001", 3, "m", "h")
                .with_span(1, 3)],
        );
        assert!(spanned.render_human().contains("(rank 1, op 3)"));
    }
}
