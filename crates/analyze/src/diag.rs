//! The shared diagnostic type and its renderers.
//!
//! Every pass in this crate — scenario automata checks ([`crate::scenario`])
//! and op-program checks ([`crate::ops`]) — reports findings as
//! [`Diagnostic`] values collected into a [`Report`]. The harness, the
//! `failck` binary and CI all consume the same representation, in either
//! human-readable or JSON form.

use std::fmt;

use serde::Serialize;

/// How bad a finding is.
///
/// `Error` findings describe scenarios/programs that cannot behave as
/// written (dead guards, orphan sends, guaranteed deadlocks); strict-mode
/// gating refuses to run them. `Warning` findings are suspicious but
/// runnable (unreachable nodes, unused timers, write-only variables).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Suspicious but runnable.
    Warning,
    /// The artifact cannot behave as written.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

// The vendored serde derive only handles named-field structs, so the enum
// gets a hand-written impl emitting its display name as a JSON string.
impl Serialize for Severity {
    fn serialize_json(&self, out: &mut String) {
        serde::write_json_str(out, &self.to_string());
    }
}

/// One finding, tied to a stable code and a source location.
///
/// For scenario passes `line` is the 1-based source line in the `.fail`
/// text. For op-program passes it is the **1-based op index** within the
/// flagged rank's program (op-programs have no source text).
#[derive(Clone, Debug, PartialEq, Eq, Serialize)]
pub struct Diagnostic {
    /// Error or warning.
    pub severity: Severity,
    /// Stable code: `FA…` for scenario passes, `FB…` for op-program passes.
    pub code: &'static str,
    /// 1-based source line (scenarios) or op index (op-programs); 0 when
    /// the finding has no better anchor than the whole artifact.
    pub line: u32,
    /// What is wrong.
    pub message: String,
    /// How to fix it.
    pub help: String,
}

impl Diagnostic {
    /// Shorthand constructor.
    pub fn new(
        severity: Severity,
        code: &'static str,
        line: u32,
        message: impl Into<String>,
        help: impl Into<String>,
    ) -> Self {
        Diagnostic {
            severity,
            code,
            line,
            message: message.into(),
            help: help.into(),
        }
    }
}

/// A sorted batch of diagnostics for one artifact.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize)]
pub struct Report {
    /// The artifact the diagnostics refer to (file name, scenario name,
    /// or op-program set label).
    pub subject: String,
    /// Findings, sorted by line then code.
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// Wraps diagnostics for `subject`, sorting them by (line, code).
    pub fn new(subject: impl Into<String>, mut diagnostics: Vec<Diagnostic>) -> Self {
        diagnostics.sort_by(|a, b| (a.line, a.code).cmp(&(b.line, b.code)));
        Report {
            subject: subject.into(),
            diagnostics,
        }
    }

    /// Whether any finding is `Error`-level.
    pub fn has_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }

    /// Number of `Error`-level findings.
    pub fn error_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Number of `Warning`-level findings.
    pub fn warning_count(&self) -> usize {
        self.diagnostics.len() - self.error_count()
    }

    /// Renders the findings the way compilers do:
    ///
    /// ```text
    /// scenario.fail:7: error[FA002]: guard condition is always false …
    ///     help: remove the transition or fix the condition
    /// ```
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&format!(
                "{}:{}: {}[{}]: {}\n",
                self.subject, d.line, d.severity, d.code, d.message
            ));
            if !d.help.is_empty() {
                out.push_str(&format!("    help: {}\n", d.help));
            }
        }
        out
    }

    /// Renders the report as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serializes")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_sorts_and_counts() {
        let r = Report::new(
            "x.fail",
            vec![
                Diagnostic::new(Severity::Warning, "FA004", 9, "b", ""),
                Diagnostic::new(Severity::Error, "FA002", 3, "a", "fix it"),
                Diagnostic::new(Severity::Warning, "FA001", 3, "c", ""),
            ],
        );
        assert_eq!(r.diagnostics[0].code, "FA001");
        assert_eq!(r.diagnostics[1].code, "FA002");
        assert_eq!(r.diagnostics[2].code, "FA004");
        assert!(r.has_errors());
        assert_eq!(r.error_count(), 1);
        assert_eq!(r.warning_count(), 2);
    }

    #[test]
    fn human_rendering_includes_location_and_help() {
        let r = Report::new(
            "s.fail",
            vec![Diagnostic::new(
                Severity::Error,
                "FA002",
                7,
                "always false",
                "remove it",
            )],
        );
        let text = r.render_human();
        assert!(text.contains("s.fail:7: error[FA002]: always false"));
        assert!(text.contains("help: remove it"));
    }

    #[test]
    fn json_rendering_is_parseable_and_complete() {
        let r = Report::new(
            "s.fail",
            vec![Diagnostic::new(Severity::Warning, "FB004", 4, "m", "h")],
        );
        let v = serde_json::from_str(&r.to_json()).unwrap();
        assert_eq!(v["subject"].as_str(), Some("s.fail"));
        assert_eq!(v["diagnostics"][0]["severity"].as_str(), Some("warning"));
        assert_eq!(v["diagnostics"][0]["code"].as_str(), Some("FB004"));
        assert_eq!(v["diagnostics"][0]["line"].as_u64(), Some(4));
    }
}
