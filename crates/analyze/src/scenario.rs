//! Static verification passes over compiled FAIL scenarios.
//!
//! Every pass walks the resolved [`Scenario`] produced by
//! [`failmpi_core::lang::compile`] — no re-parsing, no execution. The codes:
//!
//! | code  | severity | finding |
//! |-------|----------|---------|
//! | FA000 | error    | the source does not compile (wrapped [`CompileError`]) |
//! | FA001 | warning  | node unreachable from the initial node |
//! | FA002 | error    | guard condition constant-false under default parameters |
//! | FA003 | warning  | transition shadowed by an earlier unconditional twin |
//! | FA004 | warning  | timer armed but never fires a transition |
//! | FA005 | warn/err | timer delay constant zero (warning) or negative (error) |
//! | FA006 | warning  | variable written but never read |
//! | FA007 | warning  | probe never read by guard or expression |
//! | FA008 | error    | message sent to a class that never receives it |
//! | FA009 | error    | `?msg` guard that no other daemon can ever satisfy |
//! | FA010 | error    | constant group index outside the declared group bounds |
//!
//! FA008/FA009 are the static shadow of a scenario *freeze*: a daemon
//! parked forever in a node whose only exits wait for traffic that cannot
//! arrive. They only run when the source carries deployment sugar
//! (`instance` / `group` declarations) — a bare class fragment does not
//! pin down who talks to whom.

use std::collections::{HashMap, HashSet};

use failmpi_core::lang::ast::BinOp;
use failmpi_core::lang::compile::{Action, Class, Dest, Expr, Guard, Scenario};
use failmpi_core::CompileError;

use crate::diag::{Diagnostic, Severity};

/// Compiles `src` and analyzes the result. A compile failure becomes a
/// single `FA000` error diagnostic carrying the compiler's line number, so
/// callers (failck, the harness lint gate, CI) handle broken and
/// suspicious sources through one channel.
pub fn check_source(src: &str) -> Vec<Diagnostic> {
    match failmpi_core::compile(src) {
        Ok(s) => analyze_scenario(&s),
        Err(e) => vec![compile_error_diag(&e)],
    }
}

/// Wraps a [`CompileError`] as the `FA000` diagnostic.
pub fn compile_error_diag(e: &CompileError) -> Diagnostic {
    Diagnostic::new(
        Severity::Error,
        "FA000",
        e.line,
        format!("scenario does not compile: {}", e.message),
        "fix the compile error before running any other check",
    )
}

/// Runs every scenario pass and returns the (unsorted) findings.
pub fn analyze_scenario(s: &Scenario) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for class in &s.classes {
        check_reachability(class, &mut out);
        check_guard_conditions(s, class, &mut out);
        check_shadowed_transitions(s, class, &mut out);
        check_timers(s, class, &mut out);
        check_var_def_use(class, &mut out);
    }
    // Cross-daemon matching needs the deployment sugar to know which class
    // sits behind each destination name.
    if !s.suggested.instances.is_empty() || !s.suggested.groups.is_empty() {
        check_message_matching(s, &mut out);
        check_group_bounds(s, &mut out);
    }
    out
}

/// Walks every expression in `class`, with the line it is anchored to.
fn for_each_expr(class: &Class, mut f: impl FnMut(&Expr, u32)) {
    for (_, e) in &class.var_init {
        f(e, class.line);
    }
    for node in &class.nodes {
        for (_, e) in &node.always {
            f(e, node.line);
        }
        for (_, e) in &node.timers {
            f(e, node.line);
        }
        for t in &node.transitions {
            for c in &t.conds {
                f(c, t.line);
            }
            for a in &t.actions {
                match a {
                    Action::Assign(_, e) => f(e, t.line),
                    Action::Send {
                        dest: Dest::Group(_, e),
                        ..
                    } => f(e, t.line),
                    _ => {}
                }
            }
        }
    }
}

/// Collects every `Var` slot mentioned inside `e` into `slots`.
fn collect_var_reads(e: &Expr, slots: &mut HashSet<usize>) {
    match e {
        Expr::Int(_) | Expr::Param(_) => {}
        Expr::Var(i) => {
            slots.insert(*i);
        }
        Expr::Neg(a) => collect_var_reads(a, slots),
        Expr::Rand(a, b) | Expr::Bin(_, a, b) => {
            collect_var_reads(a, slots);
            collect_var_reads(b, slots);
        }
    }
}

/// FA001: nodes not reachable from node 0 by any chain of `goto`s.
fn check_reachability(class: &Class, out: &mut Vec<Diagnostic>) {
    if class.nodes.is_empty() {
        return;
    }
    let mut seen = vec![false; class.nodes.len()];
    let mut stack = vec![0usize];
    seen[0] = true;
    while let Some(i) = stack.pop() {
        for t in &class.nodes[i].transitions {
            for a in &t.actions {
                if let Action::Goto(j) = a {
                    if !seen[*j] {
                        seen[*j] = true;
                        stack.push(*j);
                    }
                }
            }
        }
    }
    for (i, node) in class.nodes.iter().enumerate() {
        if !seen[i] {
            out.push(Diagnostic::new(
                Severity::Warning,
                "FA001",
                node.line,
                format!(
                    "class `{}`: node {} is unreachable from the initial node",
                    class.name, node.label
                ),
                "add a `goto` path to it or delete the node",
            ));
        }
    }
}

/// FA002: a guard side-condition that constant-folds to 0 under the
/// default parameters — the transition can never fire as shipped.
fn check_guard_conditions(s: &Scenario, class: &Class, out: &mut Vec<Diagnostic>) {
    for node in &class.nodes {
        for t in &node.transitions {
            for c in &t.conds {
                if c.fold_const(&s.param_defaults) == Some(0) {
                    out.push(Diagnostic::new(
                        Severity::Error,
                        "FA002",
                        t.line,
                        format!(
                            "class `{}`, node {}: guard condition is always \
                             false under default parameters",
                            class.name, node.label
                        ),
                        "the transition can never fire; fix the condition \
                         or remove the transition",
                    ));
                }
            }
        }
    }
}

/// Whether every side-condition of a transition constant-folds to nonzero
/// (an unconditional transition trivially qualifies).
fn conds_const_true(conds: &[Expr], params: &[i64]) -> bool {
    conds
        .iter()
        .all(|c| matches!(c.fold_const(params), Some(v) if v != 0))
}

/// FA003: within one node, a transition whose guard already fired
/// unconditionally on an earlier transition. Guards are tested in priority
/// order, so the later twin is dead code.
fn check_shadowed_transitions(s: &Scenario, class: &Class, out: &mut Vec<Diagnostic>) {
    for node in &class.nodes {
        for (i, t) in node.transitions.iter().enumerate() {
            let shadowed_by = node.transitions[..i]
                .iter()
                .find(|prev| prev.guard == t.guard && conds_const_true(&prev.conds, &s.param_defaults));
            if let Some(prev) = shadowed_by {
                out.push(Diagnostic::new(
                    Severity::Warning,
                    "FA003",
                    t.line,
                    format!(
                        "class `{}`, node {}: transition is shadowed by the \
                         unconditional transition on line {} with the same guard",
                        class.name, node.label, prev.line
                    ),
                    "reorder the transitions or add a condition to the earlier one",
                ));
            }
        }
    }
}

/// FA004 (armed timer never guards a transition) and FA005 (constant zero
/// or negative delay).
fn check_timers(s: &Scenario, class: &Class, out: &mut Vec<Diagnostic>) {
    let mut guarded: HashSet<usize> = HashSet::new();
    for node in &class.nodes {
        for t in &node.transitions {
            if let Guard::Timer(slot) = t.guard {
                guarded.insert(slot);
            }
        }
    }
    let mut reported_unused: HashSet<usize> = HashSet::new();
    for node in &class.nodes {
        for (slot, delay) in &node.timers {
            if !guarded.contains(slot) && reported_unused.insert(*slot) {
                out.push(Diagnostic::new(
                    Severity::Warning,
                    "FA004",
                    node.line,
                    format!(
                        "class `{}`: timer `{}` is armed but never fires a transition",
                        class.name, class.timer_names[*slot]
                    ),
                    "add a `TIMER -> …` transition or drop the timer",
                ));
            }
            match delay.fold_const(&s.param_defaults) {
                Some(v) if v < 0 => out.push(Diagnostic::new(
                    Severity::Error,
                    "FA005",
                    node.line,
                    format!(
                        "class `{}`, node {}: timer `{}` has the constant \
                         negative delay {v}",
                        class.name, node.label, class.timer_names[*slot]
                    ),
                    "a negative delay never expires; use a non-negative delay",
                )),
                Some(0) => out.push(Diagnostic::new(
                    Severity::Warning,
                    "FA005",
                    node.line,
                    format!(
                        "class `{}`, node {}: timer `{}` has a constant zero \
                         delay and fires immediately",
                        class.name, node.label, class.timer_names[*slot]
                    ),
                    "use a positive delay, or an `onload` trigger if \
                     immediate firing is intended",
                )),
                _ => {}
            }
        }
    }
}

/// FA006 (written, never read) and FA007 (probe never read).
fn check_var_def_use(class: &Class, out: &mut Vec<Diagnostic>) {
    let mut read: HashSet<usize> = HashSet::new();
    for_each_expr(class, |e, _| collect_var_reads(e, &mut read));
    let probe_slots: HashSet<usize> = class.probes.iter().map(|(_, s)| *s).collect();
    let mut change_guarded: HashSet<usize> = HashSet::new();
    let mut written: HashSet<usize> = HashSet::new();
    written.extend(class.var_init.iter().map(|(s, _)| *s));
    for node in &class.nodes {
        written.extend(node.always.iter().map(|(s, _)| *s));
        for t in &node.transitions {
            if let Guard::Change(slot) = t.guard {
                change_guarded.insert(slot);
            }
            for a in &t.actions {
                if let Action::Assign(slot, _) = a {
                    written.insert(*slot);
                }
            }
        }
    }
    for slot in 0..class.var_names.len() {
        let name = &class.var_names[slot];
        if probe_slots.contains(&slot) {
            if !read.contains(&slot) && !change_guarded.contains(&slot) {
                out.push(Diagnostic::new(
                    Severity::Warning,
                    "FA007",
                    class.line,
                    format!(
                        "class `{}`: probe `{name}` is never read by any \
                         expression or `onchange` guard",
                        class.name
                    ),
                    "drop the probe or guard on it with `onchange`",
                ));
            }
        } else if written.contains(&slot) && !read.contains(&slot) {
            out.push(Diagnostic::new(
                Severity::Warning,
                "FA006",
                class.line,
                format!(
                    "class `{}`: variable `{name}` is written but never read",
                    class.name
                ),
                "delete the variable or use its value",
            ));
        }
    }
}

/// Resolves a destination to the class index behind it, using the
/// deployment sugar. `Sender` has no static class.
fn dest_class(s: &Scenario, dest: &Dest) -> Option<usize> {
    match dest {
        Dest::Instance(name) => s
            .suggested
            .instances
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, c)| *c),
        Dest::Group(name, _) => s
            .suggested
            .groups
            .iter()
            .find(|(n, _, _)| n == name)
            .map(|(_, _, c)| *c),
        Dest::Sender => None,
    }
}

/// FA008 (send into a class that never receives the message) and FA009
/// (`?msg` guard that no daemon can satisfy) — the static shadow of a
/// scenario freeze.
fn check_message_matching(s: &Scenario, out: &mut Vec<Diagnostic>) {
    // receives[class][msg], and sends keyed (dest class, msg).
    let mut receives: HashMap<(usize, usize), bool> = HashMap::new();
    for (ci, class) in s.classes.iter().enumerate() {
        for node in &class.nodes {
            for t in &node.transitions {
                if let Guard::Recv(m) = t.guard {
                    receives.insert((ci, m), true);
                }
            }
        }
    }
    let mut sent_to: HashSet<(usize, usize)> = HashSet::new();
    let mut sender_sends: HashSet<usize> = HashSet::new(); // msgs sent via FAIL_SENDER
    for class in &s.classes {
        for node in &class.nodes {
            for t in &node.transitions {
                for a in &t.actions {
                    if let Action::Send { msg, dest } = a {
                        match dest_class(s, dest) {
                            Some(ci) => {
                                sent_to.insert((ci, *msg));
                                if !receives.contains_key(&(ci, *msg)) {
                                    out.push(Diagnostic::new(
                                        Severity::Error,
                                        "FA008",
                                        t.line,
                                        format!(
                                            "class `{}`: message `{}` is sent to \
                                             class `{}`, which never receives it",
                                            class.name,
                                            s.messages[*msg],
                                            s.classes[ci].name
                                        ),
                                        "add a `?…` transition to the receiving \
                                         class or drop the send — as deployed, \
                                         the message is lost",
                                    ));
                                }
                            }
                            None => {
                                if matches!(dest, Dest::Sender) {
                                    sender_sends.insert(*msg);
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    for (ci, class) in s.classes.iter().enumerate() {
        for node in &class.nodes {
            for t in &node.transitions {
                if let Guard::Recv(m) = t.guard {
                    // A FAIL_SENDER reply can reach any class, so only flag
                    // guards no send can ever satisfy.
                    if !sent_to.contains(&(ci, m)) && !sender_sends.contains(&m) {
                        out.push(Diagnostic::new(
                            Severity::Error,
                            "FA009",
                            t.line,
                            format!(
                                "class `{}`, node {}: no daemon ever sends \
                                 `{}` to this class — the guard can never fire",
                                class.name,
                                node.label,
                                s.messages[m]
                            ),
                            "as deployed, a daemon parked on this guard \
                             freezes; send the message somewhere or remove \
                             the transition",
                        ));
                    }
                }
            }
        }
    }
}

/// FA010: a group send whose index constant-folds (under default
/// parameters) outside the declared `group NAME[len]` bounds.
fn check_group_bounds(s: &Scenario, out: &mut Vec<Diagnostic>) {
    for class in &s.classes {
        for node in &class.nodes {
            for t in &node.transitions {
                for a in &t.actions {
                    if let Action::Send {
                        dest: Dest::Group(name, idx),
                        ..
                    } = a
                    {
                        let Some((_, len, _)) =
                            s.suggested.groups.iter().find(|(n, _, _)| n == name)
                        else {
                            continue;
                        };
                        if let Some(k) = idx.fold_const(&s.param_defaults) {
                            if k < 0 || k >= *len as i64 {
                                out.push(Diagnostic::new(
                                    Severity::Error,
                                    "FA010",
                                    t.line,
                                    format!(
                                        "class `{}`: index {k} into group \
                                         `{name}` is outside its declared \
                                         bounds [0, {})",
                                        class.name, len
                                    ),
                                    "the runtime panics on an out-of-range \
                                     group index; clamp the expression or \
                                     grow the group",
                                ));
                            }
                        } else if is_provably_negative(idx, &s.param_defaults) {
                            out.push(Diagnostic::new(
                                Severity::Error,
                                "FA010",
                                t.line,
                                format!(
                                    "class `{}`: index into group `{name}` \
                                     is negative under default parameters",
                                    class.name
                                ),
                                "group indices must be non-negative",
                            ));
                        }
                    }
                }
            }
        }
    }
}

/// Conservative negativity check for non-constant index expressions:
/// `CONST - FAIL_RANDOM(lo, hi)` with `hi > CONST` and friends are left
/// alone; only `Neg` of a provably positive constant-range subexpression
/// is flagged. (Constant cases are handled by `fold_const` above.)
fn is_provably_negative(e: &Expr, params: &[i64]) -> bool {
    match e {
        Expr::Neg(inner) => const_range(inner, params).is_some_and(|(lo, _)| lo > 0),
        Expr::Bin(BinOp::Sub, a, b) => {
            match (const_range(a, params), const_range(b, params)) {
                (Some((_, amax)), Some((bmin, _))) => amax < bmin,
                _ => false,
            }
        }
        _ => false,
    }
}

/// Interval of possible values for `e`, when one can be derived without
/// knowing variable contents (see [`Expr::const_range`] in `failmpi-core`,
/// shared with the model checker).
fn const_range(e: &Expr, params: &[i64]) -> Option<(i64, i64)> {
    e.const_range(params)
}
