//! failmpi-analyze: static verification of FAIL scenarios and op-programs.
//!
//! The paper's methodology compiles FAIL scenarios and ships them to a
//! cluster; a scenario bug (a guard that can never fire, a message nobody
//! receives) then burns an hour of cluster time before showing up as a
//! frozen campaign. This crate front-loads those discoveries: it lints
//! compiled [`Scenario`](failmpi_core::Scenario) automata and MPI
//! op-programs *before* anything runs, reporting findings as
//! [`Diagnostic`] values with stable codes.
//!
//! Three consumers share the passes:
//!
//! * the `failck` binary (`failck scenario.fail --format json`),
//! * the pre-run lint gate in `failmpi-experiments`' harness,
//! * the CI step that lints every built-in scenario and figure workload.
//!
//! See [`scenario`] for the FA-codes, [`ops`] for the FB-codes, and
//! [`src_lints`] for the SD/SU source-level determinism codes that
//! `failck --src` runs over the workspace's own Rust code.

#![forbid(unsafe_code)]

pub mod builtin;
pub mod diag;
pub mod model;
pub mod ops;
pub mod scenario;
pub mod src_lints;

pub use diag::{Diagnostic, Report, Severity, Span};
pub use failmpi_srclint::Config as SrcLintConfig;
pub use failmpi_backend::BackendKind;
pub use model::{
    model_check_scenario, model_check_source, model_check_with_programs, ModelCheckConfig,
    ModelCheckResult, ModelSummary, StaticVerdict, Witness,
};
pub use ops::analyze_programs;
pub use scenario::{analyze_scenario, check_source, compile_error_diag};
pub use src_lints::{check_src_paths, check_src_text};
