//! Thread-local allocation accounting.
//!
//! Two pieces with different compile-time footprints:
//!
//! * [`alloc_counters`] — always compiled, safe code. Reads this thread's
//!   monotonic `(allocations, bytes requested)` counters. With no counting
//!   allocator installed both stay `0`, so everything downstream (profiles,
//!   goldens, CI baselines) is well-defined in a default build.
//! * [`CountingAlloc`] — only under the `alloc-profile` feature. A
//!   `GlobalAlloc` wrapper around [`std::alloc::System`] that bumps the
//!   thread-local counters on every allocation. Binaries opt in with
//!   `#[global_allocator]`; library and test builds never pay for it.
//!
//! The counters are plain thread-local `Cell`s: the simulator runs one
//! experiment per thread, so per-thread counts are exactly per-run counts
//! and need no synchronization. Accesses go through `LocalKey::try_with`
//! because a global allocator can be called during TLS teardown, where
//! the key is gone — we drop the charge instead of aborting.
//!
//! Determinism contract: allocation *counts* for a fixed binary are
//! schedule-deterministic (same seed → same counts), but they shift with
//! toolchain and dependency versions, so CI gates them only via same-binary
//! double runs, never across builds (see `failmpi-prof diff --skip-alloc`).

use std::cell::Cell;

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
    static BYTES: Cell<u64> = const { Cell::new(0) };
}

/// This thread's monotonic allocation counters as
/// `(allocations, bytes requested)`. Both are `0` unless the binary
/// installed [`CountingAlloc`] (feature `alloc-profile`).
#[inline]
pub fn alloc_counters() -> (u64, u64) {
    (
        ALLOCS.try_with(Cell::get).unwrap_or(0),
        BYTES.try_with(Cell::get).unwrap_or(0),
    )
}

/// Test-only hook: charge the counters without a real allocator, so the
/// attribution plumbing (event guards, span deltas) is testable in safe,
/// default-feature builds.
#[cfg(test)]
pub(crate) fn charge_for_test(allocs: u64, bytes: u64) {
    let _ = ALLOCS.try_with(|c| c.set(c.get().wrapping_add(allocs)));
    let _ = BYTES.try_with(|c| c.set(c.get().wrapping_add(bytes)));
}

#[cfg(feature = "alloc-profile")]
mod counting {
    use std::alloc::{GlobalAlloc, Layout, System};

    /// A counting global allocator: forwards everything to
    /// [`System`] and bumps the thread-local counters read by
    /// [`super::alloc_counters`]. Install per binary:
    ///
    /// ```ignore
    /// #[global_allocator]
    /// static ALLOC: failmpi_obs::CountingAlloc = failmpi_obs::CountingAlloc;
    /// ```
    pub struct CountingAlloc;

    #[inline]
    fn charge(bytes: usize) {
        // `try_with`, not `with`: the allocator runs during TLS teardown
        // too, where touching a dead key would abort the process.
        let _ = super::ALLOCS.try_with(|c| c.set(c.get().wrapping_add(1)));
        let _ = super::BYTES.try_with(|c| c.set(c.get().wrapping_add(bytes as u64)));
    }

    // SAFETY: pure pass-through to `System`; the only extra work is
    // updating `Cell`s, which never allocates or unwinds, so every
    // `GlobalAlloc` contract obligation is discharged by `System`'s own
    // implementation.
    unsafe impl GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            charge(layout.size());
            // SAFETY: `layout` is the caller's, forwarded unmodified;
            // `System::alloc` upholds the same contract we were called
            // under.
            unsafe { System.alloc(layout) }
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            // SAFETY: `ptr` was returned by this allocator, which only
            // ever hands out `System` pointers, and `layout` is the one
            // it was allocated with (caller contract).
            unsafe { System.dealloc(ptr, layout) }
        }

        unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
            charge(layout.size());
            // SAFETY: as for `alloc` — the caller's `layout` is forwarded
            // unmodified to the system allocator.
            unsafe { System.alloc_zeroed(layout) }
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            charge(new_size);
            // SAFETY: `ptr`/`layout` satisfy the caller's realloc
            // contract and originate from `System` (see `dealloc`);
            // `new_size` is forwarded unchecked exactly as received.
            unsafe { System.realloc(ptr, layout, new_size) }
        }
    }
}

#[cfg(feature = "alloc-profile")]
pub use counting::CountingAlloc;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_start_at_zero_and_charge_monotonically() {
        let (a0, b0) = alloc_counters();
        charge_for_test(3, 100);
        let (a1, b1) = alloc_counters();
        assert_eq!(a1 - a0, 3);
        assert_eq!(b1 - b0, 100);
    }
}
