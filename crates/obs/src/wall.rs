//! Wall-clock profiling of the simulator itself.
//!
//! This is the non-deterministic half of the observability layer: handler
//! timings keyed by event kind, for finding where *simulator* time goes.
//! Results feed `bench-report` only and must never enter a deterministic
//! [`crate::MetricsSnapshot`].

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// Accumulated wall time for one event kind.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WallBin {
    /// Samples recorded.
    pub count: u64,
    /// Total wall nanoseconds across samples.
    pub nanos: u64,
}

/// Per-event-kind wall-clock profile, disabled by default.
///
/// Zero-cost-when-disabled: callers bracket the timed section with
/// [`WallProfile::maybe_start`] / [`WallProfile::record`], and a disabled
/// profile returns `None` from `maybe_start` without touching the clock,
/// so the hot path pays one branch.
#[derive(Clone, Debug, Default)]
pub struct WallProfile {
    enabled: bool,
    bins: BTreeMap<&'static str, WallBin>,
}

impl WallProfile {
    /// A disabled profile (the default).
    pub fn disabled() -> WallProfile {
        WallProfile::default()
    }

    /// Turns profiling on.
    pub fn enable(&mut self) {
        self.enabled = true;
    }

    /// Whether samples are being taken.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Starts a timed section, or `None` when disabled.
    #[inline]
    pub fn maybe_start(&self) -> Option<Instant> {
        if self.enabled {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Closes a timed section opened by [`WallProfile::maybe_start`],
    /// attributing the elapsed time to `kind`. A `None` start (profile
    /// disabled at the time) records nothing.
    #[inline]
    pub fn record(&mut self, kind: &'static str, start: Option<Instant>) {
        if let Some(start) = start {
            self.add(kind, start.elapsed());
        }
    }

    /// Adds one pre-measured sample to `kind`.
    pub fn add(&mut self, kind: &'static str, elapsed: Duration) {
        let bin = self.bins.entry(kind).or_default();
        bin.count += 1;
        bin.nanos += u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
    }

    /// The accumulated bins, keyed by event kind.
    pub fn bins(&self) -> impl Iterator<Item = (&'static str, WallBin)> + '_ {
        self.bins.iter().map(|(&k, &b)| (k, b))
    }

    /// Total wall nanoseconds across all bins.
    pub fn total_nanos(&self) -> u64 {
        self.bins.values().map(|b| b.nanos).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_profile_records_nothing() {
        let mut p = WallProfile::disabled();
        assert!(!p.is_enabled());
        let start = p.maybe_start();
        assert!(start.is_none());
        p.record("x", start);
        assert_eq!(p.bins().count(), 0);
        assert_eq!(p.total_nanos(), 0);
    }

    #[test]
    fn enabled_profile_accumulates_per_kind() {
        let mut p = WallProfile::disabled();
        p.enable();
        let start = p.maybe_start();
        assert!(start.is_some());
        p.record("a", start);
        p.add("a", Duration::from_nanos(10));
        p.add("b", Duration::from_nanos(5));
        let bins: BTreeMap<_, _> = p.bins().collect();
        assert_eq!(bins["a"].count, 2);
        assert_eq!(bins["b"].count, 1);
        assert!(p.total_nanos() >= 15);
    }
}
