//! Fixed-bucket power-of-two histograms over `u64` samples.

use serde::Serialize;

/// Number of buckets: one for zero plus one per possible leading-bit
/// position of a non-zero `u64`.
const BUCKETS: usize = 65;

/// A log₂-bucketed histogram of `u64` samples (virtual-time durations in
/// microseconds, queue depths, byte sizes…).
///
/// Bucket `0` holds exact zeros; bucket `i ≥ 1` holds samples `v` with
/// `2^(i-1) <= v < 2^i`. Recording is a handful of integer ops — no
/// allocation, no floating point — so it is safe on the simulator's hot
/// path, and the result depends only on the sample multiset, never on
/// wall-clock or thread scheduling.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: [u64; BUCKETS],
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub const fn new() -> Histogram {
        Histogram {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; BUCKETS],
        }
    }

    /// The bucket index of `value`.
    #[inline]
    fn bucket_of(value: u64) -> usize {
        (64 - value.leading_zeros()) as usize
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.buckets[Self::bucket_of(value)] += 1;
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample, `0` when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample, `0` when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample, `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum as f64 / self.count as f64)
        }
    }

    /// Folds another histogram in (sweep-level aggregation).
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
    }

    /// The serializable view: summary statistics plus the non-empty
    /// buckets as `(index, count)` pairs.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count,
            sum: self.sum,
            min: self.min(),
            max: self.max,
            buckets: self
                .buckets
                .iter()
                .enumerate()
                .filter(|(_, &c)| c > 0)
                .map(|(i, &c)| (i as u32, c))
                .collect(),
        }
    }
}

/// Serializable summary of a [`Histogram`]. `buckets` lists only the
/// non-empty log₂ buckets, in ascending index order, as `[index, count]`
/// pairs (bucket `0` = exact zeros, bucket `i` = `[2^(i-1), 2^i)`).
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize)]
pub struct HistogramSnapshot {
    /// Number of samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Smallest sample (`0` when empty).
    pub min: u64,
    /// Largest sample (`0` when empty).
    pub max: u64,
    /// Non-empty `(bucket index, sample count)` pairs, ascending.
    pub buckets: Vec<(u32, u64)>,
}

impl HistogramSnapshot {
    /// Upper bound of the bucket holding the `q`-quantile sample
    /// (`0.0 <= q <= 1.0`), or `0` when empty. Because buckets are log₂
    /// ranges this is a conservative bound, not an interpolation: bucket
    /// `i ≥ 1` reports `2^i - 1`, bucket `0` reports `0`, and bucket `64`
    /// saturates at `u64::MAX`. Deterministic (pure integer walk over the
    /// bucket list), so safe for CI gates.
    pub fn quantile_upper_bound(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for &(idx, c) in &self.buckets {
            seen += c;
            if seen >= rank {
                return match idx {
                    0 => 0,
                    64 => u64::MAX,
                    i => (1u64 << i) - 1,
                };
            }
        }
        self.max
    }

    /// Folds another snapshot in (sum counters, min/max envelope, merge
    /// bucket counts by index).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for &(idx, c) in &other.buckets {
            match self.buckets.binary_search_by_key(&idx, |&(i, _)| i) {
                Ok(pos) => self.buckets[pos].1 += c,
                Err(pos) => self.buckets.insert(pos, (idx, c)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges_are_powers_of_two() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);
    }

    #[test]
    fn summary_statistics() {
        let mut h = Histogram::new();
        assert_eq!(h.min(), 0);
        assert_eq!(h.mean(), None);
        for v in [3, 0, 9] {
            h.record(v);
        }
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 12);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 9);
        assert_eq!(h.mean(), Some(4.0));
    }

    #[test]
    fn merge_matches_combined_recording() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut all = Histogram::new();
        for v in [1u64, 5, 5, 700] {
            a.record(v);
            all.record(v);
        }
        for v in [0u64, 2, 900_000] {
            b.record(v);
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a, all);
        // Snapshot-level merge agrees with histogram-level merge.
        let mut snap = Histogram::new().snapshot();
        let mut c = Histogram::new();
        for v in [1u64, 5, 5, 700] {
            c.record(v);
        }
        snap.merge(&c.snapshot());
        snap.merge(&b.snapshot());
        assert_eq!(snap, all.snapshot());
    }

    #[test]
    fn quantile_upper_bound_walks_buckets() {
        let mut h = Histogram::new();
        for _ in 0..90 {
            h.record(1);
        }
        for _ in 0..10 {
            h.record(1000);
        }
        let s = h.snapshot();
        assert_eq!(s.quantile_upper_bound(0.5), 1);
        assert_eq!(s.quantile_upper_bound(0.99), 1023);
        assert_eq!(HistogramSnapshot::default().quantile_upper_bound(0.5), 0);
        let mut z = Histogram::new();
        z.record(0);
        assert_eq!(z.snapshot().quantile_upper_bound(0.5), 0);
    }

    #[test]
    fn snapshot_lists_only_nonempty_buckets() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(0);
        h.record(5);
        let s = h.snapshot();
        assert_eq!(s.buckets, vec![(0, 2), (3, 1)]);
    }
}
