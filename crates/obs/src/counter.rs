//! Monotonic event counters.

/// A monotonic `u64` counter.
///
/// Deliberately not atomic: every simulation is single-threaded, and the
/// harness parallelism lives *across* runs, each with its own registry.
/// An increment is one integer add — cheap enough to leave always on.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// A counter at zero.
    pub const fn new() -> Counter {
        Counter(0)
    }

    /// Adds one.
    #[inline]
    pub fn inc(&mut self) {
        self.0 += 1;
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current value.
    #[inline]
    pub fn get(self) -> u64 {
        self.0
    }

    /// Folds another counter in (sweep-level aggregation).
    pub fn merge(&mut self, other: Counter) {
        self.0 += other.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_monotonically() {
        let mut c = Counter::new();
        assert_eq!(c.get(), 0);
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        let mut d = Counter::new();
        d.add(8);
        c.merge(d);
        assert_eq!(c.get(), 50);
    }
}
