//! The schema-versioned, deterministic metrics snapshot.

use std::collections::BTreeMap;

use serde::Serialize;

use crate::histogram::{Histogram, HistogramSnapshot};

/// Version of the snapshot JSON schema. Bump when renaming or removing
/// keys; adding keys is backwards-compatible and needs no bump.
///
/// v2: snapshots carry the active protocol `backend` tag, and merging
/// snapshots from two different backends is rejected.
pub const SCHEMA_VERSION: u32 = 2;

/// One run's deterministic metrics: named counters and named virtual-time
/// histograms.
///
/// **Determinism contract:** everything in a snapshot must be a function
/// of the simulated schedule alone — event counts, virtual durations,
/// byte totals. Wall-clock rates, handler timings and RSS live in the
/// separate profiling path (see [`crate::WallProfile`]) precisely so that
/// two same-seed runs serialize to byte-identical JSON. `BTreeMap` keys
/// give a canonical ordering regardless of insertion order.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct MetricsSnapshot {
    /// The snapshot schema version ([`SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Protocol backend the run executed under (`""` when untagged).
    /// Guards sweep aggregation: snapshots from different backends
    /// measure different protocols and must not be silently merged.
    pub backend: String,
    /// Monotonic counters by dotted name (`layer.metric`).
    pub counters: BTreeMap<String, u64>,
    /// Histograms by dotted name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl Default for MetricsSnapshot {
    fn default() -> MetricsSnapshot {
        MetricsSnapshot::new()
    }
}

impl MetricsSnapshot {
    /// An empty snapshot at the current schema version.
    pub fn new() -> MetricsSnapshot {
        MetricsSnapshot {
            schema_version: SCHEMA_VERSION,
            backend: String::new(),
            counters: BTreeMap::new(),
            histograms: BTreeMap::new(),
        }
    }

    /// Tags the snapshot with the protocol backend it measures.
    pub fn set_backend(&mut self, backend: &str) {
        self.backend = backend.to_string();
    }

    /// Sets counter `name` to `value` (zeros are kept: a schema's key set
    /// should not depend on what happened in the run).
    pub fn set_counter(&mut self, name: &str, value: u64) {
        self.counters.insert(name.to_string(), value);
    }

    /// Adds `value` to counter `name`, creating it at zero if absent.
    pub fn add_counter(&mut self, name: &str, value: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += value;
    }

    /// The value of counter `name`, `0` when absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Stores the snapshot of histogram `name`.
    pub fn set_histogram(&mut self, name: &str, h: &Histogram) {
        self.histograms.insert(name.to_string(), h.snapshot());
    }

    /// The stored snapshot of histogram `name`, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// Folds another snapshot in: counters add, histograms merge. The
    /// operation is commutative and associative, so a sweep aggregate is
    /// independent of worker-thread completion order.
    ///
    /// # Panics
    ///
    /// Panics when the two snapshots carry different non-empty backend
    /// tags — aggregating across protocols is a measurement bug, never a
    /// thing to paper over. Use [`MetricsSnapshot::try_merge`] to handle
    /// the mismatch instead.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        self.try_merge(other).expect("mixed-backend metrics merge");
    }

    /// [`MetricsSnapshot::merge`] that reports a mixed-backend pair as
    /// `Err` instead of panicking; `self` is unchanged on error. An empty
    /// tag (untagged snapshot) merges with anything and adopts the other
    /// side's tag.
    pub fn try_merge(&mut self, other: &MetricsSnapshot) -> Result<(), String> {
        if !self.backend.is_empty()
            && !other.backend.is_empty()
            && self.backend != other.backend
        {
            return Err(format!(
                "refusing to merge metrics from backend `{}` into aggregate for `{}`",
                other.backend, self.backend
            ));
        }
        if self.backend.is_empty() {
            self.backend = other.backend.clone();
        }
        for (name, value) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += value;
        }
        for (name, h) in &other.histograms {
            self.histograms
                .entry(name.clone())
                .or_default()
                .merge(h);
        }
        Ok(())
    }

    /// Compact JSON encoding (canonical: `BTreeMap` ordering, no
    /// whitespace) — the byte string determinism tests compare.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("snapshot serializes")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insertion_order_does_not_change_json() {
        let mut a = MetricsSnapshot::new();
        a.set_counter("b.x", 1);
        a.set_counter("a.y", 2);
        let mut b = MetricsSnapshot::new();
        b.set_counter("a.y", 2);
        b.set_counter("b.x", 1);
        assert_eq!(a.to_json(), b.to_json());
        assert!(a.to_json().contains("\"schema_version\":2"));
        assert!(a.to_json().contains("\"backend\":\"\""));
    }

    #[test]
    fn backend_tags_gate_merging() {
        let mut vcl = MetricsSnapshot::new();
        vcl.set_backend("vcl");
        vcl.set_counter("n", 1);
        let mut ulfm = MetricsSnapshot::new();
        ulfm.set_backend("ulfm");
        ulfm.set_counter("n", 10);

        // Untagged absorbs a tag; same tag merges.
        let mut agg = MetricsSnapshot::new();
        agg.try_merge(&vcl).unwrap();
        assert_eq!(agg.backend, "vcl");
        agg.try_merge(&vcl).unwrap();
        assert_eq!(agg.counter("n"), 2);

        // Cross-backend is rejected and leaves the aggregate unchanged.
        let err = agg.try_merge(&ulfm).unwrap_err();
        assert!(err.contains("ulfm"), "{err}");
        assert_eq!(agg.counter("n"), 2);
    }

    #[test]
    fn merge_is_commutative() {
        let mut h1 = Histogram::new();
        h1.record(7);
        let mut h2 = Histogram::new();
        h2.record(900);
        let mut a = MetricsSnapshot::new();
        a.set_counter("n", 2);
        a.set_histogram("d", &h1);
        let mut b = MetricsSnapshot::new();
        b.set_counter("n", 3);
        b.set_counter("m", 1);
        b.set_histogram("d", &h2);

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.counter("n"), 5);
        assert_eq!(ab.counter("m"), 1);
        assert_eq!(ab.histogram("d").unwrap().count, 2);
    }

    #[test]
    fn counter_accessors() {
        let mut s = MetricsSnapshot::new();
        assert_eq!(s.counter("missing"), 0);
        s.set_counter("x", 0);
        s.add_counter("x", 4);
        assert_eq!(s.counter("x"), 4);
        assert!(s.to_json().contains("\"x\":4"));
    }
}
