//! The thread-local deterministic profiling context.
//!
//! One simulation run executes on one thread, so the whole context is
//! thread-local state with no locking: [`start_run`] installs a fresh
//! context, instrumented layers charge into it through free functions,
//! and [`finish_run`] drains it into a [`RunProfile`]. When no context is
//! active every entry point is a single thread-local flag check —
//! the same zero-cost-when-disabled discipline as
//! [`crate::WallProfile`] — so un-profiled runs (the default, including
//! every determinism test) pay one predictable branch per call site.
//!
//! Four tracks:
//!
//! * **Events** — [`event`] returns a guard scoped around one engine
//!   handler dispatch; on drop it attributes the allocation delta (from
//!   [`crate::alloc_counters`]) to the event kind and closes the root
//!   span frame.
//! * **Spans** — [`span`] pushes a named frame under the current one.
//!   Frames form a tree interned as `(parent node, name)` pairs, so the
//!   steady-state cost of entering a known path is a `BTreeMap` lookup
//!   with a `Copy` key — no allocation, which matters because span
//!   bookkeeping runs *inside* the allocation deltas it is attributing.
//!   Exclusive attribution: a frame's charge is its own delta minus its
//!   children's.
//! * **Copies** — [`copy`] bumps the per-hop payload-copy ledger.
//! * **Queue** — [`queue_push`]/[`queue_pop`] feed push/pop counts, the
//!   depth histogram, the same-instant burst-length histogram, and the
//!   depth-over-virtual-time series.
//!
//! Everything recorded is schedule-deterministic; allocation counts are
//! additionally zero unless the binary installed
//! [`CountingAlloc`](crate::alloc) (`alloc-profile` feature).

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;

use crate::alloc::alloc_counters;
use crate::histogram::Histogram;
use crate::profile::{AllocBin, CopyBin, RunProfile, SpanBin};

thread_local! {
    static ACTIVE: Cell<bool> = const { Cell::new(false) };
    static CTX: RefCell<Option<Ctx>> = const { RefCell::new(None) };
}

/// Sentinel parent index for root span nodes.
const NO_PARENT: usize = usize::MAX;

/// One interned node of the span tree.
struct Node {
    name: &'static str,
    parent: usize,
    bin: SpanBin,
}

/// One live frame of the span stack.
struct Frame {
    node: usize,
    allocs_at_push: u64,
    bytes_at_push: u64,
    child_allocs: u64,
    child_bytes: u64,
}

#[derive(Default)]
struct Ctx {
    backend: String,
    events: u64,
    alloc: BTreeMap<&'static str, AllocBin>,
    copies: BTreeMap<&'static str, CopyBin>,
    pushes: u64,
    pops: u64,
    burst: Histogram,
    depth: Histogram,
    depth_series: BTreeMap<u32, u64>,
    /// Virtual timestamp (µs) of the burst being accumulated, or
    /// `u64::MAX` when none is open.
    burst_at: u64,
    burst_len: u64,
    nodes: Vec<Node>,
    /// Interning table: `(parent node or NO_PARENT, name) -> node`.
    node_index: BTreeMap<(usize, &'static str), usize>,
    stack: Vec<Frame>,
}

impl Ctx {
    fn push_frame(&mut self, name: &'static str) {
        let parent = self.stack.last().map_or(NO_PARENT, |f| f.node);
        let node = match self.node_index.get(&(parent, name)) {
            Some(&idx) => idx,
            None => {
                let idx = self.nodes.len();
                self.nodes.push(Node { name, parent, bin: SpanBin::default() });
                self.node_index.insert((parent, name), idx);
                idx
            }
        };
        self.nodes[node].bin.count += 1;
        let (a, b) = alloc_counters();
        self.stack.push(Frame {
            node,
            allocs_at_push: a,
            bytes_at_push: b,
            child_allocs: 0,
            child_bytes: 0,
        });
    }

    fn pop_frame(&mut self) {
        let Some(f) = self.stack.pop() else { return };
        let (a, b) = alloc_counters();
        let incl_allocs = a.wrapping_sub(f.allocs_at_push);
        let incl_bytes = b.wrapping_sub(f.bytes_at_push);
        let bin = &mut self.nodes[f.node].bin;
        bin.allocs += incl_allocs.saturating_sub(f.child_allocs);
        bin.bytes += incl_bytes.saturating_sub(f.child_bytes);
        if let Some(parent) = self.stack.last_mut() {
            parent.child_allocs += incl_allocs;
            parent.child_bytes += incl_bytes;
        }
    }

    fn flush_burst(&mut self) {
        if self.burst_len > 0 {
            self.burst.record(self.burst_len);
            self.burst_len = 0;
        }
        self.burst_at = u64::MAX;
    }

    fn into_profile(mut self) -> RunProfile {
        self.flush_burst();
        let mut p = RunProfile::new();
        p.backend = self.backend;
        p.runs = 1;
        p.events = self.events;
        for (k, b) in self.alloc {
            p.alloc.insert(k.to_string(), b);
        }
        for (k, b) in self.copies {
            p.copies.insert(k.to_string(), b);
        }
        p.queue.pushes = self.pushes;
        p.queue.pops = self.pops;
        p.queue.burst = self.burst.snapshot();
        p.queue.depth = self.depth.snapshot();
        p.queue.depth_series = self.depth_series.into_iter().collect();
        // Reconstruct collapsed paths from the interned tree. Parents
        // always precede children in `nodes` (interned on first push), so
        // one forward pass resolves every path.
        let mut paths: Vec<String> = Vec::with_capacity(self.nodes.len());
        for node in &self.nodes {
            let path = if node.parent == NO_PARENT {
                node.name.to_string()
            } else {
                format!("{};{}", paths[node.parent], node.name)
            };
            paths.push(path);
        }
        for (node, path) in self.nodes.into_iter().zip(paths) {
            let e = p.spans.entry(path).or_default();
            e.count += node.bin.count;
            e.allocs += node.bin.allocs;
            e.bytes += node.bin.bytes;
        }
        p
    }
}

/// Whether a profiling context is active on this thread. Instrumented
/// call sites use this (or call the charge functions directly, which
/// check it themselves) — one thread-local read when profiling is off.
#[inline]
pub fn is_enabled() -> bool {
    ACTIVE.try_with(Cell::get).unwrap_or(false)
}

/// Installs a fresh profiling context on this thread, tagged with the
/// protocol backend name. Any previous context is discarded.
pub fn start_run(backend: &str) {
    CTX.with(|c| {
        *c.borrow_mut() = Some(Ctx {
            backend: backend.to_string(),
            burst_at: u64::MAX,
            ..Ctx::default()
        });
    });
    ACTIVE.with(|a| a.set(true));
}

/// Tears down this thread's profiling context and returns its profile,
/// or `None` if none was active.
pub fn finish_run() -> Option<RunProfile> {
    ACTIVE.with(|a| a.set(false));
    CTX.with(|c| c.borrow_mut().take()).map(Ctx::into_profile)
}

/// Guard for one engine event dispatch; created by [`event`]. On drop it
/// charges the allocation delta to the event kind and closes the root
/// span frame opened for the event.
pub struct EventGuard {
    kind: &'static str,
    allocs_at_start: u64,
    bytes_at_start: u64,
}

/// Opens an event scope for one handler dispatch of `kind`. Returns
/// `None` when profiling is off. The returned guard must be dropped
/// after the handler (and any scheduling it triggers) completes.
#[inline]
pub fn event(kind: &'static str) -> Option<EventGuard> {
    if !is_enabled() {
        return None;
    }
    let (a, b) = alloc_counters();
    with_ctx(|ctx| ctx.push_frame(kind));
    Some(EventGuard { kind, allocs_at_start: a, bytes_at_start: b })
}

impl Drop for EventGuard {
    fn drop(&mut self) {
        let (a, b) = alloc_counters();
        let allocs = a.wrapping_sub(self.allocs_at_start);
        let bytes = b.wrapping_sub(self.bytes_at_start);
        let kind = self.kind;
        with_ctx(|ctx| {
            ctx.events += 1;
            let bin = ctx.alloc.entry(kind).or_default();
            bin.events += 1;
            bin.allocs += allocs;
            bin.bytes += bytes;
            ctx.pop_frame();
        });
    }
}

/// Guard for one hierarchical span; created by [`span`]. Closes the
/// frame on drop.
pub struct SpanGuard {
    live: bool,
}

/// Opens a named span under the current frame. A no-op guard when
/// profiling is off.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    if !is_enabled() {
        return SpanGuard { live: false };
    }
    with_ctx(|ctx| ctx.push_frame(name));
    SpanGuard { live: true }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.live {
            with_ctx(|ctx| ctx.pop_frame());
        }
    }
}

/// Charges `bytes` payload bytes copied across layer boundary `hop`.
#[inline]
pub fn copy(hop: &'static str, bytes: u64) {
    if !is_enabled() {
        return;
    }
    with_ctx(|ctx| {
        let bin = ctx.copies.entry(hop).or_default();
        bin.count += 1;
        bin.bytes += bytes;
    });
}

/// Records one event-queue push; `depth` is the queue depth after the
/// push.
#[inline]
pub fn queue_push(depth: u64) {
    if !is_enabled() {
        return;
    }
    with_ctx(|ctx| {
        ctx.pushes += 1;
        ctx.depth.record(depth);
    });
}

/// Records one event-queue pop at virtual time `at_micros`; `depth` is
/// the queue depth after the pop. Consecutive pops sharing a timestamp
/// form one burst; a timestamp change closes the open burst into the
/// burst-length histogram.
#[inline]
pub fn queue_pop(at_micros: u64, depth: u64) {
    if !is_enabled() {
        return;
    }
    with_ctx(|ctx| {
        ctx.pops += 1;
        if at_micros == ctx.burst_at {
            ctx.burst_len += 1;
        } else {
            if ctx.burst_len > 0 {
                ctx.burst.record(ctx.burst_len);
            }
            ctx.burst_at = at_micros;
            ctx.burst_len = 1;
        }
        let bucket = 64 - at_micros.leading_zeros();
        let slot = ctx.depth_series.entry(bucket).or_insert(0);
        *slot = (*slot).max(depth);
    });
}

#[inline]
fn with_ctx(f: impl FnOnce(&mut Ctx)) {
    let _ = CTX.try_with(|c| {
        if let Some(ctx) = c.borrow_mut().as_mut() {
            f(ctx);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_context_is_inert() {
        assert!(!is_enabled());
        assert!(event("net.delivered").is_none());
        let _s = span("noop");
        copy("net.enqueue", 100);
        queue_push(1);
        queue_pop(5, 0);
        assert!(finish_run().is_none());
    }

    #[test]
    fn event_and_copy_and_queue_tracks_record() {
        start_run("vcl");
        assert!(is_enabled());
        {
            let _e = event("net.delivered").unwrap();
            copy("net.enqueue", 4096);
            copy("net.enqueue", 4096);
            queue_push(3);
        }
        {
            let _e = event("compute_done").unwrap();
        }
        // Three pops at t=10, one at t=11 → bursts of 3 and (after
        // flush) 1.
        queue_pop(10, 2);
        queue_pop(10, 1);
        queue_pop(10, 0);
        queue_pop(11, 0);
        let p = finish_run().unwrap();
        assert!(!is_enabled());
        assert_eq!(p.backend, "vcl");
        assert_eq!(p.runs, 1);
        assert_eq!(p.events, 2);
        assert_eq!(p.alloc["net.delivered"].events, 1);
        assert_eq!(p.alloc["compute_done"].events, 1);
        assert_eq!(p.copies["net.enqueue"].count, 2);
        assert_eq!(p.copies["net.enqueue"].bytes, 8192);
        assert_eq!(p.queue.pushes, 1);
        assert_eq!(p.queue.pops, 4);
        assert_eq!(p.queue.burst.count, 2);
        assert_eq!(p.queue.burst.max, 3);
        assert_eq!(p.queue.depth.count, 1);
        // t=10 and t=11 share log2 bucket 4; max depth after pop is 2.
        assert_eq!(p.queue.depth_series, vec![(4, 2)]);
    }

    #[test]
    fn spans_nest_and_collapse_with_exclusive_attribution() {
        start_run("vcl");
        {
            let _e = event("net.delivered").unwrap();
            crate::alloc::charge_for_test(2, 64);
            {
                let _s = span("dispatcher");
                crate::alloc::charge_for_test(5, 100);
                {
                    let _t = span("on_msg");
                    crate::alloc::charge_for_test(1, 8);
                }
            }
        }
        {
            let _e = event("net.delivered").unwrap();
            let _s = span("dispatcher");
        }
        let p = finish_run().unwrap();
        let spans = &p.spans;
        assert_eq!(spans["net.delivered"].count, 2);
        assert_eq!(spans["net.delivered;dispatcher"].count, 2);
        assert_eq!(spans["net.delivered;dispatcher;on_msg"].count, 1);
        // Exclusive charges: leaf keeps its own, parents subtract
        // children.
        assert_eq!(spans["net.delivered;dispatcher;on_msg"].allocs, 1);
        assert_eq!(spans["net.delivered;dispatcher"].allocs, 5);
        assert_eq!(spans["net.delivered"].allocs, 2);
        assert_eq!(p.alloc["net.delivered"].allocs, 8);
        assert_eq!(p.alloc["net.delivered"].bytes, 172);
        // Collapsed output carries the same tree.
        let collapsed = p.to_collapsed();
        assert!(collapsed.contains("net.delivered;dispatcher;on_msg 1\n"));
    }

    #[test]
    fn start_run_discards_previous_context() {
        start_run("vcl");
        copy("net.enqueue", 1);
        start_run("ulfm");
        let p = finish_run().unwrap();
        assert_eq!(p.backend, "ulfm");
        assert!(p.copies.is_empty());
    }
}
