//! Run-scoped observability for the FAIL-MPI reproduction.
//!
//! The paper's methodology is observational — runs are classified and the
//! dispatcher bug was isolated "by analysing the execution trace" — and
//! the simulator's own performance story needs numbers too. This crate is
//! the bottom layer both stand on: plain-data metric primitives with **no
//! dependency on the simulation stack**, so every other crate (sim, net,
//! mpi, mpichv, experiments, bench) can thread them through without
//! cycles.
//!
//! Two metric families with very different determinism contracts live
//! here, and keeping them apart is the core design rule:
//!
//! * **Deterministic metrics** — [`Counter`] and [`Histogram`] over
//!   *virtual*-time quantities. These depend only on the simulated
//!   schedule, so two same-seed runs must produce byte-identical
//!   [`MetricsSnapshot`] JSON. They are safe to put in run records,
//!   figure outputs and determinism tests.
//! * **Wall-clock profiling** — [`WallProfile`] and [`peak_rss_bytes`].
//!   These measure the *simulator*, vary run to run, and must never leak
//!   into a deterministic snapshot. They feed the `bench-report`
//!   pipeline only.
//!
//! Everything is zero-cost-when-disabled in the only place cost matters:
//! counters and histogram records are branch-free integer arithmetic on
//! the hot path, wall-clock timing is gated behind
//! [`WallProfile::is_enabled`] so a disabled profile never calls
//! `Instant::now`, and the deep-profiling context ([`prof`]) is one
//! thread-local flag check per instrumented call site when no run is
//! being profiled.
//!
//! The profiling subsystem ([`alloc`], [`prof`], [`RunProfile`]) sits on
//! the *deterministic* side of the fence despite measuring the simulator
//! itself: it records schedule-derived quantities (event kinds, payload
//! bytes, queue depths, span counts) plus allocation counts, which are
//! deterministic for a fixed binary. Wall time stays out of
//! [`RunProfile`] entirely.

// The counting global allocator (feature `alloc-profile`) is the one
// piece of unsafe code in this crate; without it the whole crate is
// forbid(unsafe_code) as before.
#![cfg_attr(not(feature = "alloc-profile"), forbid(unsafe_code))]
#![warn(missing_docs)]

pub mod alloc;
mod counter;
mod histogram;
pub mod prof;
mod profile;
mod rss;
mod snapshot;
mod wall;

pub use alloc::alloc_counters;
#[cfg(feature = "alloc-profile")]
pub use alloc::CountingAlloc;
pub use counter::Counter;
pub use histogram::{Histogram, HistogramSnapshot};
pub use profile::{
    AllocBin, CopyBin, QueueTelemetry, RunProfile, SpanBin, PROFILE_SCHEMA_VERSION,
};
pub use rss::peak_rss_bytes;
pub use snapshot::{MetricsSnapshot, SCHEMA_VERSION};
pub use wall::{WallBin, WallProfile};
