//! Run-scoped observability for the FAIL-MPI reproduction.
//!
//! The paper's methodology is observational — runs are classified and the
//! dispatcher bug was isolated "by analysing the execution trace" — and
//! the simulator's own performance story needs numbers too. This crate is
//! the bottom layer both stand on: plain-data metric primitives with **no
//! dependency on the simulation stack**, so every other crate (sim, net,
//! mpi, mpichv, experiments, bench) can thread them through without
//! cycles.
//!
//! Two metric families with very different determinism contracts live
//! here, and keeping them apart is the core design rule:
//!
//! * **Deterministic metrics** — [`Counter`] and [`Histogram`] over
//!   *virtual*-time quantities. These depend only on the simulated
//!   schedule, so two same-seed runs must produce byte-identical
//!   [`MetricsSnapshot`] JSON. They are safe to put in run records,
//!   figure outputs and determinism tests.
//! * **Wall-clock profiling** — [`WallProfile`] and [`peak_rss_bytes`].
//!   These measure the *simulator*, vary run to run, and must never leak
//!   into a deterministic snapshot. They feed the `bench-report`
//!   pipeline only.
//!
//! Everything is zero-cost-when-disabled in the only place cost matters:
//! counters and histogram records are branch-free integer arithmetic on
//! the hot path, and wall-clock timing is gated behind
//! [`WallProfile::is_enabled`] so a disabled profile never calls
//! `Instant::now`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod counter;
mod histogram;
mod rss;
mod snapshot;
mod wall;

pub use counter::Counter;
pub use histogram::{Histogram, HistogramSnapshot};
pub use rss::peak_rss_bytes;
pub use snapshot::{MetricsSnapshot, SCHEMA_VERSION};
pub use wall::{WallBin, WallProfile};
