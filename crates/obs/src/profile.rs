//! Schema-versioned deterministic run profiles.
//!
//! A [`RunProfile`] is the serializable output of the [`crate::prof`]
//! context: per-event-kind allocation attribution, the payload-copy
//! ledger, event-queue telemetry, and the hierarchical span tree in
//! collapsed-stack form. Everything in it is derived from the simulated
//! schedule plus (optionally) the counting allocator — **no wall-clock
//! fields**, same discipline as [`crate::MetricsSnapshot`] — so two
//! same-seed runs of the same binary produce byte-identical JSON.
//!
//! Profiles merge commutatively (sweep aggregation), serialize to
//! canonical JSON via `BTreeMap` ordering, and export the span tree as
//! collapsed-stack lines (`path;to;frame COUNT`) for standard flamegraph
//! tooling.

use std::collections::BTreeMap;

use serde::Serialize;

use crate::histogram::HistogramSnapshot;

/// Version stamp of the [`RunProfile`] JSON schema.
pub const PROFILE_SCHEMA_VERSION: u32 = 1;

/// Allocation attribution for one engine event kind.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize)]
pub struct AllocBin {
    /// Events of this kind dispatched.
    pub events: u64,
    /// Heap allocations performed while handling them (0 without the
    /// `alloc-profile` counting allocator).
    pub allocs: u64,
    /// Bytes requested by those allocations.
    pub bytes: u64,
}

/// Payload-copy ledger entry for one layer boundary ("hop").
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize)]
pub struct CopyBin {
    /// Payloads copied across this hop.
    pub count: u64,
    /// Payload bytes copied across this hop.
    pub bytes: u64,
}

/// One node of the span tree, keyed by its collapsed path
/// (`"net.delivered;dispatcher"`).
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize)]
pub struct SpanBin {
    /// Times this exact path was entered.
    pub count: u64,
    /// Exclusive allocations (children's charges subtracted).
    pub allocs: u64,
    /// Exclusive bytes requested.
    pub bytes: u64,
}

/// [`crate::prof`]'s view of the engine's event queue.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize)]
pub struct QueueTelemetry {
    /// Events pushed.
    pub pushes: u64,
    /// Events popped.
    pub pops: u64,
    /// Histogram of same-instant burst lengths (consecutive pops sharing
    /// one virtual timestamp) — the number that decides heap vs calendar
    /// queue.
    pub burst: HistogramSnapshot,
    /// Histogram of queue depth sampled after every push.
    pub depth: HistogramSnapshot,
    /// Depth-over-virtual-time series: `(log2 bucket of pop time in µs,
    /// max depth observed in that bucket)`, ascending.
    pub depth_series: Vec<(u32, u64)>,
}

impl QueueTelemetry {
    /// Folds another queue view in (histograms merge, series takes the
    /// per-bucket max).
    pub fn merge(&mut self, other: &QueueTelemetry) {
        self.pushes += other.pushes;
        self.pops += other.pops;
        self.burst.merge(&other.burst);
        self.depth.merge(&other.depth);
        for &(idx, d) in &other.depth_series {
            match self.depth_series.binary_search_by_key(&idx, |&(i, _)| i) {
                Ok(pos) => self.depth_series[pos].1 = self.depth_series[pos].1.max(d),
                Err(pos) => self.depth_series.insert(pos, (idx, d)),
            }
        }
    }
}

/// Deterministic profile of one run (or a merged sweep of runs).
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize)]
pub struct RunProfile {
    /// [`PROFILE_SCHEMA_VERSION`].
    pub schema_version: u32,
    /// Protocol backend the run(s) executed under; `"mixed"` after a
    /// cross-backend merge.
    pub backend: String,
    /// Runs merged into this profile.
    pub runs: u64,
    /// Engine events dispatched.
    pub events: u64,
    /// Per-event-kind allocation attribution.
    pub alloc: BTreeMap<String, AllocBin>,
    /// Payload-copy ledger per layer boundary.
    pub copies: BTreeMap<String, CopyBin>,
    /// Event-queue telemetry.
    pub queue: QueueTelemetry,
    /// Span tree keyed by collapsed path.
    pub spans: BTreeMap<String, SpanBin>,
}

impl RunProfile {
    /// An empty profile (schema stamped, everything else zero).
    pub fn new() -> RunProfile {
        RunProfile {
            schema_version: PROFILE_SCHEMA_VERSION,
            ..RunProfile::default()
        }
    }

    /// Total allocations across all event kinds.
    pub fn total_allocs(&self) -> u64 {
        self.alloc.values().map(|b| b.allocs).sum()
    }

    /// Total allocated bytes across all event kinds.
    pub fn total_alloc_bytes(&self) -> u64 {
        self.alloc.values().map(|b| b.bytes).sum()
    }

    /// Total payload bytes copied across all hops.
    pub fn total_copied_bytes(&self) -> u64 {
        self.copies.values().map(|b| b.bytes).sum()
    }

    /// Folds another profile in. Commutative, so sweep aggregation does
    /// not depend on completion order. Backends must agree: merging two
    /// different non-empty backend tags yields `"mixed"`, which callers
    /// that forbid cross-backend aggregation can reject.
    pub fn merge(&mut self, other: &RunProfile) {
        if self.backend.is_empty() {
            self.backend = other.backend.clone();
        } else if !other.backend.is_empty() && other.backend != self.backend {
            self.backend = "mixed".to_string();
        }
        self.runs += other.runs;
        self.events += other.events;
        for (k, b) in &other.alloc {
            let e = self.alloc.entry(k.clone()).or_default();
            e.events += b.events;
            e.allocs += b.allocs;
            e.bytes += b.bytes;
        }
        for (k, b) in &other.copies {
            let e = self.copies.entry(k.clone()).or_default();
            e.count += b.count;
            e.bytes += b.bytes;
        }
        self.queue.merge(&other.queue);
        for (k, b) in &other.spans {
            let e = self.spans.entry(k.clone()).or_default();
            e.count += b.count;
            e.allocs += b.allocs;
            e.bytes += b.bytes;
        }
    }

    /// Canonical compact JSON (`BTreeMap` ordering, no wall-clock
    /// fields → byte-identical across same-seed runs of one binary).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("RunProfile is serializable")
    }

    /// Pretty-printed JSON with a trailing newline, for `--profile PATH`
    /// files.
    pub fn to_pretty_json(&self) -> String {
        let mut s = serde_json::to_string_pretty(self).expect("RunProfile is serializable");
        s.push('\n');
        s
    }

    /// The span tree as collapsed-stack lines (`a;b;c COUNT`, one per
    /// path, sorted) — the input format of standard flamegraph tools.
    /// Weights are span entry counts, so the output is deterministic even
    /// without the counting allocator.
    pub fn to_collapsed(&self) -> String {
        let mut out = String::new();
        for (path, bin) in &self.spans {
            out.push_str(path);
            out.push(' ');
            out.push_str(&bin.count.to_string());
            out.push('\n');
        }
        out
    }

    /// Parses a profile back from its JSON form (compact or pretty).
    /// Unknown fields are ignored; missing required fields are errors.
    pub fn from_json(s: &str) -> Result<RunProfile, String> {
        let v = serde_json::from_str(s).map_err(|e| format!("invalid JSON: {e}"))?;
        let obj = v.as_object().ok_or("profile is not a JSON object")?;
        let get_u64 = |value: &serde_json::Value, name: &str| -> Result<u64, String> {
            value
                .get(name)
                .and_then(|x| x.as_u64())
                .ok_or_else(|| format!("missing or non-integer field `{name}`"))
        };
        let mut p = RunProfile::new();
        p.schema_version = get_u64(&v, "schema_version")? as u32;
        if p.schema_version != PROFILE_SCHEMA_VERSION {
            return Err(format!(
                "unsupported profile schema {} (expected {PROFILE_SCHEMA_VERSION})",
                p.schema_version
            ));
        }
        p.backend = obj
            .get("backend")
            .and_then(|x| x.as_str())
            .ok_or("missing field `backend`")?
            .to_string();
        p.runs = get_u64(&v, "runs")?;
        p.events = get_u64(&v, "events")?;
        let map_of = |name: &str| -> Result<BTreeMap<String, serde_json::Value>, String> {
            v.get(name)
                .and_then(|x| x.as_object().cloned())
                .ok_or_else(|| format!("missing object field `{name}`"))
        };
        for (k, b) in map_of("alloc")? {
            p.alloc.insert(
                k,
                AllocBin {
                    events: get_u64(&b, "events")?,
                    allocs: get_u64(&b, "allocs")?,
                    bytes: get_u64(&b, "bytes")?,
                },
            );
        }
        for (k, b) in map_of("copies")? {
            p.copies.insert(
                k,
                CopyBin {
                    count: get_u64(&b, "count")?,
                    bytes: get_u64(&b, "bytes")?,
                },
            );
        }
        let q = v.get("queue").ok_or("missing object field `queue`")?;
        p.queue.pushes = get_u64(q, "pushes")?;
        p.queue.pops = get_u64(q, "pops")?;
        p.queue.burst = parse_histogram(q.get("burst").ok_or("missing `queue.burst`")?)?;
        p.queue.depth = parse_histogram(q.get("depth").ok_or("missing `queue.depth`")?)?;
        p.queue.depth_series =
            parse_pairs(q.get("depth_series").ok_or("missing `queue.depth_series`")?)?;
        for (k, b) in map_of("spans")? {
            p.spans.insert(
                k,
                SpanBin {
                    count: get_u64(&b, "count")?,
                    allocs: get_u64(&b, "allocs")?,
                    bytes: get_u64(&b, "bytes")?,
                },
            );
        }
        Ok(p)
    }
}

fn parse_histogram(v: &serde_json::Value) -> Result<HistogramSnapshot, String> {
    let get = |name: &str| -> Result<u64, String> {
        v.get(name)
            .and_then(|x| x.as_u64())
            .ok_or_else(|| format!("missing histogram field `{name}`"))
    };
    Ok(HistogramSnapshot {
        count: get("count")?,
        sum: get("sum")?,
        min: get("min")?,
        max: get("max")?,
        buckets: parse_pairs(v.get("buckets").ok_or("missing histogram field `buckets`")?)?,
    })
}

fn parse_pairs(v: &serde_json::Value) -> Result<Vec<(u32, u64)>, String> {
    let arr = v.as_array().ok_or("expected an array of pairs")?;
    let mut out = Vec::with_capacity(arr.len());
    for item in arr {
        let pair = item.as_array().filter(|a| a.len() == 2).ok_or("expected [index, value] pairs")?;
        let idx = pair[0].as_u64().ok_or("pair index must be an integer")? as u32;
        let val = pair[1].as_u64().ok_or("pair value must be an integer")?;
        out.push((idx, val));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::histogram::Histogram;

    fn sample() -> RunProfile {
        let mut p = RunProfile::new();
        p.backend = "vcl".to_string();
        p.runs = 1;
        p.events = 10;
        p.alloc.insert(
            "net.delivered".to_string(),
            AllocBin { events: 7, allocs: 3, bytes: 96 },
        );
        p.copies.insert("net.enqueue".to_string(), CopyBin { count: 5, bytes: 4000 });
        p.queue.pushes = 11;
        p.queue.pops = 10;
        let mut h = Histogram::new();
        h.record(1);
        h.record(3);
        p.queue.burst = h.snapshot();
        p.queue.depth = h.snapshot();
        p.queue.depth_series = vec![(4, 7), (9, 3)];
        p.spans.insert("net.delivered;dispatcher".to_string(), SpanBin {
            count: 4,
            allocs: 1,
            bytes: 32,
        });
        p
    }

    #[test]
    fn json_roundtrip_is_lossless() {
        let p = sample();
        assert_eq!(RunProfile::from_json(&p.to_json()).unwrap(), p);
        assert_eq!(RunProfile::from_json(&p.to_pretty_json()).unwrap(), p);
    }

    #[test]
    fn from_json_rejects_wrong_schema() {
        let bad = sample().to_json().replace("\"schema_version\":1", "\"schema_version\":99");
        assert!(RunProfile::from_json(&bad).unwrap_err().contains("schema"));
        assert!(RunProfile::from_json("not json").is_err());
        assert!(RunProfile::from_json("{}").is_err());
    }

    #[test]
    fn merge_is_commutative() {
        let a = sample();
        let mut b = sample();
        b.backend = "vcl".to_string();
        b.copies.insert("mpi.recv".to_string(), CopyBin { count: 1, bytes: 8 });
        b.queue.depth_series = vec![(4, 2), (12, 9)];
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.runs, 2);
        assert_eq!(ab.queue.depth_series, vec![(4, 7), (9, 3), (12, 9)]);
        assert_eq!(ab.backend, "vcl");
    }

    #[test]
    fn cross_backend_merge_is_tagged_mixed() {
        let mut a = sample();
        let mut b = sample();
        b.backend = "ulfm".to_string();
        a.merge(&b);
        assert_eq!(a.backend, "mixed");
        // Empty absorbs any tag without going mixed.
        let mut empty = RunProfile::new();
        empty.merge(&sample());
        assert_eq!(empty.backend, "vcl");
    }

    #[test]
    fn collapsed_output_lists_paths_with_counts() {
        let mut p = sample();
        p.spans.insert("net.delivered".to_string(), SpanBin { count: 9, allocs: 0, bytes: 0 });
        assert_eq!(
            p.to_collapsed(),
            "net.delivered 9\nnet.delivered;dispatcher 4\n"
        );
    }

    #[test]
    fn totals_sum_over_bins() {
        let p = sample();
        assert_eq!(p.total_allocs(), 3);
        assert_eq!(p.total_alloc_bytes(), 96);
        assert_eq!(p.total_copied_bytes(), 4000);
    }
}
