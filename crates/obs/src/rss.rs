//! Process peak-RSS lookup for bench reports.

/// Peak resident-set size of the current process in bytes, read from
/// `/proc/self/status` (`VmHWM`). Returns `None` on platforms without
/// procfs — callers must treat the value as best-effort diagnostics, not
/// data (it is wall-side information and never enters a deterministic
/// snapshot).
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
            return Some(kb * 1024);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    #[test]
    #[cfg(target_os = "linux")]
    fn linux_reports_a_positive_peak() {
        let rss = super::peak_rss_bytes().expect("procfs available on linux");
        assert!(rss > 0);
    }
}
