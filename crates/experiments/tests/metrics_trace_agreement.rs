//! Property test: the metrics registry agrees with the trace.
//!
//! `VclMetrics` observes every event *before* the `TraceLog` stores it
//! (see `Ctx::trace` in `failmpi-mpichv`), so for any run the counters
//! must equal the counts recomputed from that run's trace entries — and
//! a run with tracing disabled (`record_trace = false`) must still
//! produce the exact same snapshot, since metrics never read the log.

use proptest::prelude::*;

use failmpi_experiments::robustness::scenario_suite;
use failmpi_experiments::{run_one, run_one_keeping_cluster};
use failmpi_mpichv::VclEvent;
use failmpi_sim::TraceEntry;

/// Recomputes every trace-derivable `mpichv.*` counter from the entries.
fn recount(entries: &[TraceEntry<VclEvent>]) -> Vec<(&'static str, u64)> {
    let mut spawned = 0u64;
    let mut registered = 0u64;
    let mut runs = 0u64;
    let mut resumed = 0u64;
    let mut progress = 0u64;
    let mut max_progress = 0u64;
    let mut waves_started = 0u64;
    let mut local_ckpts = 0u64;
    let mut waves_committed = 0u64;
    let mut detected = 0u64;
    let mut during_recovery = 0u64;
    let mut recoveries = 0u64;
    let mut max_epoch = 0u64;
    let mut retries = 0u64;
    let mut finalized = 0u64;
    let mut completed = 0u64;
    for e in entries {
        match &e.kind {
            VclEvent::DaemonSpawned { .. } => spawned += 1,
            VclEvent::DaemonRegistered { .. } => registered += 1,
            VclEvent::RunStarted { .. } => runs += 1,
            VclEvent::RankResumed { .. } => resumed += 1,
            VclEvent::AppProgress { iter, .. } => {
                progress += 1;
                max_progress = max_progress.max(u64::from(*iter));
            }
            VclEvent::WaveStarted { .. } => waves_started += 1,
            VclEvent::LocalCheckpointDone { .. } => local_ckpts += 1,
            VclEvent::WaveCommitted { .. } => waves_committed += 1,
            VclEvent::FailureDetected {
                during_recovery: dr,
                ..
            } => {
                detected += 1;
                if *dr {
                    during_recovery += 1;
                }
            }
            VclEvent::RecoveryStarted { epoch } => {
                recoveries += 1;
                max_epoch = max_epoch.max(u64::from(*epoch));
            }
            VclEvent::LaunchRetried { .. } => retries += 1,
            VclEvent::RankFinalized { .. } => finalized += 1,
            VclEvent::JobComplete => completed += 1,
        }
    }
    vec![
        ("mpichv.daemons_spawned", spawned),
        ("mpichv.daemons_registered", registered),
        ("mpichv.runs_started", runs),
        ("mpichv.ranks_resumed", resumed),
        ("mpichv.app_progress_events", progress),
        ("mpichv.max_progress", max_progress),
        ("mpichv.waves_started", waves_started),
        ("mpichv.local_checkpoints", local_ckpts),
        ("mpichv.waves_committed", waves_committed),
        ("mpichv.failures_detected", detected),
        ("mpichv.failures_during_recovery", during_recovery),
        ("mpichv.recoveries_started", recoveries),
        ("mpichv.max_epoch", max_epoch),
        ("mpichv.launch_retries", retries),
        ("mpichv.ranks_finalized", finalized),
        ("mpichv.jobs_completed", completed),
    ]
}

proptest! {
    #![proptest_config(proptest::test_runner::Config::with_cases(8))]

    /// For a random builtin scenario at a random seed, every
    /// trace-derivable counter equals the trace recount, and disabling
    /// the trace changes nothing about the snapshot.
    #[test]
    fn counters_agree_with_trace_recount(case in 0usize..10, seed in 0u64..10_000) {
        let suite = scenario_suite(seed);
        let (name, spec) = &suite[case % suite.len()];
        prop_assert!(spec.cluster.record_trace, "{}: suite must trace by default", name);

        let (record, cluster) = run_one_keeping_cluster(spec);
        prop_assert!(cluster.trace().is_enabled());
        for (key, expected) in recount(cluster.trace().entries()) {
            prop_assert_eq!(
                record.metrics.counter(key), expected,
                "{}: {} disagrees with the trace recount", name, key
            );
        }

        // Histogram sample counts are trace-derivable too: one commit
        // duration per started-then-committed wave (pairing on wave id).
        let commits = record.metrics.histogram("mpichv.wave_commit_micros");
        prop_assert!(
            commits.map(|h| h.count).unwrap_or(0)
                <= record.metrics.counter("mpichv.waves_committed"),
            "{}: more wave durations than wave commits", name
        );

        // Tracing off: the snapshot must be byte-identical — the
        // registry observes the event stream, not the stored log.
        let mut untraced = spec.clone();
        untraced.cluster.record_trace = false;
        let blind = run_one(&untraced);
        prop_assert_eq!(
            blind.metrics.to_json(), record.metrics.to_json(),
            "{}: disabling the trace changed the metrics", name
        );
    }
}
