//! Backend conformance: every protocol backend behind [`run_one`] must
//! honor the harness' cross-cutting contracts — determinism, metrics
//! integrity, the lint gate, and classified outcomes — not just produce
//! *a* run. The `for_each_backend!` macro stamps each contract out as one
//! `#[test]` per backend, so a regression names the offending protocol
//! directly (`determinism_double_run::ulfm`, …).

use failmpi_backend::BackendKind;
use failmpi_experiments::robustness::outcome_class;
use failmpi_experiments::{
    run_one, run_one_with_trace, smoke_spec_for, try_run_one, ExperimentSpec,
};
use failmpi_mpichv::{DispatcherMode, VclEvent};

/// Expands each `fn body(backend: BackendKind)` into a module with one
/// `#[test]` per protocol backend.
macro_rules! for_each_backend {
    ($(fn $name:ident($backend:ident: BackendKind) $body:block)*) => {
        $(mod $name {
            use super::*;

            fn body($backend: BackendKind) $body

            #[test]
            fn vcl() {
                body(BackendKind::Vcl);
            }

            #[test]
            fn ulfm() {
                body(BackendKind::Ulfm);
            }

            #[test]
            fn replica() {
                body(BackendKind::Replica);
            }
        })*
    };
}

/// The conformance campaign: the Fig. 10 state-synchronized scenario at
/// the crosscheck's smoke scale. It exercises every contract at once —
/// faults land, recoveries start, and the backends *classify it
/// differently* (Vcl freezes, ULFM completes), which is exactly why the
/// contracts below must hold uniformly anyway.
fn campaign(backend: BackendKind, seed: u64) -> ExperimentSpec {
    let src = include_str!("../../core/scenarios/fig10_state_sync.fail");
    smoke_spec_for(src, "ADVG1", &[("T", 2), ("N", 5)], seed, DispatcherMode::Historical)
        .with_backend(backend)
}

/// A scenario with guaranteed `Error`-level lint findings: `ping` goes to
/// a class that never receives it (FA008) and `?ack` can never be
/// satisfied (FA009).
const BROKEN_SRC: &str = "daemon ADV1 {\n  node 1:\n    onload -> !ping(G1[0]), goto 2;\n  node 2:\n    ?ack -> goto 1;\n}\ndaemon ADVnodes {\n  node 1:\n    onload -> continue, goto 1;\n}\ninstance P1 = ADV1;\ngroup G1[4] = ADVnodes;\n";

for_each_backend! {
    fn determinism_double_run(backend: BackendKind) {
        // Same spec, two fresh processes' worth of state: the schedule
        // fingerprint, event count, classified outcome, and the entire
        // metrics snapshot must reproduce byte-for-byte.
        for seed in [1u64, 2] {
            let spec = campaign(backend, seed);
            let a = run_one(&spec);
            let b = run_one(&spec);
            assert_eq!(a.fingerprint, b.fingerprint, "{backend}/seed{seed}");
            assert_ne!(a.fingerprint, 0, "{backend}/seed{seed}: degenerate fingerprint");
            assert_eq!(a.events, b.events, "{backend}/seed{seed}");
            assert_eq!(
                outcome_class(&a.outcome),
                outcome_class(&b.outcome),
                "{backend}/seed{seed}"
            );
            assert_eq!(
                a.metrics.to_json(),
                b.metrics.to_json(),
                "{backend}/seed{seed}: metrics snapshot not reproducible"
            );
        }
    }

    fn fingerprint_ignores_trace_recording(backend: BackendKind) {
        // The fingerprint folds the *engine's* event stream and the
        // metrics observe events before the log stores them, so turning
        // the lifecycle trace off must change neither.
        let spec = campaign(backend, 1);
        let mut untraced = spec.clone();
        untraced.cluster.record_trace = false;
        let traced = run_one(&spec);
        let blind = run_one(&untraced);
        assert_eq!(traced.fingerprint, blind.fingerprint, "{backend}");
        assert_eq!(
            traced.metrics.to_json(),
            blind.metrics.to_json(),
            "{backend}: disabling the trace changed the metrics"
        );
    }

    fn lint_gate_refuses_broken_scenarios(backend: BackendKind) {
        // The strict pre-run gate is protocol-independent: no backend may
        // run a scenario with Error-level findings.
        let mut spec = campaign(backend, 1);
        spec.injection = Some(
            failmpi_experiments::InjectionSpec::new(BROKEN_SRC, "ADV1", "ADVnodes"),
        );
        let report = try_run_one(&spec).expect_err("strict gate must refuse");
        assert!(report.has_errors(), "{backend}: gate passed a broken scenario");
        let codes: Vec<_> = report.diagnostics.iter().map(|d| d.code).collect();
        assert!(codes.contains(&"FA008"), "{backend}: got {codes:?}");
    }

    fn metrics_agree_with_trace_recount(backend: BackendKind) {
        // Every backend narrates its lifecycle in the shared `VclEvent`
        // vocabulary (the classifier's input). The counters it contributes
        // must equal the counts recomputed from that trace — the
        // cross-layer consistency the Vcl-only property test checks in
        // depth, here held to uniformly.
        let (faults_key, progress_key) = match backend {
            BackendKind::Vcl => ("mpichv.failures_detected", "mpichv.max_progress"),
            BackendKind::Ulfm => ("ulfm.faults_detected", "ulfm.max_progress"),
            BackendKind::Replica => ("replica.faults_detected", "replica.max_progress"),
        };
        for seed in [1u64, 2, 3] {
            let spec = campaign(backend, seed);
            let (record, entries) = run_one_with_trace(&spec);
            let mut detected = 0u64;
            let mut recoveries = 0u64;
            let mut committed = 0u64;
            let mut max_progress = 0u64;
            for e in &entries {
                match &e.kind {
                    VclEvent::FailureDetected { .. } => detected += 1,
                    VclEvent::RecoveryStarted { .. } => recoveries += 1,
                    VclEvent::WaveCommitted { .. } => committed += 1,
                    VclEvent::AppProgress { iter, .. } => {
                        max_progress = max_progress.max(u64::from(*iter));
                    }
                    _ => {}
                }
            }
            let tag = format!("{backend}/seed{seed}");
            assert_eq!(record.metrics.counter(faults_key), detected, "{tag}");
            assert_eq!(record.recoveries as u64, recoveries, "{tag}");
            assert_eq!(record.waves_committed as u64, committed, "{tag}");
            assert_eq!(record.metrics.counter(progress_key), max_progress, "{tag}");
            assert_eq!(u64::from(record.max_progress), max_progress, "{tag}");
            assert_eq!(
                record.metrics.counter("harness.faults_injected"),
                u64::from(record.faults_injected),
                "{tag}"
            );
            assert_eq!(
                record.metrics.counter("sim.events_handled"),
                record.events,
                "{tag}"
            );
        }
    }

    fn every_builtin_reaches_a_classified_outcome(backend: BackendKind) {
        // The acceptance floor: each backend runs every runnable builtin
        // to a classification — no panics, no unclassifiable outcomes.
        for (name, src, machine, params) in failmpi_experiments::runnable_builtins() {
            let spec =
                smoke_spec_for(src, machine, params, 1, DispatcherMode::Historical)
                    .with_backend(backend);
            let record = run_one(&spec);
            let class = outcome_class(&record.outcome);
            assert!(
                ["completed", "buggy", "non-terminating"].contains(&class),
                "{backend}/{name}: unclassified outcome {:?}",
                record.outcome
            );
        }
    }
}
