//! The cross-backend differential verdict matrix: every runnable builtin
//! × every protocol backend × 8 sweep seeds, static and dynamic sides at
//! the same smoke deployment scale (4 ranks on 6 machines). The pinned
//! texture is the PR's acceptance artifact — backends must *differ* on
//! specific scenarios for protocol-explainable reasons (see
//! `docs/DESIGN.md`, "Protocol backends"):
//!
//! * **Fig. 10 is a Vcl bug, not an MPI fact**: the state-synchronized
//!   double fault freezes every Vcl seed (stale dispatcher entry) and no
//!   ULFM seed (shrink-and-continue has no relaunch window to corrupt).
//! * **ULFM's only freeze mode is job exhaustion**: random-kill scenarios
//!   (Fig. 5/7) are statically freezing — enough faults can eat every
//!   rank — but the schedule is rare enough that no smoke seed realizes
//!   it. That over-approximation is pinned as the two `!agrees` rows,
//!   the static-freeze analogue of the fuzzer's FZ007.
//! * **Replication converts coverage into the verdict**: with 2 spares
//!   for 4 ranks, any fault on an unprotected primary (or a primary +
//!   its shadow) is an immediate permanent loss, so every fault-landing
//!   scenario freezes statically and flickers seed-by-seed dynamically.
//! * **delay_injection survives everywhere**: its probe waits on a Vcl
//!   checkpoint wave that the other backends never emit, so no backend
//!   even reaches a fault.

use std::sync::OnceLock;

use failmpi_analyze::StaticVerdict;
use failmpi_experiments::{
    backend_figure_matrix, backend_matrix, render_backend_matrix, BackendKind, BackendMatrixRow,
};

const SEEDS: &[u64] = &[1, 2, 3, 4, 5, 6, 7, 8];

/// The 15-row sweep is expensive; compute it once per process.
fn rows() -> &'static [BackendMatrixRow] {
    static ROWS: OnceLock<Vec<BackendMatrixRow>> = OnceLock::new();
    ROWS.get_or_init(|| backend_matrix(SEEDS))
}

fn row(name: &str, backend: BackendKind) -> &'static BackendMatrixRow {
    rows()
        .iter()
        .find(|r| r.name == name && r.backend == backend)
        .unwrap_or_else(|| panic!("missing row {name}/{backend}"))
}

fn buggy_seeds(r: &BackendMatrixRow) -> Vec<u64> {
    r.dynamic.iter().filter(|(_, c)| *c == "buggy").map(|(s, _)| *s).collect()
}

#[test]
fn matrix_shape_and_static_verdicts_are_pinned() {
    assert_eq!(rows().len(), 15, "5 scenarios x 3 backends");
    let expect = [
        ("fig5_frequency", BackendKind::Vcl, StaticVerdict::Survives),
        ("fig5_frequency", BackendKind::Ulfm, StaticVerdict::Freezes),
        ("fig5_frequency", BackendKind::Replica, StaticVerdict::Freezes),
        ("fig7_simultaneous", BackendKind::Vcl, StaticVerdict::Survives),
        ("fig7_simultaneous", BackendKind::Ulfm, StaticVerdict::Freezes),
        ("fig7_simultaneous", BackendKind::Replica, StaticVerdict::Freezes),
        ("fig8_synchronized", BackendKind::Vcl, StaticVerdict::Freezes),
        ("fig8_synchronized", BackendKind::Ulfm, StaticVerdict::Survives),
        ("fig8_synchronized", BackendKind::Replica, StaticVerdict::Freezes),
        ("fig10_state_sync", BackendKind::Vcl, StaticVerdict::Freezes),
        ("fig10_state_sync", BackendKind::Ulfm, StaticVerdict::Survives),
        ("fig10_state_sync", BackendKind::Replica, StaticVerdict::Freezes),
        ("delay_injection", BackendKind::Vcl, StaticVerdict::Survives),
        ("delay_injection", BackendKind::Ulfm, StaticVerdict::Survives),
        ("delay_injection", BackendKind::Replica, StaticVerdict::Survives),
    ];
    for (name, backend, verdict) in expect {
        assert_eq!(
            row(name, backend).static_verdict,
            verdict,
            "{name}/{backend}:\n{}",
            render_backend_matrix(rows())
        );
    }
}

#[test]
fn fig10_divergence_is_the_dispatcher_bug_not_an_mpi_fact() {
    // The PR's headline differential: the exact same injection campaign
    // freezes every Vcl seed and no ULFM seed.
    let vcl = row("fig10_state_sync", BackendKind::Vcl);
    assert!(vcl.dynamic.iter().all(|(_, c)| *c == "buggy"), "{vcl:?}");
    let ulfm = row("fig10_state_sync", BackendKind::Ulfm);
    assert!(ulfm.dynamic.iter().all(|(_, c)| *c == "completed"), "{ulfm:?}");
    assert!(vcl.agrees && ulfm.agrees);
}

#[test]
fn replication_masks_some_seeds_and_loses_others() {
    // 2 spares protect ranks 0-1; faults landing on ranks 2-3 (or on a
    // primary plus its shadow) are unmaskable. Each fault-landing
    // scenario must show both textures across the sweep.
    for name in ["fig5_frequency", "fig7_simultaneous", "fig8_synchronized", "fig10_state_sync"]
    {
        let r = row(name, BackendKind::Replica);
        let buggy = buggy_seeds(r);
        assert!(
            !buggy.is_empty() && buggy.len() < SEEDS.len(),
            "{name}/replica must flicker seed-by-seed, got {r:?}"
        );
        assert!(r.agrees, "{r:?}");
    }
    // Pinned seed-level golden for the headline scenario: which seeds
    // lose an unprotected primary is a deterministic function of the
    // simulation, so a drift here is a behaviour change, not noise.
    assert_eq!(buggy_seeds(row("fig10_state_sync", BackendKind::Replica)), vec![2, 3, 5]);
}

#[test]
fn ulfm_exhaustion_freezes_are_statically_real_but_dynamically_rare() {
    // ULFM's random-kill rows are the matrix's pinned over-approximation:
    // the static model proves the all-ranks-eaten freeze reachable, but
    // no smoke seed realizes the schedule (4 kills must land on 4
    // distinct live ranks). Exactly these two rows may disagree.
    for name in ["fig5_frequency", "fig7_simultaneous"] {
        let r = row(name, BackendKind::Ulfm);
        assert_eq!(r.static_verdict, StaticVerdict::Freezes);
        assert!(buggy_seeds(r).is_empty(), "{r:?}");
        assert!(!r.agrees, "{r:?}");
    }
    let disagreeing: Vec<_> = rows().iter().filter(|r| !r.agrees).collect();
    assert_eq!(
        disagreeing.len(),
        2,
        "only the two ULFM exhaustion rows may disagree:\n{}",
        render_backend_matrix(rows())
    );
}

#[test]
fn dynamic_freezes_are_always_statically_predicted() {
    // The soundness direction holds for every backend: a concrete frozen
    // run on any seed must have been statically reachable.
    for r in rows() {
        if !buggy_seeds(r).is_empty() {
            assert_eq!(
                r.static_verdict,
                StaticVerdict::Freezes,
                "soundness hole in {}/{}: {r:?}",
                r.name,
                r.backend
            );
        }
    }
}

#[test]
fn delay_probe_never_fires_off_vcl() {
    // delay_injection waits on a checkpoint-wave probe; ULFM and
    // replication have no checkpoint scheduler, so the campaign is a
    // no-op there and everything completes.
    for backend in [BackendKind::Ulfm, BackendKind::Replica] {
        let r = row("delay_injection", backend);
        assert!(r.dynamic.iter().all(|(_, c)| *c == "completed"), "{r:?}");
    }
}

/// Release-speed variant: the per-backend static matrix at grid scale
/// (`cargo test --release -p failmpi-experiments --test backend_matrix --
/// --ignored`). The differential shifts with scale:
///
/// * Vcl and ULFM run the paper's full 25-rank grid. ULFM's exhaustion
///   freeze needs every rank eaten, so the *bounded* campaigns
///   (Fig. 7/8/10) that freeze the 4-rank smoke grid cannot touch 25
///   ranks — but Fig. 5's periodic killer re-arms forever and can still
///   eat the whole job, one 25-fault schedule at a time.
/// * Replication runs at its largest definitive scale, 8 ranks + 9
///   machines: its heterogeneous unit space admits no rank symmetry, so
///   the 0-fault boot interleavings of a 26-unit deployment exhaust any
///   practical budget (verified up to 500k states). The 25-rank honesty
///   check below pins that FC006 `Unknown` as the expected answer.
#[test]
#[ignore = "grid scale is release-speed; run with --release -- --ignored"]
fn grid_scale_backend_matrix() {
    for backend in BackendKind::all() {
        let n_ranks = if backend == BackendKind::Replica { 8 } else { 25 };
        let rows = backend_figure_matrix(backend, n_ranks, 50_000);
        assert_eq!(rows.len(), 5);
        for r in &rows {
            match (backend, r.name) {
                // The dispatcher bug stays definitive at grid scale (the
                // existing figure-matrix suite pins the Vcl side in
                // depth; here it anchors the differential).
                (BackendKind::Vcl, "fig8_synchronized" | "fig10_state_sync") => {
                    assert_eq!(r.verdict, StaticVerdict::Freezes, "{backend}/{}", r.name);
                    assert_eq!(r.witness_cost.expect("witness").0, 2);
                }
                // ULFM's unbounded killer can still exhaust 25 ranks —
                // the witness eats every one of them.
                (BackendKind::Ulfm, "fig5_frequency") => {
                    assert_eq!(r.verdict, StaticVerdict::Freezes, "{backend}/{}", r.name);
                    assert_eq!(r.witness_cost.expect("witness").0, 25);
                }
                // The bounded ULFM campaigns cannot eat the whole job, and
                // there is no dispatcher to corrupt — nothing freezes.
                (BackendKind::Ulfm, _) => {
                    assert_ne!(r.verdict, StaticVerdict::Freezes, "{backend}/{}", r.name);
                }
                // Replication with one spare: any fault-landing scenario
                // finds an unprotected primary in one fault.
                (
                    BackendKind::Replica,
                    "fig5_frequency" | "fig7_simultaneous" | "fig8_synchronized"
                    | "fig10_state_sync",
                ) => {
                    assert_eq!(r.verdict, StaticVerdict::Freezes, "{backend}/{}", r.name);
                    assert_eq!(r.witness_cost.expect("witness").0, 1);
                }
                (BackendKind::Replica, "delay_injection") => {
                    assert_eq!(r.verdict, StaticVerdict::Survives, "{backend}/{}", r.name);
                }
                _ => {}
            }
        }
    }

    // Honesty pin: replication at the full 25-rank grid is *not*
    // definitive — no rank symmetry means no boot-ladder folding — and
    // the checker must say Unknown (FC006) rather than guess.
    let replica_25 = backend_figure_matrix(BackendKind::Replica, 25, 50_000);
    assert!(
        replica_25
            .iter()
            .all(|r| r.verdict == StaticVerdict::Unknown),
        "{replica_25:?}"
    );
}
