//! The static model checker against the dynamic simulator: on every
//! runnable builtin figure scenario the pre-run verdict must agree with
//! the classifier's seed sweep (see `failmpi_experiments::crosscheck` for
//! the agreement contract).

use failmpi_analyze::StaticVerdict;
use failmpi_experiments::{crosscheck, crosscheck_builtins};

/// Seeds covering both sides of Fig. 8's partial bugginess: seed 3
/// freezes the smoke-scale sweep, the others complete.
const SEEDS: &[u64] = &[1, 2, 3, 4, 5, 6, 7, 8];

#[test]
fn static_verdicts_agree_with_dynamic_classification() {
    let rows = crosscheck_builtins(SEEDS);
    assert_eq!(rows.len(), 5, "all five runnable builtins are checked");
    for r in &rows {
        assert!(
            r.agrees,
            "static/dynamic disagreement:\n{}",
            crosscheck::render(&rows)
        );
    }
}

#[test]
fn fig10_freeze_prediction_is_realized_on_every_seed() {
    // The model checker calls Fig. 10 a guaranteed freeze (FC003 with a
    // minimal two-fault witness); dynamically the witness schedule is not
    // just realizable but unavoidable — every seed freezes, the paper's
    // "every run froze" observation.
    let rows = crosscheck_builtins(SEEDS);
    let fig10 = rows.iter().find(|r| r.name == "fig10_state_sync").unwrap();
    assert_eq!(fig10.static_verdict, StaticVerdict::Freezes);
    assert!(fig10.dynamic.iter().all(|(_, c)| *c == "buggy"), "{fig10:?}");
}

#[test]
fn no_false_freeze_on_surviving_builtins() {
    // Acceptance guard: the checker must not cry freeze on any scenario
    // the dynamic classifier marks surviving across the sweep.
    let rows = crosscheck_builtins(SEEDS);
    for r in &rows {
        let any_buggy = r.dynamic.iter().any(|(_, c)| *c == "buggy");
        if !any_buggy {
            assert_ne!(
                r.static_verdict,
                StaticVerdict::Freezes,
                "{}: static freeze but dynamic survives: {r:?}",
                r.name
            );
        }
    }
}
