//! The static model checker against the dynamic simulator: on every
//! runnable builtin figure scenario the pre-run verdict must agree with
//! the classifier's seed sweep (see `failmpi_experiments::crosscheck` for
//! the agreement contract) — under **both** dispatcher variants. The
//! historical mode carries the paper's stale-entry bug; the fixed mode is
//! the repaired reference, where any freeze would be a genuinely unknown
//! protocol bug (the scenario fuzzer's main oracle blind spot until this
//! suite closed it).

use std::sync::OnceLock;

use failmpi_analyze::StaticVerdict;
use failmpi_experiments::{crosscheck, crosscheck_builtins_mode, CrosscheckRow};
use failmpi_mpichv::DispatcherMode;

/// Seeds covering both sides of Fig. 8's partial bugginess: seed 3
/// freezes the smoke-scale sweep, the others complete.
const SEEDS: &[u64] = &[1, 2, 3, 4, 5, 6, 7, 8];

/// Each mode's 5-scenario × 8-seed sweep is expensive; compute it once
/// and share it across the assertions.
fn rows(mode: DispatcherMode) -> &'static [CrosscheckRow] {
    static HISTORICAL: OnceLock<Vec<CrosscheckRow>> = OnceLock::new();
    static FIXED: OnceLock<Vec<CrosscheckRow>> = OnceLock::new();
    match mode {
        DispatcherMode::Historical => {
            HISTORICAL.get_or_init(|| crosscheck_builtins_mode(SEEDS, mode))
        }
        DispatcherMode::Fixed => FIXED.get_or_init(|| crosscheck_builtins_mode(SEEDS, mode)),
    }
}

#[test]
fn static_verdicts_agree_with_dynamic_classification() {
    for mode in [DispatcherMode::Historical, DispatcherMode::Fixed] {
        let rows = rows(mode);
        assert_eq!(rows.len(), 5, "all five runnable builtins are checked");
        for r in rows {
            assert!(
                r.agrees,
                "static/dynamic disagreement ({mode:?}):\n{}",
                crosscheck::render(rows)
            );
        }
    }
}

#[test]
fn fig10_freeze_prediction_is_realized_on_every_seed() {
    // The model checker calls Fig. 10 a guaranteed freeze (FC003 with a
    // minimal two-fault witness); dynamically the witness schedule is not
    // just realizable but unavoidable — every seed freezes, the paper's
    // "every run froze" observation.
    let rows = rows(DispatcherMode::Historical);
    let fig10 = rows.iter().find(|r| r.name == "fig10_state_sync").unwrap();
    assert_eq!(fig10.static_verdict, StaticVerdict::Freezes);
    assert!(fig10.dynamic.iter().all(|(_, c)| *c == "buggy"), "{fig10:?}");
}

#[test]
fn fixed_dispatcher_has_no_freeze_on_any_builtin() {
    // The repaired dispatcher is the fuzzer's clean-room reference: no
    // builtin may freeze under it, statically or dynamically, on any of
    // the 8 sweep seeds. A violation here would be a surviving-protocol
    // bug — exactly what the fuzzer hunts for in generated scenarios.
    let rows = rows(DispatcherMode::Fixed);
    for r in rows {
        assert_ne!(
            r.static_verdict,
            StaticVerdict::Freezes,
            "{}: static freeze under the fixed dispatcher: {r:?}",
            r.name
        );
        assert!(
            r.dynamic.iter().all(|(_, c)| *c != "buggy"),
            "{}: dynamic freeze under the fixed dispatcher: {r:?}",
            r.name
        );
    }
}

#[test]
fn no_false_freeze_on_surviving_builtins() {
    // Acceptance guard: the checker must not cry freeze on any scenario
    // the dynamic classifier marks surviving across the sweep.
    for mode in [DispatcherMode::Historical, DispatcherMode::Fixed] {
        for r in rows(mode) {
            let any_buggy = r.dynamic.iter().any(|(_, c)| *c == "buggy");
            if !any_buggy {
                assert_ne!(
                    r.static_verdict,
                    StaticVerdict::Freezes,
                    "{}: static freeze but dynamic survives ({mode:?}): {r:?}",
                    r.name
                );
            }
        }
    }
}
