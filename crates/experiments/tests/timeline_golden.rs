//! Golden-file tests for the timeline renderer.
//!
//! The timeline is the human-facing artifact of a run — the thing a
//! person reads to classify an execution the way the paper's authors
//! did. Its exact layout is therefore part of the contract: these tests
//! pin the rendered text of two fixed-seed runs, in both rendering
//! variants, against committed golden files.
//!
//! To regenerate after an intentional format change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p failmpi-experiments --test timeline_golden
//! ```

use std::path::PathBuf;

use failmpi_experiments::harness::{run_one_traced, ExperimentSpec, InjectionSpec, Workload};
use failmpi_experiments::figures::FIG5_SRC;
use failmpi_experiments::timeline::{render_caused, TimelineOptions};
use failmpi_sim::{SimDuration, SimTime};
use failmpi_mpichv::VclConfig;
use failmpi_workloads::BtClass;

fn spec(seed: u64) -> ExperimentSpec {
    let mut cluster = VclConfig::small(4, SimDuration::from_secs(2));
    cluster.ssh_stagger = SimDuration::from_millis(20);
    cluster.restart_overhead = SimDuration::from_millis(400);
    cluster.terminate_delay = SimDuration::from_millis(30);
    ExperimentSpec {
        cluster,
        workload: Workload::Bt(BtClass::S),
        injection: None,
        timeout: SimTime::from_secs(90),
        freeze_window: SimDuration::from_secs(9),
        seed,
        tie_break: failmpi_sim::TieBreak::Fifo,
        backend: failmpi_backend::BackendKind::Vcl,
    }
}

fn faulty_spec(seed: u64) -> ExperimentSpec {
    let mut s = spec(seed);
    s.injection = Some(
        InjectionSpec::new(FIG5_SRC, "ADV1", "ADVnodes")
            .with_param("X", 4)
            .with_param("N", 5),
    );
    s
}

fn check_golden(name: &str, actual: &str) {
    let path: PathBuf = [env!("CARGO_MANIFEST_DIR"), "tests", "golden", name]
        .iter()
        .collect();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden file {}: {e}", path.display()));
    assert_eq!(
        actual,
        expected,
        "{name}: rendered timeline differs from the golden file \
         (UPDATE_GOLDEN=1 regenerates after an intentional change)"
    );
}

/// Default rendering (progress collapsed, lifecycle noise hidden) of a
/// clean fault-free run, with causal annotations on (a fault-free run has
/// no failure lines, so the causal log must not change the output).
#[test]
fn collapsed_progress_timeline_matches_golden() {
    let traced = run_one_traced(&spec(7));
    let text = render_caused(&traced.cluster, Some(&traced.causal), TimelineOptions::default());
    assert!(text.contains("JOB COMPLETE"), "{text}");
    check_golden("timeline_collapsed.txt", &text);
}

/// Lifecycle rendering (spawns, registrations, resumes, finalizes) of a
/// faulty run — the variant that shows relaunches after failures, with
/// every failure line annotated with its immediate cause.
#[test]
fn lifecycle_timeline_matches_golden() {
    let traced = run_one_traced(&faulty_spec(7));
    assert!(traced.record.faults_injected > 0, "scenario must inject");
    let text = render_caused(
        &traced.cluster,
        Some(&traced.causal),
        TimelineOptions {
            collapse_progress: true,
            lifecycle: true,
        },
    );
    assert!(text.contains("spawn"), "{text}");
    assert!(
        text.contains("[cause: "),
        "failure lines must carry their immediate cause:\n{text}"
    );
    check_golden("timeline_lifecycle.txt", &text);
}
