//! Golden-file test for the Perfetto (Chrome trace-event) export.
//!
//! Pins the exported JSON of one tiny builtin scenario — a two-rank
//! fixed-program run, small enough that the whole export stays readable —
//! so the event layout (per-component lanes, flow arrows on cross-lane
//! cause edges, semantic instants) is part of the repo's contract, the
//! same way the timeline goldens pin the human-facing text.
//!
//! To regenerate after an intentional format change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p failmpi-experiments --test trace_golden
//! ```

use std::path::PathBuf;

use failmpi_experiments::harness::{run_one_traced, ExperimentSpec, Workload};
use failmpi_experiments::tracesink::trace_file_of;
use failmpi_sim::{SimDuration, SimTime};
use failmpi_mpi::ProgramBuilder;
use failmpi_mpichv::VclConfig;

/// The smallest interesting run: two ranks, two compute/progress rounds,
/// no checkpoints (period past the runtime), no faults.
fn tiny_spec() -> ExperimentSpec {
    let program = ProgramBuilder::new(1 << 10)
        .compute(SimDuration::from_millis(50))
        .progress(1)
        .compute(SimDuration::from_millis(50))
        .progress(1)
        .finalize();
    let mut cluster = VclConfig::small(2, SimDuration::from_secs(60));
    cluster.ssh_stagger = SimDuration::from_millis(20);
    cluster.restart_overhead = SimDuration::from_millis(400);
    cluster.terminate_delay = SimDuration::from_millis(30);
    ExperimentSpec {
        cluster,
        workload: Workload::Fixed(vec![program.clone(), program]),
        injection: None,
        timeout: SimTime::from_secs(30),
        freeze_window: SimDuration::from_secs(3),
        seed: 11,
        tie_break: failmpi_sim::TieBreak::Fifo,
        backend: failmpi_backend::BackendKind::Vcl,
    }
}

fn check_golden(name: &str, actual: &str) {
    let path: PathBuf = [env!("CARGO_MANIFEST_DIR"), "tests", "golden", name]
        .iter()
        .collect();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden file {}: {e}", path.display()));
    assert_eq!(
        actual,
        expected,
        "{name}: exported trace differs from the golden file \
         (UPDATE_GOLDEN=1 regenerates after an intentional change)"
    );
}

#[test]
fn perfetto_export_matches_golden() {
    let traced = run_one_traced(&tiny_spec());
    assert!(traced.record.outcome.time().is_some(), "tiny run completes");
    let trace = trace_file_of("perfetto-golden", 11, &traced);
    trace.check_invariants().expect("exported trace is sound");
    let perfetto = failmpi_trace::perfetto::export(&trace);
    check_golden("perfetto_tiny.json", &perfetto);
}
