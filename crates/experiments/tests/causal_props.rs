//! Property tests for the happens-before (causal) trace.
//!
//! Over random builtin scenarios and seeds:
//!
//! - the causal log is a well-formed DAG: dense handled-order ids, every
//!   cause edge pointing to an earlier-handled event, acyclic by
//!   construction (checked via `CausalLog::check_invariants`);
//! - every edge points backward (or equal) in *virtual time*, never
//!   forward — causes cannot postdate their effects;
//! - the exported `failmpi-trace` JSON is deterministic: a same-seed
//!   same-tie-break double run serializes byte-identically;
//! - tracing is schedule-transparent: the traced run's fingerprint equals
//!   the untraced run's.

use proptest::prelude::*;

use failmpi_experiments::robustness::scenario_suite;
use failmpi_experiments::tracesink::trace_file_of;
use failmpi_experiments::{run_one, run_one_traced};

proptest! {
    #![proptest_config(proptest::test_runner::Config::with_cases(8))]

    #[test]
    fn causal_dag_is_sound_and_export_is_deterministic(
        case in 0usize..10,
        seed in 0u64..10_000,
    ) {
        let suite = scenario_suite(seed);
        let (name, spec) = &suite[case % suite.len()];

        let traced = run_one_traced(spec);
        prop_assert!(traced.causal.is_enabled(), "{}: causal log must be on", name);
        prop_assert_eq!(
            traced.causal.len() as u64, traced.record.events,
            "{}: one causal node per handled event", name
        );
        traced
            .causal
            .check_invariants()
            .unwrap_or_else(|e| panic!("{name}: causal invariants broken: {e}"));

        // Every cause edge points backward (or equal) in virtual time.
        for node in traced.causal.nodes() {
            if let Some(cause) = node.cause.and_then(|c| traced.causal.node(c)) {
                prop_assert!(
                    cause.at <= node.at,
                    "{}: cause {} at {:?} postdates effect {} at {:?}",
                    name, cause.id, cause.at, node.id, node.at
                );
            }
        }

        // Tracing must not perturb the schedule.
        let baseline = run_one(spec);
        prop_assert_eq!(
            baseline.fingerprint, traced.record.fingerprint,
            "{}: causal tracing changed the schedule", name
        );

        // Same-seed double run exports byte-identical trace JSON.
        let a = trace_file_of(name, spec.seed, &traced);
        a.check_invariants()
            .unwrap_or_else(|e| panic!("{name}: exported trace broken: {e}"));
        let again = run_one_traced(spec);
        let b = trace_file_of(name, spec.seed, &again);
        prop_assert_eq!(
            a.to_json(), b.to_json(),
            "{}: same-seed trace export is not byte-identical", name
        );
    }
}
