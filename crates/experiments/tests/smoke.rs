//! Smoke-fidelity runs of every figure: the paper's qualitative claims
//! must hold at seconds scale too.

use failmpi_experiments::figures::{ablation, fig11, fig5, fig6, fig7, fig9};

#[test]
fn fig5_shape_time_grows_with_frequency() {
    let data = fig5::run(&fig5::Config::smoke());
    // First point is the fault-free baseline and must complete.
    let baseline = data.points[0]
        .summary
        .mean_time_s
        .expect("baseline completes");
    // The most benign faulty point that injected faults is slower.
    let slowed = data.points.iter().skip(1).find_map(|p| {
        (p.summary.mean_faults >= 1.0)
            .then_some(p.summary.mean_time_s)
            .flatten()
    });
    if let Some(t) = slowed {
        assert!(t > baseline, "faults must cost time: {t} vs {baseline}");
    }
    // The harshest point either stalls or is the slowest.
    let last = &data.points.last().expect("points").summary;
    assert!(
        last.non_terminating > 0.0 || last.mean_time_s.unwrap_or(0.0) >= baseline,
        "the harshest frequency must hurt"
    );
    // No buggy runs in the frequency sweep (no overlapping faults).
    assert!(data.points.iter().all(|p| p.summary.buggy == 0.0));
    // The rendered table carries every point.
    let table = fig5::render(&data);
    assert_eq!(table.lines().count(), 2 + data.points.len());
}

#[test]
fn fig6_shape_more_ranks_run_faster() {
    let data = fig6::run(&fig6::Config::smoke());
    assert!(data.points.len() >= 2);
    let t_small = data.points[0].fault_free.mean_time_s.expect("completes");
    let t_large = data
        .points
        .last()
        .expect("points")
        .fault_free
        .mean_time_s
        .expect("completes");
    assert!(t_large < t_small, "scaling inverted: {t_large} vs {t_small}");
    for p in &data.points {
        // Only meaningful when a fault actually landed before completion.
        if p.faulty.mean_faults < 1.0 {
            continue;
        }
        if let (Some(ff), Some(f)) = (p.fault_free.mean_time_s, p.faulty.mean_time_s) {
            assert!(f > ff, "faults must cost time at {} ranks", p.n_ranks);
        }
    }
}

#[test]
fn fig7_burst_of_one_behaves_like_fig5() {
    let data = fig7::run(&fig7::Config::smoke());
    let single = &data.points[0];
    assert_eq!(single.burst, 1);
    // Single-fault bursts never trip the recovery bug.
    assert_eq!(single.summary.buggy, 0.0);
    // Bursts inject roughly burst-many faults per period.
    let double = &data.points[1];
    assert!(double.summary.mean_faults > single.summary.mean_faults);
}

#[test]
fn fig9_bug_is_partial_and_fig11_bug_is_total() {
    let mut cfg9 = fig9::Config::smoke();
    cfg9.runs = 8;
    let d9 = fig9::run(&cfg9);
    let buggy9: f64 = d9.points.iter().map(|p| p.synchronized.buggy).sum::<f64>()
        / d9.points.len() as f64;
    assert!(
        buggy9 < 0.8,
        "fig9 must spare a majority of runs, got {buggy9}"
    );

    let d11 = fig11::run(&fig11::smoke_config());
    for p in &d11.points {
        assert_eq!(
            p.synchronized.pct_buggy(),
            100.0,
            "fig11 must freeze every run at {} ranks",
            p.n_ranks
        );
        // The baseline column stays healthy.
        assert!(p.fault_free.mean_time_s.is_some());
    }
}

#[test]
fn ablation_fixed_dispatcher_eliminates_the_bug() {
    let cfg = ablation::Config::smoke();
    let d = ablation::dispatcher(&cfg);
    assert_eq!(d.historical_pct_buggy, 100.0);
    assert_eq!(d.fixed_pct_buggy, 0.0);
    assert_eq!(d.fixed_pct_completed, 100.0);
}

#[test]
fn ablation_blocking_checkpoints_are_slower() {
    let cfg = ablation::Config::smoke();
    let styles = ablation::checkpoint_style(&cfg);
    assert_eq!(styles.len(), 2);
    let nb = styles[0].fault_free.mean_time_s.expect("completes");
    let b = styles[1].fault_free.mean_time_s.expect("completes");
    assert!(b > nb, "blocking {b} must exceed non-blocking {nb}");
}

#[test]
fn ablation_short_waves_help_under_faults() {
    let cfg = ablation::Config::smoke();
    let periods = ablation::checkpoint_period(&cfg);
    assert_eq!(periods.len(), cfg.periods_s.len());
    // Under periodic faults, the shortest wave period loses the least
    // work per rollback (when both extremes complete at all).
    let first = periods.first().expect("points");
    let last = periods.last().expect("points");
    if let (Some(f), Some(l)) = (first.faulty.mean_time_s, last.faulty.mean_time_s) {
        assert!(f <= l * 1.2, "short waves should not be much worse: {f} vs {l}");
    }
}

#[test]
fn ablation_vdummy_baseline_crossover() {
    let cfg = ablation::Config::smoke();
    let points = ablation::protocol(&cfg);
    assert_eq!(points.len(), 6); // {Vcl, V2, Vdummy} × {clean, faulty}
    let get = |proto: &str, faulty: bool| {
        points
            .iter()
            .find(|p| p.protocol == proto && p.interval_s.is_some() == faulty)
            .expect("point exists")
    };
    // Without faults, Vdummy is at least as fast (no checkpoint traffic).
    let vcl_clean = get("Vcl", false).summary.mean_time_s.unwrap();
    let dummy_clean = get("Vdummy", false).summary.mean_time_s.unwrap();
    assert!(dummy_clean <= vcl_clean + 0.2, "{dummy_clean} vs {vcl_clean}");
    // Under faults, Vcl completes; Vdummy restarts from scratch forever
    // (or at best limps far behind).
    let vcl_faulty = &get("Vcl", true).summary;
    let dummy_faulty = &get("Vdummy", true).summary;
    assert!(vcl_faulty.non_terminating < 1.0, "Vcl must make progress");
    let dummy_hopeless = dummy_faulty.non_terminating > 0.5
        || dummy_faulty.mean_time_s.unwrap_or(f64::MAX)
            > vcl_faulty.mean_time_s.unwrap_or(0.0);
    assert!(dummy_hopeless, "the baseline must lose under faults");
    // V2 completes under faults too, with solo restarts only.
    let v2_faulty = &get("V2", true).summary;
    assert!(v2_faulty.non_terminating < 1.0, "V2 must make progress");
    assert_eq!(v2_faulty.buggy, 0.0);
}

#[test]
fn delay_sweep_excess_grows_with_delay() {
    use failmpi_experiments::figures::delay;
    let mut cfg = delay::Config::smoke();
    cfg.delays_s = vec![0, 1];
    let data = delay::run(&cfg);
    let base = data.baseline.mean_time_s.expect("baseline completes");
    let excesses: Vec<f64> = data
        .points
        .iter()
        .map(|p| p.summary.mean_time_s.expect("point completes") - base)
        .collect();
    // Every fault costs something…
    assert!(excesses.iter().all(|&e| e > 0.0), "{excesses:?}");
    // …and a later fault (more un-checkpointed work) costs more.
    assert!(
        excesses[1] > excesses[0],
        "delay must increase the loss: {excesses:?}"
    );
    // Exactly one fault per run.
    assert!(data.points.iter().all(|p| p.summary.mean_faults == 1.0));
}

#[test]
fn lbh04_message_logging_wins_under_faults() {
    use failmpi_experiments::figures::lbh04;
    let data = lbh04::run(&lbh04::Config::smoke());
    let get = |proto: &str, interval: Option<u64>| {
        data.points
            .iter()
            .find(|p| p.protocol == proto && p.interval_s == interval)
            .expect("cell exists")
            .summary
            .clone()
    };
    // Fault-free: within noise of each other.
    let (vcl0, v20) = (get("Vcl", None), get("V2", None));
    let (a, b) = (vcl0.mean_time_s.unwrap(), v20.mean_time_s.unwrap());
    assert!((a - b).abs() / a < 0.25, "clean times diverged: {a} vs {b}");
    // At the harshest interval, V2 must strictly dominate: either Vcl
    // stalls and V2 doesn't, or V2 is faster.
    let harsh = *data
        .points
        .iter()
        .filter_map(|p| p.interval_s)
        .min_by_key(|&x| x)
        .iter()
        .next()
        .unwrap();
    let (vclh, v2h) = (get("Vcl", Some(harsh)), get("V2", Some(harsh)));
    assert!(
        v2h.non_terminating <= vclh.non_terminating,
        "V2 stalled more than Vcl"
    );
    if let (Some(tv), Some(t2)) = (vclh.mean_time_s, v2h.mean_time_s) {
        assert!(t2 < tv, "V2 ({t2}) must beat Vcl ({tv}) at 1/{harsh}s");
    }
    // V2 never freezes (no stop-the-world, no dispatcher confusion).
    assert!(data
        .points
        .iter()
        .filter(|p| p.protocol == "V2")
        .all(|p| p.summary.buggy == 0.0));
}
