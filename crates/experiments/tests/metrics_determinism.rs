//! Metrics-snapshot determinism regression tests.
//!
//! The observability layer's contract (see `failmpi-obs`) is that a
//! [`failmpi_obs::MetricsSnapshot`] is a function of the simulated
//! schedule alone. These tests enforce the PR acceptance gate: a
//! same-seed double run of every builtin figure scenario must produce
//! byte-identical metrics JSON — with the schedule fingerprint verified
//! deterministic first, so a metrics divergence can never hide behind a
//! schedule divergence.

use failmpi_experiments::robustness::{det_run, scenario_suite};
use failmpi_experiments::run_one;
use failmpi_sim::TieBreak;
use failmpi_testkit::assert_deterministic;

/// Same-seed double runs of every builtin scenario serialize to the same
/// metrics JSON, byte for byte.
#[test]
fn metrics_json_is_byte_identical_across_double_runs() {
    for (name, spec) in scenario_suite(0xA11) {
        assert_deterministic(&format!("{name}/metrics"), |capture| det_run(&spec, capture));
        let a = run_one(&spec);
        let b = run_one(&spec);
        let (ja, jb) = (a.metrics.to_json(), b.metrics.to_json());
        assert_eq!(ja, jb, "{name}: metrics JSON diverged across same-seed runs");
        assert!(
            ja.contains("\"schema_version\""),
            "{name}: snapshot lost its schema version"
        );
        assert_eq!(
            a.metrics.counter("sim.events_handled"),
            a.events,
            "{name}: sim.events_handled disagrees with the engine's count"
        );
        assert!(
            a.metrics.counter("mpichv.daemons_spawned") > 0,
            "{name}: an empty snapshot would pass byte-identity vacuously"
        );
    }
}

/// Byte-identity holds under a perturbed (seeded) tie-break too: a
/// perturbed schedule is a *different* deterministic schedule, and its
/// metrics must reproduce just as exactly.
#[test]
fn perturbed_schedule_metrics_are_byte_identical() {
    for (name, spec) in scenario_suite(0xA12) {
        let spec = spec.with_tie_break(TieBreak::Seeded(0x0B5));
        let a = run_one(&spec).metrics.to_json();
        let b = run_one(&spec).metrics.to_json();
        assert_eq!(a, b, "{name}: perturbed-schedule metrics diverged");
    }
}

/// Different experiment seeds produce *different* metrics — the snapshot
/// actually reflects the run rather than a constant table.
#[test]
fn metrics_discriminate_seeds() {
    let suite_a = scenario_suite(1);
    let suite_b = scenario_suite(2);
    let (name, spec_a) = &suite_a[0];
    let (_, spec_b) = &suite_b[0];
    let a = run_one(spec_a).metrics.to_json();
    let b = run_one(spec_b).metrics.to_json();
    assert_ne!(a, b, "{name}: seeds 1 and 2 produced identical metrics");
}
