//! The paper-scale figure matrix: every runnable builtin model-checked at
//! grid scale with the reduced exploration, both dispatcher variants.
//!
//! The per-figure expectations mirror the paper where the exploration is
//! definitive within the `failck` default budget:
//!
//! * Fig. 8 and Fig. 10 freeze under the historical dispatcher with the
//!   paper's two-fault schedule — the headline result, and it must stay
//!   definitive at full 25-rank grid scale;
//! * Fig. 5 and Fig. 7 survive under both dispatchers;
//! * no scenario may freeze under the fixed dispatcher — that would be a
//!   genuinely unknown protocol bug, not the known defect.
//!
//! The fixed-dispatcher Fig. 8 grid and the delay campaign are allowed to
//! stay `Unknown`: synchronized wave faults multiply the victim-choice
//! branching past what the orbit quotient and the ample filter can fold,
//! and the budget-exceeded path (FC006) is the honest answer there.

use failmpi_analyze::StaticVerdict;
use failmpi_experiments::{figure_matrix, render_matrix};
use failmpi_mpichv::DispatcherMode;

fn assert_matrix_shape(rows: &[failmpi_experiments::MatrixRow], n_ranks: usize) {
    assert_eq!(rows.len(), 10, "5 scenarios x 2 dispatcher modes");
    for r in rows {
        assert_eq!(r.n_ranks, n_ranks);
        let freeze_row = r.mode == DispatcherMode::Historical
            && (r.name == "fig8_synchronized" || r.name == "fig10_state_sync");
        if freeze_row {
            assert_eq!(r.verdict, StaticVerdict::Freezes, "{} historical", r.name);
            let (faults, steps) = r.witness_cost.expect("freeze rows carry a witness");
            assert_eq!(faults, 2, "{}: the paper's two-fault schedule", r.name);
            assert!(steps > 0);
        } else {
            assert_ne!(
                r.verdict,
                StaticVerdict::Freezes,
                "{} ({:?}): a freeze outside the two historical-dispatcher \
                 rows would be an unknown protocol bug",
                r.name,
                r.mode
            );
            assert!(r.witness_cost.is_none());
        }
        let survivor_grid = r.name == "fig5_frequency" || r.name == "fig7_simultaneous";
        if survivor_grid {
            assert_eq!(
                r.verdict,
                StaticVerdict::Survives,
                "{} ({:?}) must be definitive at {} ranks",
                r.name,
                r.mode,
                n_ranks
            );
        }
    }
    // Symmetry must actually bite at grid scale: the spare machines and
    // interchangeable ranks fold into orbits on at least one row.
    assert!(
        rows.iter().any(|r| r.orbit_hits > 0),
        "no row recorded an orbit merge:\n{}",
        render_matrix(rows)
    );
}

#[test]
fn eight_rank_matrix_is_definitive() {
    let rows = figure_matrix(8, 50_000);
    assert_matrix_shape(&rows, 8);
    let table = render_matrix(&rows);
    assert!(table.contains("fig10_state_sync"));
    assert!(table.contains("2 fault(s)"));
}

/// The tentpole target: the full 25-rank paper grid. The headline Fig. 10
/// freeze must be definitive within the `failck` default budget at this
/// scale. Debug-mode exploration here is minutes, so this runs
/// release-mode only
/// (`cargo test --release -p failmpi-experiments -- --ignored`).
#[test]
#[ignore = "25-rank grid is release-speed; run with --release -- --ignored"]
fn twenty_five_rank_matrix_is_definitive() {
    let rows = figure_matrix(25, 50_000);
    assert_matrix_shape(&rows, 25);
    // Beyond the shared shape: the Fig. 10 witness grows with the grid
    // (every surviving rank re-registers during recovery), and the
    // reduced exploration must land it well inside the budget.
    let fig10 = rows
        .iter()
        .find(|r| r.name == "fig10_state_sync" && r.mode == DispatcherMode::Historical)
        .expect("fig10 historical row");
    assert!(fig10.explored < 50_000, "definitive before budget");
    let (_, steps) = fig10.witness_cost.expect("witness");
    assert!(steps > 50, "25-rank recovery schedule is long, got {steps}");
}
