//! Integration tests for the CLI binaries (`failc` and the figure
//! binaries' argument handling), driven through the compiled executables.

use std::process::Command;

fn failc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_failc"))
}

#[test]
fn failc_compiles_the_paper_scenarios() {
    for name in [
        "fig4_generic_nodes",
        "fig5_frequency",
        "fig7_simultaneous",
        "fig8_synchronized",
        "fig10_state_sync",
    ] {
        let path = format!(
            "{}/../core/scenarios/{name}.fail",
            env!("CARGO_MANIFEST_DIR")
        );
        let out = failc().arg(&path).output().expect("failc runs");
        assert!(out.status.success(), "{name}: {out:?}");
        let stdout = String::from_utf8(out.stdout).expect("utf8");
        assert!(stdout.contains("daemon"), "{name}: {stdout}");
        assert!(stdout.contains("messages:"), "{name}: {stdout}");
    }
}

#[test]
fn failc_emits_rust() {
    let path = format!(
        "{}/../core/scenarios/fig10_state_sync.fail",
        env!("CARGO_MANIFEST_DIR")
    );
    let out = failc()
        .arg(&path)
        .arg("--emit-rust")
        .output()
        .expect("failc runs");
    assert!(out.status.success());
    let code = String::from_utf8(out.stdout).expect("utf8");
    assert!(code.contains("pub fn build_scenario() -> Scenario"));
    assert!(code.contains("Guard::Before(\"localMPI_setCommand\""));
}

#[test]
fn failc_reports_compile_errors_with_position() {
    let dir = std::env::temp_dir().join("failmpi-cli-test");
    std::fs::create_dir_all(&dir).expect("tmpdir");
    let bad = dir.join("bad.fail");
    std::fs::write(&bad, "daemon A { node 1: ?x -> goto 7; }").expect("write");
    let out = failc().arg(&bad).output().expect("failc runs");
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).expect("utf8");
    assert!(err.contains("unknown node 7"), "{err}");
    assert!(err.contains("line 1"), "{err}");
}

#[test]
fn failc_usage_on_bad_args() {
    let out = failc().output().expect("failc runs");
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).expect("utf8");
    assert!(err.contains("usage"), "{err}");
}

#[test]
fn fig5_binary_smoke_runs_and_writes_json() {
    let dir = std::env::temp_dir().join("failmpi-cli-test");
    std::fs::create_dir_all(&dir).expect("tmpdir");
    let json = dir.join("fig5.json");
    let out = Command::new(env!("CARGO_BIN_EXE_fig5"))
        .args(["--smoke", "--runs", "1", "--json"])
        .arg(&json)
        .output()
        .expect("fig5 runs");
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    assert!(stdout.contains("Figure 5"), "{stdout}");
    let data: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&json).expect("json written"))
            .expect("valid json");
    assert!(data["points"].as_array().expect("points").len() >= 2);
}

#[test]
fn figure_binaries_reject_unknown_flags() {
    let out = Command::new(env!("CARGO_BIN_EXE_fig11"))
        .arg("--frobnicate")
        .output()
        .expect("fig11 runs");
    assert!(!out.status.success());
}
