//! Determinism and transparency tests for the profiling subsystem.
//!
//! - the `--profile` sink output is deterministic: running the whole
//!   scenario suite twice under an armed sink renders byte-identical
//!   JSON (in a default build the allocation counters are zero and the
//!   remaining counters are schedule-derived; in an `alloc-profile`
//!   build the same holds within one binary, which is how CI gates it);
//! - the collapsed-stack flamegraph export of a fixed-seed run matches
//!   a committed golden file (span *counts* weight the stacks, so the
//!   golden is stable across toolchains);
//! - profiling is schedule-transparent: fingerprint, classification
//!   outcome and event count of a profiled run equal the unprofiled
//!   run's (the property-test satellite).
//!
//! The profile sink is process-global, so every test here serializes on
//! one mutex; cargo otherwise runs a binary's tests on parallel threads
//! and an armed sink would swallow a concurrent test's runs.
//!
//! To regenerate the golden after an intentional schema/span change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p failmpi-experiments --test profile_props
//! ```

use std::path::PathBuf;
use std::sync::Mutex;

use proptest::prelude::*;

use failmpi_experiments::profsink::{disarm_sink, install_sink, render_sink};
use failmpi_experiments::robustness::{fig10_stress_spec, scenario_suite};
use failmpi_experiments::run_one;
use failmpi_mpichv::DispatcherMode;

/// Serializes access to the process-global profile sink.
static SINK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    SINK.lock().unwrap_or_else(|e| e.into_inner())
}

/// One armed-sink pass over the full scenario suite, returning the
/// rendered aggregate document.
fn profiled_suite_pass(seed: u64) -> String {
    install_sink();
    for (_, spec) in scenario_suite(seed) {
        run_one(&spec);
    }
    let doc = render_sink().expect("suite ran under an armed sink");
    disarm_sink();
    doc
}

/// Byte-identity of the `--profile` document across a same-seed double
/// run of the figure-scale suite — the contract CI's perf-smoke job
/// gates with `cmp`.
#[test]
fn profile_sink_output_is_byte_identical_across_runs() {
    let _guard = lock();
    let a = profiled_suite_pass(0xD_E7E);
    let b = profiled_suite_pass(0xD_E7E);
    assert_eq!(a, b, "same-seed --profile output must be byte-identical");
    // The merged document must carry the suite's backend tag: the vcl
    // scenario suite never mixes backends, so no `mixed` escape hatch.
    assert!(
        a.contains("\"backend\": \"vcl\""),
        "suite aggregate should be tagged vcl:\n{a}"
    );
}

fn check_golden(name: &str, actual: &str) {
    let path: PathBuf = [env!("CARGO_MANIFEST_DIR"), "tests", "golden", name]
        .iter()
        .collect();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden file {}: {e}", path.display()));
    assert_eq!(
        actual, expected,
        "{name}: collapsed stacks differ from the golden file \
         (UPDATE_GOLDEN=1 regenerates after an intentional change)"
    );
}

/// The collapsed-stack export of the Fig. 10 stress scenario, pinned
/// against a committed golden. Stack weights are span counts — pure
/// schedule artifacts — so this file is identical in default and
/// `alloc-profile` builds and across toolchains.
#[test]
fn fig10_collapsed_stacks_match_golden() {
    let _guard = lock();
    let spec = fig10_stress_spec(DispatcherMode::Historical, 7);
    failmpi_obs::prof::start_run(spec.backend.name());
    run_one(&spec);
    let profile = failmpi_obs::prof::finish_run().expect("profiling context active");
    assert!(!profile.spans.is_empty(), "stress run must record spans");
    check_golden("fig10_collapsed.txt", &profile.to_collapsed());
}

proptest! {
    #![proptest_config(proptest::test_runner::Config::with_cases(8))]

    /// Schedule transparency: over random builtin scenarios and seeds,
    /// a profiled run's fingerprint, classification outcome and event
    /// count are identical to the unprofiled run's. Profiling observes
    /// the schedule; it must never steer it.
    #[test]
    fn profiling_is_schedule_transparent(
        case in 0usize..10,
        seed in 0u64..10_000,
    ) {
        let _guard = lock();
        let suite = scenario_suite(seed);
        let (name, spec) = &suite[case % suite.len()];

        disarm_sink();
        let off = run_one(spec);

        install_sink();
        let on = run_one(spec);
        let doc = render_sink().expect("profiled run submits to the sink");
        disarm_sink();

        prop_assert_eq!(
            off.fingerprint, on.fingerprint,
            "{}: profiling changed the schedule", name
        );
        prop_assert_eq!(
            format!("{:?}", off.outcome), format!("{:?}", on.outcome),
            "{}: profiling changed the classification verdict", name
        );
        prop_assert_eq!(off.events, on.events, "{}: event counts differ", name);
        // And the profile itself saw every handled event.
        let p = failmpi_obs::RunProfile::from_json(&doc).expect("sink JSON parses");
        prop_assert_eq!(p.events, on.events, "{}: profile missed events", name);
    }
}
