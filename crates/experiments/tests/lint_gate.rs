//! The harness' pre-run lint gate: strict mode refuses scenarios with
//! `Error`-level findings, warn mode runs them anyway, and every builtin
//! figure scenario passes the gate clean.

use failmpi_experiments::figures::{DELAY_SRC, FIG10_SRC, FIG5_SRC, FIG7_SRC, FIG8_SRC};
use failmpi_experiments::{
    lint_injection, try_run_one, ExperimentSpec, InjectionSpec, LintMode, Workload,
};
use failmpi_sim::{SimDuration, SimTime};
use failmpi_mpichv::VclConfig;
use failmpi_workloads::BtClass;

/// A scenario with a guaranteed `Error`-level finding: `ping` goes to a
/// class that never receives it (FA008), and `?ack` can never be
/// satisfied (FA009).
const BROKEN_SRC: &str = "daemon ADV1 {\n  node 1:\n    onload -> !ping(G1[0]), goto 2;\n  node 2:\n    ?ack -> goto 1;\n}\ndaemon ADVnodes {\n  node 1:\n    onload -> continue, goto 1;\n}\ninstance P1 = ADV1;\ngroup G1[4] = ADVnodes;\n";

fn miniature(seed: u64) -> ExperimentSpec {
    let mut cluster = VclConfig::small(4, SimDuration::from_secs(2));
    cluster.ssh_stagger = SimDuration::from_millis(20);
    ExperimentSpec {
        cluster,
        workload: Workload::Bt(BtClass::S),
        injection: None,
        timeout: SimTime::from_secs(90),
        freeze_window: SimDuration::from_secs(9),
        seed,
        tie_break: failmpi_sim::TieBreak::Fifo,
        backend: failmpi_backend::BackendKind::Vcl,
    }
}

#[test]
fn strict_gate_refuses_broken_scenario() {
    let inj = InjectionSpec::new(BROKEN_SRC, "ADV1", "ADVnodes").with_lint(LintMode::Strict);
    let report = lint_injection(&inj).expect_err("strict gate must refuse");
    assert!(report.has_errors());
    let codes: Vec<_> = report.diagnostics.iter().map(|d| d.code).collect();
    assert!(codes.contains(&"FA008"), "got {codes:?}");
    assert!(codes.contains(&"FA009"), "got {codes:?}");
}

#[test]
fn try_run_one_surfaces_the_report_instead_of_running() {
    let mut spec = miniature(11);
    // Even with the spec's own mode at Warn, try_run_one applies strict.
    spec.injection =
        Some(InjectionSpec::new(BROKEN_SRC, "ADV1", "ADVnodes").with_lint(LintMode::Warn));
    let report = try_run_one(&spec).expect_err("must refuse");
    assert!(report.has_errors());
}

#[test]
fn warn_and_off_modes_still_run_broken_scenarios() {
    for mode in [LintMode::Warn, LintMode::Off] {
        let inj = InjectionSpec::new(BROKEN_SRC, "ADV1", "ADVnodes").with_lint(mode);
        assert!(lint_injection(&inj).is_ok(), "{mode:?} must not refuse");
        let mut spec = miniature(12);
        spec.injection = Some(inj);
        // The run itself must proceed to a classified outcome (a broken
        // adversary degenerates to a near-fault-free run).
        let record = failmpi_experiments::run_one(&spec);
        assert!(record.faults_injected == 0);
    }
}

#[test]
fn surviving_figure_scenarios_pass_the_strict_gate() {
    for (name, src) in [("fig5", FIG5_SRC), ("fig7", FIG7_SRC), ("delay", DELAY_SRC)] {
        let inj = InjectionSpec::new(src, "ADV1", "ADVnodes").with_lint(LintMode::Strict);
        assert!(
            lint_injection(&inj).is_ok(),
            "builtin scenario {name} fails the strict gate"
        );
    }
}

#[test]
fn strict_gate_refuses_predicted_freezes_unless_expected() {
    // Fig. 8 and Fig. 10 are *designed* to freeze the dispatcher; the
    // model checker predicts it, and strict mode refuses to burn sweep
    // budget on them unless the spec declares the freeze is the point.
    for (name, src) in [("fig8", FIG8_SRC), ("fig10", FIG10_SRC)] {
        let inj = InjectionSpec::new(src, "ADV1", "ADVnodes").with_lint(LintMode::Strict);
        let report = lint_injection(&inj).expect_err("strict gate must refuse");
        let codes: Vec<_> = report.diagnostics.iter().map(|d| d.code).collect();
        assert!(codes.contains(&"FC003"), "{name}: got {codes:?}");

        let expected = inj.with_expect_freeze(true);
        assert!(
            lint_injection(&expected).is_ok(),
            "{name}: expect_freeze must open the gate"
        );
    }
}

#[test]
fn strict_run_of_clean_scenario_succeeds() {
    let mut spec = miniature(13);
    spec.injection = Some(
        InjectionSpec::new(FIG5_SRC, "ADV1", "ADVnodes")
            .with_param("X", 4)
            .with_param("N", 5)
            .with_lint(LintMode::Strict),
    );
    let record = try_run_one(&spec).expect("clean scenario must run");
    assert!(record.end > SimTime::ZERO);
}
