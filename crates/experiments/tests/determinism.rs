//! Determinism & schedule-robustness regression tests.
//!
//! Every paper scenario must (a) reproduce its schedule fingerprint
//! bit-for-bit across double runs — under the canonical FIFO tie-break
//! *and* under a perturbed one — and (b) keep its paper classification
//! across the whole interleaving sample: the Fig. 10 freeze is a property
//! of the historical dispatcher, not of one lucky schedule.

use failmpi_experiments::robustness::{
    det_run, fig10_stress_spec, perturb, scenario_suite,
};
use failmpi_mpichv::DispatcherMode;
use failmpi_sim::TieBreak;
use failmpi_testkit::assert_deterministic;

/// Every figure scenario double-runs with identical fingerprints, under
/// two different experiment seeds.
#[test]
fn every_scenario_is_deterministic() {
    for seed in [1u64, 42] {
        for (name, spec) in scenario_suite(seed) {
            let fp = assert_deterministic(&format!("{name}/seed{seed}"), |capture| {
                det_run(&spec, capture)
            });
            assert_ne!(fp, 0, "{name}: degenerate fingerprint");
        }
    }
}

/// Perturbed schedules are themselves reproducible: a seeded tie-break is
/// a *different* deterministic schedule, not a random one.
#[test]
fn perturbed_schedules_are_deterministic() {
    for (name, spec) in scenario_suite(3) {
        let spec = spec.with_tie_break(TieBreak::Seeded(0xD15C));
        assert_deterministic(&format!("{name}/perturbed"), |capture| {
            det_run(&spec, capture)
        });
    }
}

/// Distinct experiment seeds explore distinct schedules (the fingerprint
/// actually discriminates).
#[test]
fn fingerprint_discriminates_seeds() {
    let suite_a = scenario_suite(1);
    let suite_b = scenario_suite(2);
    let (name, a) = &suite_a[0];
    let (_, b) = &suite_b[0];
    let fa = det_run(a, false).fingerprint;
    let fb = det_run(b, false).fingerprint;
    assert_ne!(fa, fb, "{name}: seeds 1 and 2 produced the same schedule");
}

/// The paper's Fig. 10 claim, checked across the interleaving space: the
/// historical dispatcher freezes on *every* perturbed schedule.
#[test]
fn fig10_freeze_survives_schedule_perturbation() {
    let spec = fig10_stress_spec(DispatcherMode::Historical, 0xB10B);
    let report = perturb("fig10-buggy", &spec, 25);
    assert_eq!(report.distinct_schedules, 25, "perturbation must explore");
    report.assert_all("buggy");
}

/// …and the fixed dispatcher never freezes, on the same sample.
#[test]
fn fixed_dispatcher_never_freezes_under_perturbation() {
    let spec = fig10_stress_spec(DispatcherMode::Fixed, 0xB10B);
    let report = perturb("fig10-fixed", &spec, 25);
    assert_eq!(report.count("buggy"), 0, "{:?}", report.histogram);
    assert!(
        report.violations().next().is_none(),
        "invariant violations under perturbation"
    );
}
