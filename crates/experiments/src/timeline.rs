//! Human-readable execution timelines.
//!
//! The paper's authors classified runs and located the dispatcher bug "by
//! analysing the execution trace"; this module renders our traces the way
//! a person wants to read them — one line per event, indented recovery
//! epochs, progress collapsed into ranges.

use std::fmt::Write;

use failmpi_sim::CausalLog;
use failmpi_mpichv::{Cluster, VclEvent};

/// Rendering options.
#[derive(Clone, Copy, Debug)]
pub struct TimelineOptions {
    /// Collapse consecutive `AppProgress` records into `iter a..b` ranges.
    pub collapse_progress: bool,
    /// Skip per-daemon spawn/registration noise.
    pub lifecycle: bool,
}

impl Default for TimelineOptions {
    fn default() -> Self {
        TimelineOptions {
            collapse_progress: true,
            lifecycle: false,
        }
    }
}

fn flush_progress(
    out: &mut String,
    pending: &mut Option<(f64, f64, u32, u32)>,
) {
    if let Some((t0, t1, lo, hi)) = pending.take() {
        if lo == hi {
            writeln!(out, "{t0:10.3}s  progress      iter {lo}").unwrap();
        } else {
            writeln!(
                out,
                "{t0:10.3}s  progress      iter {lo}..{hi} (until {t1:.3}s)"
            )
            .unwrap();
        }
    }
}

/// Renders the cluster's trace as a timeline.
pub fn render(cluster: &Cluster, opts: TimelineOptions) -> String {
    render_caused(cluster, None, opts)
}

/// Like [`render`], annotating each failure line with its immediate cause
/// from the happens-before log (the engine event whose handling detected
/// the failure) — run the experiment through
/// [`crate::harness::run_one_traced`] to capture one.
pub fn render_caused(cluster: &Cluster, causal: Option<&CausalLog>, opts: TimelineOptions) -> String {
    let mut out = String::new();
    let mut pending: Option<(f64, f64, u32, u32)> = None;
    for entry in cluster.trace().entries() {
        let (at, kind) = (&entry.at, &entry.kind);
        let t = at.as_secs_f64();
        if opts.collapse_progress {
            if let VclEvent::AppProgress { iter, .. } = kind {
                pending = Some(match pending {
                    None => (t, t, *iter, *iter),
                    Some((t0, _, lo, hi)) => (t0, t, lo.min(*iter), hi.max(*iter)),
                });
                continue;
            }
        }
        flush_progress(&mut out, &mut pending);
        let line = match kind {
            VclEvent::DaemonSpawned { rank, epoch, host } => {
                if !opts.lifecycle {
                    continue;
                }
                format!("spawn         rank {rank} epoch {epoch} on {host:?}")
            }
            VclEvent::DaemonRegistered { rank, epoch } => {
                if !opts.lifecycle {
                    continue;
                }
                format!("register      rank {rank} epoch {epoch}")
            }
            VclEvent::RunStarted { epoch } => format!("run start     epoch {epoch}"),
            VclEvent::RankResumed { rank, from_wave } => {
                if !opts.lifecycle {
                    continue;
                }
                match from_wave {
                    Some(w) => format!("resume        rank {rank} from wave {w}"),
                    None => format!("resume        rank {rank} from scratch"),
                }
            }
            VclEvent::AppProgress { rank, iter } => {
                format!("progress      rank {rank} iter {iter}")
            }
            VclEvent::WaveStarted { wave } => format!("wave start    #{wave}"),
            VclEvent::LocalCheckpointDone { .. } => continue,
            VclEvent::WaveCommitted { wave } => format!("wave commit   #{wave}"),
            VclEvent::FailureDetected {
                rank,
                epoch,
                during_recovery,
            } => {
                // Annotate the freeze-relevant line with its immediate
                // cause: the engine event whose handling detected the
                // failure (a socket closure, per the paper's detector).
                let via = causal
                    .and_then(|log| entry.cause.and_then(|id| log.node(id)))
                    .map(|n| format!("  [cause: {}]", n.label))
                    .unwrap_or_default();
                if *during_recovery {
                    format!("FAILURE       rank {rank} epoch {epoch}  ** during recovery: the bug window **{via}")
                } else {
                    format!("failure       rank {rank} epoch {epoch}{via}")
                }
            }
            VclEvent::RecoveryStarted { epoch } => format!("recovery      -> epoch {epoch}"),
            VclEvent::LaunchRetried { rank, epoch } => {
                format!("ssh retry     rank {rank} epoch {epoch} (died unregistered)")
            }
            VclEvent::RankFinalized { rank } => {
                if !opts.lifecycle {
                    continue;
                }
                format!("finalize      rank {rank}")
            }
            VclEvent::JobComplete => "JOB COMPLETE".to_string(),
        };
        writeln!(out, "{t:10.3}s  {line}").unwrap();
    }
    flush_progress(&mut out, &mut pending);
    if !cluster.is_complete() {
        writeln!(
            out,
            "{:>10}   (run did not complete — see the classifier verdict)",
            "…"
        )
        .unwrap();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::{FIG10_SRC, FIG5_SRC};
    use crate::harness::{run_one_keeping_cluster, ExperimentSpec, InjectionSpec, Workload};
    use failmpi_sim::{SimDuration, SimTime};
    use failmpi_mpichv::VclConfig;
    use failmpi_workloads::BtClass;

    fn spec(seed: u64) -> ExperimentSpec {
        let mut cluster = VclConfig::small(4, SimDuration::from_secs(2));
        cluster.ssh_stagger = SimDuration::from_millis(20);
        cluster.restart_overhead = SimDuration::from_millis(400);
        cluster.terminate_delay = SimDuration::from_millis(30);
        ExperimentSpec {
            cluster,
            workload: Workload::Bt(BtClass::S),
            injection: None,
            timeout: SimTime::from_secs(90),
            freeze_window: SimDuration::from_secs(9),
            seed,
            tie_break: failmpi_sim::TieBreak::Fifo,
            backend: failmpi_backend::BackendKind::Vcl,
        }
    }

    #[test]
    fn clean_timeline_reads_start_to_complete() {
        let (_, cluster) = run_one_keeping_cluster(&spec(1));
        let text = render(&cluster, TimelineOptions::default());
        assert!(text.contains("run start     epoch 0"), "{text}");
        assert!(text.contains("wave commit"), "{text}");
        assert!(text.contains("JOB COMPLETE"), "{text}");
        assert!(!text.contains("failure"), "{text}");
        // Progress collapsed, not one line per iteration per rank.
        assert!(text.lines().count() < 30, "{text}");
    }

    #[test]
    fn frozen_timeline_shows_the_bug_window() {
        let mut s = spec(2);
        s.injection = Some(
            InjectionSpec::new(FIG10_SRC, "ADV1", "ADVG1")
                .with_param("T", 2)
                .with_param("N", 5),
        );
        let (rec, cluster) = run_one_keeping_cluster(&s);
        assert!(rec.outcome.is_buggy());
        let text = render(&cluster, TimelineOptions::default());
        assert!(text.contains("** during recovery: the bug window **"), "{text}");
        assert!(text.contains("did not complete"), "{text}");
        assert!(!text.contains("JOB COMPLETE"), "{text}");
    }

    #[test]
    fn lifecycle_mode_shows_spawns() {
        let mut s = spec(3);
        s.injection = Some(
            InjectionSpec::new(FIG5_SRC, "ADV1", "ADVnodes")
                .with_param("X", 4)
                .with_param("N", 5),
        );
        let (_, cluster) = run_one_keeping_cluster(&s);
        let with = render(
            &cluster,
            TimelineOptions {
                collapse_progress: true,
                lifecycle: true,
            },
        );
        let without = render(&cluster, TimelineOptions::default());
        assert!(with.contains("spawn"), "{with}");
        assert!(with.lines().count() > without.lines().count());
    }
}
