//! The FAIL-MPI ↔ MPICH-Vcl binding: one simulation world running the
//! cluster under a FAIL scenario, exactly as Fig. 3 of the paper deploys
//! one FAIL-MPI daemon per machine plus a coordinator (`P1`).

use std::collections::{BTreeMap, HashMap, HashSet};
use std::hash::{DefaultHasher, Hash, Hasher};
use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use std::sync::Arc;
use std::sync::{Mutex, OnceLock};

use failmpi_analyze::{ModelCheckConfig, Report, StaticVerdict};
use failmpi_backend::{BackendConfig, BackendKind, ProtocolBackend};
use failmpi_core::{compile, Deployment, FailAction, FailInput, FailRuntime};
use failmpi_replica::ReplicaCluster;
use failmpi_ulfm::UlfmCluster;
use failmpi_net::{HostId, ProcId};
use failmpi_obs::{MetricsSnapshot, WallProfile};
use failmpi_sim::{
    CausalLog, Engine, Fingerprint, FingerprintEvent, JournalEntry, Model, RunOutcome, Scheduler,
    SimDuration, SimRng, SimTime, TieBreak, TraceEntry,
};
use failmpi_mpi::Program;
use failmpi_mpichv::{Cluster, Hook, InstrumentedFn, TrafficStats, VclConfig, VclEvent};
use failmpi_workloads::{bt_programs_noisy, BtClass};

/// What the cluster computes. FAIL-MPI is application-agnostic (its whole
/// point is decoupling the injector from the system under test), and so is
/// this harness: any per-rank op-program set can go under fire.
#[derive(Clone, Debug)]
pub enum Workload {
    /// The paper's NAS BT pattern, with per-run compute noise.
    Bt(BtClass),
    /// Caller-supplied per-rank programs (length must equal `n_ranks`).
    Fixed(Vec<Arc<Program>>),
}

impl Workload {
    /// Iterations/progress ceiling, where known (diagnostics).
    pub fn bt_class(&self) -> Option<&BtClass> {
        match self {
            Workload::Bt(c) => Some(c),
            Workload::Fixed(_) => None,
        }
    }
}

use crate::classify::{classify, classify_entries, Outcome};

/// How the harness treats static-analysis findings on a spec's scenario
/// (see `failmpi-analyze`): ignore them, print them once per distinct
/// source, or refuse to run scenarios with `Error`-level findings.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum LintMode {
    /// Skip the pre-run lint entirely.
    Off,
    /// Print findings to stderr (once per distinct scenario source) and
    /// run anyway — the default.
    #[default]
    Warn,
    /// Refuse to run a scenario with `Error`-level findings.
    Strict,
}

impl LintMode {
    /// Parses the `--lint` CLI value.
    pub fn parse(s: &str) -> Option<LintMode> {
        match s {
            "off" => Some(LintMode::Off),
            "warn" => Some(LintMode::Warn),
            "strict" => Some(LintMode::Strict),
            _ => None,
        }
    }
}

/// Process-wide default lint mode, picked up by [`InjectionSpec::new`].
/// The `--lint` flag (see [`crate::cli::Options`]) sets it before any spec
/// is built, so every figure binary inherits the gate without plumbing.
static DEFAULT_LINT: AtomicU8 = AtomicU8::new(1); // LintMode::Warn

/// Sets the process-wide default [`LintMode`] for new [`InjectionSpec`]s.
pub fn set_default_lint_mode(mode: LintMode) {
    let v = match mode {
        LintMode::Off => 0,
        LintMode::Warn => 1,
        LintMode::Strict => 2,
    };
    DEFAULT_LINT.store(v, Ordering::Relaxed);
}

/// The current process-wide default [`LintMode`].
pub fn default_lint_mode() -> LintMode {
    match DEFAULT_LINT.load(Ordering::Relaxed) {
        0 => LintMode::Off,
        2 => LintMode::Strict,
        _ => LintMode::Warn,
    }
}

/// Process-wide default for [`InjectionSpec::expect_freeze`], set by the
/// `--expect-freeze` CLI flag (see [`crate::cli::Options`]).
static DEFAULT_EXPECT_FREEZE: AtomicBool = AtomicBool::new(false);

/// Declares (process-wide) that sweeps are *hunting* freezes: the strict
/// lint gate will run scenarios the model checker statically classifies
/// as freezing instead of refusing them.
pub fn set_default_expect_freeze(expect: bool) {
    DEFAULT_EXPECT_FREEZE.store(expect, Ordering::Relaxed);
}

/// The current process-wide default for [`InjectionSpec::expect_freeze`].
pub fn default_expect_freeze() -> bool {
    DEFAULT_EXPECT_FREEZE.load(Ordering::Relaxed)
}

/// Process-wide default protocol backend, set by the `--backend` CLI flag
/// (see [`crate::cli::Options`]) before any spec is built, so every figure
/// binary inherits it without plumbing.
static DEFAULT_BACKEND: AtomicU8 = AtomicU8::new(0); // BackendKind::Vcl

/// Sets the process-wide default [`BackendKind`] for new specs.
pub fn set_default_backend(kind: BackendKind) {
    let v = match kind {
        BackendKind::Vcl => 0,
        BackendKind::Ulfm => 1,
        BackendKind::Replica => 2,
    };
    DEFAULT_BACKEND.store(v, Ordering::Relaxed);
}

/// The current process-wide default [`BackendKind`].
pub fn default_backend() -> BackendKind {
    match DEFAULT_BACKEND.load(Ordering::Relaxed) {
        1 => BackendKind::Ulfm,
        2 => BackendKind::Replica,
        _ => BackendKind::Vcl,
    }
}

/// How a FAIL scenario is attached to the cluster.
#[derive(Clone, Debug)]
pub struct InjectionSpec {
    /// FAIL source text (see `failmpi-core/scenarios/*.fail`).
    pub scenario_src: String,
    /// Daemon class of the central coordinator instance `P1`.
    pub adversary_class: String,
    /// Daemon class controlling each compute machine (`G1` members).
    pub machine_class: String,
    /// Parameter overrides (the paper's `X`, `N`, `T`).
    pub params: Vec<(String, i64)>,
    /// Base latency of FAIL messages between daemons.
    pub fail_latency: SimDuration,
    /// Upper bound of the uniform extra latency per FAIL message. This
    /// jitter decides the fault-vs-registration race behind the partial
    /// bugginess of Fig. 9.
    pub fail_jitter_max: SimDuration,
    /// Pre-run static-analysis gating for this scenario.
    pub lint: LintMode,
    /// Whether a statically-predicted freeze is the *point* of this sweep
    /// (Fig. 10/11 reproductions). Under [`LintMode::Strict`] the gate
    /// refuses scenarios the model checker classifies as freezing unless
    /// this is set — a sweep that can only ever time out burns its whole
    /// budget confirming the prediction.
    pub expect_freeze: bool,
    /// Protocol backend the scenario's pre-run model check runs against
    /// (the runtime backend is [`ExperimentSpec::backend`]; the two are
    /// stamped from the same process-wide default).
    pub backend: BackendKind,
}

impl InjectionSpec {
    /// Standard transport parameters for a scenario with the given classes.
    pub fn new(src: &str, adversary: &str, machine: &str) -> Self {
        InjectionSpec {
            scenario_src: src.to_string(),
            adversary_class: adversary.to_string(),
            machine_class: machine.to_string(),
            params: Vec::new(),
            fail_latency: SimDuration::from_millis(4),
            fail_jitter_max: SimDuration::from_millis(7),
            lint: default_lint_mode(),
            expect_freeze: default_expect_freeze(),
            backend: default_backend(),
        }
    }

    /// Adds a parameter override.
    pub fn with_param(mut self, name: &str, value: i64) -> Self {
        self.params.push((name.to_string(), value));
        self
    }

    /// Overrides the lint mode for this spec.
    pub fn with_lint(mut self, lint: LintMode) -> Self {
        self.lint = lint;
        self
    }

    /// Marks the spec as deliberately freeze-hunting (see
    /// [`InjectionSpec::expect_freeze`]).
    pub fn with_expect_freeze(mut self, expect: bool) -> Self {
        self.expect_freeze = expect;
        self
    }
}

/// Lints `inj`'s scenario per its [`LintMode`]. `Err` carries the report
/// when strict mode forbids the run; warn mode prints findings to stderr
/// once per distinct scenario source and lets the run proceed.
pub fn lint_injection(inj: &InjectionSpec) -> Result<(), Report> {
    if inj.lint == LintMode::Off {
        return Ok(());
    }
    let mut diags = failmpi_analyze::check_source(&inj.scenario_src);
    // Strict mode additionally model-checks the scenario: a sweep whose
    // every run is statically known to freeze can only burn its timeout
    // budget, so the gate refuses it unless the spec opts in with
    // `expect_freeze` (the Fig. 10/11 reproductions do).
    if inj.lint == LintMode::Strict && !inj.expect_freeze {
        let r = cached_model_check(inj);
        if r.summary.verdict == StaticVerdict::Freezes {
            // FC003 is Error-level: folding it in makes the strict check
            // below refuse the run.
            diags.extend(r.diagnostics);
        }
    }
    if diags.is_empty() {
        return Ok(());
    }
    let report = Report::new("injection scenario", diags);
    if inj.lint == LintMode::Strict && report.has_errors() {
        return Err(report);
    }
    warn_once(&report, &inj.scenario_src);
    Ok(())
}

/// Model-checks a spec's scenario, memoized per (source, params) — sweeps
/// rerun the same spec thousands of times and the exploration, while
/// fast, is not free.
fn cached_model_check(inj: &InjectionSpec) -> failmpi_analyze::ModelCheckResult {
    static CACHE: OnceLock<Mutex<HashMap<u64, failmpi_analyze::ModelCheckResult>>> =
        OnceLock::new();
    let mut h = DefaultHasher::new();
    inj.scenario_src.hash(&mut h);
    inj.params.hash(&mut h);
    inj.backend.name().hash(&mut h);
    let key = h.finish();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    {
        let guard = cache.lock().expect("model-check cache lock");
        if let Some(r) = guard.get(&key) {
            return r.clone();
        }
    }
    // Compute outside the lock: explorations can take tens of ms.
    let cfg = ModelCheckConfig {
        params: inj.params.clone(),
        backend: inj.backend,
        ..ModelCheckConfig::default()
    };
    let r = failmpi_analyze::model_check_source(&inj.scenario_src, &cfg);
    let mut guard = cache.lock().expect("model-check cache lock");
    guard.entry(key).or_insert(r).clone()
}

/// Prints the report to stderr the first time this scenario source shows
/// up in the process (sweeps rerun the same spec thousands of times).
fn warn_once(report: &Report, src: &str) {
    static SEEN: OnceLock<Mutex<HashSet<u64>>> = OnceLock::new();
    let mut h = DefaultHasher::new();
    src.hash(&mut h);
    let key = h.finish();
    let seen = SEEN.get_or_init(|| Mutex::new(HashSet::new()));
    if seen.lock().expect("lint dedup lock").insert(key) {
        eprint!(
            "warning: scenario has static-analysis findings \
             (run `failck` for details, `--lint off` to silence):\n{}",
            report.render_human()
        );
    }
}

/// One experiment: a cluster, a workload, an optional scenario, a seed.
#[derive(Clone, Debug)]
pub struct ExperimentSpec {
    /// Cluster configuration.
    pub cluster: VclConfig,
    /// The application under test (ranks come from `cluster.n_ranks`).
    pub workload: Workload,
    /// Fault scenario, if any.
    pub injection: Option<InjectionSpec>,
    /// The paper's experiment timeout (1500 s).
    pub timeout: SimTime,
    /// Silence threshold for the frozen-vs-stalled classification
    /// ([`crate::classify::FREEZE_WINDOW`] at paper scale; scale it down
    /// with the timeout for miniatures).
    pub freeze_window: SimDuration,
    /// Experiment seed.
    pub seed: u64,
    /// How the engine orders same-instant events. [`TieBreak::Fifo`] is
    /// the canonical schedule; [`TieBreak::Seeded`] perturbs it for the
    /// schedule-robustness sweeps (see `failmpi-testkit`).
    pub tie_break: TieBreak,
    /// Which protocol backend executes the workload. [`BackendKind::Vcl`]
    /// is the paper's MPICH-V runtime; the others run the same workload,
    /// scenario, timeout and classification against the ULFM
    /// shrink-and-continue or replication-failover runtimes.
    pub backend: BackendKind,
}

impl ExperimentSpec {
    /// A fault-free paper-scale run.
    pub fn fault_free(n_ranks: u32, class: BtClass, seed: u64) -> Self {
        let cluster = VclConfig {
            n_ranks,
            n_compute_hosts: n_ranks as usize + 4,
            ..VclConfig::default()
        };
        ExperimentSpec {
            cluster,
            workload: Workload::Bt(class),
            injection: None,
            timeout: SimTime::from_secs(1500),
            freeze_window: crate::classify::FREEZE_WINDOW,
            seed,
            tie_break: TieBreak::Fifo,
            backend: default_backend(),
        }
    }

    /// The same experiment under a perturbed same-instant event order.
    pub fn with_tie_break(mut self, tie_break: TieBreak) -> Self {
        self.tie_break = tie_break;
        self
    }

    /// The same experiment on a different protocol backend (also re-tags
    /// the injection spec so its pre-run model check matches).
    pub fn with_backend(mut self, backend: BackendKind) -> Self {
        self.backend = backend;
        if let Some(inj) = self.injection.as_mut() {
            inj.backend = backend;
        }
        self
    }
}

/// What happened in one run.
#[derive(Clone, Debug)]
pub struct RunRecord {
    /// Classified outcome.
    pub outcome: Outcome,
    /// Virtual instant the run ended (completion or timeout).
    pub end: SimTime,
    /// Faults actually injected (FAIL `halt` actions applied).
    pub faults_injected: u32,
    /// Recoveries the dispatcher started.
    pub recoveries: usize,
    /// Checkpoint waves committed.
    pub waves_committed: usize,
    /// Highest application iteration reached by any rank.
    pub max_progress: u32,
    /// Bytes sent, by traffic class (protocol-overhead accounting).
    pub traffic: TrafficStats,
    /// Streaming schedule fingerprint of the run (see
    /// [`failmpi_sim::Fingerprint`]); equal-seed equal-tie-break runs must
    /// reproduce it bit-for-bit.
    pub fingerprint: u64,
    /// Events the engine handled (a cheap secondary determinism signal).
    pub events: u64,
    /// Full deterministic metric snapshot of the run: `mpichv.*` lifecycle
    /// counters and virtual-time histograms, `mpi.*` op counts, `net.*`
    /// channel counters, `sim.*` engine counters, `harness.*` injection
    /// counts. Same-seed same-tie-break runs must reproduce it
    /// byte-for-byte (`MetricsSnapshot::to_json`).
    pub metrics: MetricsSnapshot,
}

enum WEv<E> {
    C(E),
    FailTimer { instance: usize, timer: usize, gen: u64 },
    FailMsg { from: usize, to: usize, msg: usize },
}

/// Host-readable application state exposed as FAIL `probe` variables — the
/// paper's Sec. 6 planned feature ("the FAIL language and FAIL-MPI tool
/// should be able to read … internal variables of the stressed
/// application"). Scenarios declare `probe <name>;` and react with
/// `onchange(<name>)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ProbeKind {
    /// `probe committed_wave;` — the last globally committed wave.
    CommittedWave,
    /// `probe epoch;` — the current execution epoch (recoveries so far).
    Epoch,
}

impl ProbeKind {
    fn of_name(name: &str) -> Option<ProbeKind> {
        match name {
            "committed_wave" => Some(ProbeKind::CommittedWave),
            "epoch" => Some(ProbeKind::Epoch),
            _ => None,
        }
    }
}

struct FailSide {
    rt: FailRuntime,
    rng: SimRng,
    latency: SimDuration,
    jitter_max: SimDuration,
    host_instance: BTreeMap<HostId, usize>,
    halts: u32,
    /// `(instance, var slot, kind, last pushed value)` per declared probe.
    probes: Vec<(usize, usize, ProbeKind, i64)>,
}

/// One simulation world: any [`ProtocolBackend`] under an optional FAIL
/// deployment. The harness's binding logic — action application, hook and
/// probe pumping, fingerprinting — is backend-generic; only construction
/// and the Vcl-specific instrumentation paths below are concrete.
struct World<C: ProtocolBackend> {
    cluster: C,
    fail: Option<FailSide>,
}

fn func_name(f: InstrumentedFn) -> &'static str {
    match f {
        InstrumentedFn::LocalMpiSetCommand => "localMPI_setCommand",
    }
}

fn func_of_name(name: &str) -> Option<InstrumentedFn> {
    match name {
        "localMPI_setCommand" => Some(InstrumentedFn::LocalMpiSetCommand),
        _ => None,
    }
}

impl<C: ProtocolBackend> World<C> {
    fn apply(
        &mut self,
        now: SimTime,
        actions: Vec<FailAction>,
        sched: &mut Scheduler<WEv<C::Event>>,
    ) {
        let Some(fail) = self.fail.as_mut() else {
            return;
        };
        for a in actions {
            match a {
                FailAction::SendMsg { from, to, msg } => {
                    let jitter = SimDuration::from_micros(
                        fail.rng.below(fail.jitter_max.as_micros().max(1)),
                    );
                    sched.at(
                        now + fail.latency + jitter,
                        WEv::FailMsg { from, to, msg },
                    );
                }
                FailAction::ArmTimer {
                    instance,
                    timer,
                    gen,
                    delay,
                } => {
                    sched.at(now + delay, WEv::FailTimer { instance, timer, gen });
                }
                FailAction::Halt { proc } => {
                    fail.halts += 1;
                    self.cluster.fail_halt(now, ProcId(proc as u32));
                }
                FailAction::Stop { proc } => {
                    self.cluster.fail_stop(now, ProcId(proc as u32));
                }
                FailAction::Continue { proc } | FailAction::ReleaseBreakpoint { proc } => {
                    self.cluster.fail_continue(now, ProcId(proc as u32));
                }
                FailAction::ArmBreakpoint { proc, func } => {
                    if let Some(f) = func_of_name(&func) {
                        self.cluster.arm_breakpoint(ProcId(proc as u32), f);
                    }
                }
                FailAction::DisarmBreakpoints { proc } => {
                    self.cluster.clear_breakpoints(ProcId(proc as u32));
                }
            }
        }
    }

    /// Pushes application-state probes into the FAIL runtime when the
    /// observed values changed.
    fn pump_probes(&mut self, now: SimTime, sched: &mut Scheduler<WEv<C::Event>>) {
        let Some(fail) = self.fail.as_mut() else {
            return;
        };
        if fail.probes.is_empty() {
            return;
        }
        let committed = self.cluster.committed_wave().map_or(0, |w| w as i64);
        let epoch = self.cluster.epoch() as i64;
        let mut fired = Vec::new();
        for (instance, slot, kind, last) in fail.probes.iter_mut() {
            let value = match kind {
                ProbeKind::CommittedWave => committed,
                ProbeKind::Epoch => epoch,
            };
            if value != *last {
                *last = value;
                fired.push(FailInput::Probe {
                    instance: *instance,
                    probe: *slot,
                    value,
                });
            }
        }
        for input in fired {
            let fail = self.fail.as_mut().expect("checked");
            let acts = fail.rt.feed(input, &mut fail.rng);
            self.apply(now, acts, sched);
        }
    }

    /// Converts cluster hooks into FAIL inputs until quiescent.
    fn pump_hooks(&mut self, now: SimTime, sched: &mut Scheduler<WEv<C::Event>>) {
        loop {
            let hooks = self.cluster.take_hooks();
            if hooks.is_empty() {
                return;
            }
            for h in hooks {
                let Some(fail) = self.fail.as_mut() else {
                    continue;
                };
                let input = match h {
                    Hook::OnLoad { host, proc } => fail
                        .host_instance
                        .get(&host)
                        .map(|&i| FailInput::OnLoad {
                            instance: i,
                            proc: proc.0 as u64,
                        }),
                    Hook::OnExit { host, proc } => fail
                        .host_instance
                        .get(&host)
                        .map(|&i| FailInput::OnExit {
                            instance: i,
                            proc: proc.0 as u64,
                        }),
                    Hook::OnError { host, proc } => fail
                        .host_instance
                        .get(&host)
                        .map(|&i| FailInput::OnError {
                            instance: i,
                            proc: proc.0 as u64,
                        }),
                    Hook::Breakpoint { host, proc, func } => fail
                        .host_instance
                        .get(&host)
                        .map(|&i| FailInput::Breakpoint {
                            instance: i,
                            proc: proc.0 as u64,
                            func: func_name(func).to_string(),
                        }),
                };
                if let Some(input) = input {
                    let acts = fail.rt.feed(input, &mut fail.rng);
                    self.apply(now, acts, sched);
                }
            }
        }
    }
}

impl<C: ProtocolBackend> Model for World<C> {
    type Event = WEv<C::Event>;

    fn handle(
        &mut self,
        now: SimTime,
        ev: WEv<C::Event>,
        sched: &mut Scheduler<WEv<C::Event>>,
    ) {
        self.cluster.set_event_cause(sched.current_event());
        match ev {
            WEv::C(e) => self.cluster.dispatch(now, e),
            WEv::FailTimer {
                instance,
                timer,
                gen,
            } => {
                if let Some(fail) = self.fail.as_mut() {
                    let acts = fail.rt.feed(
                        FailInput::Timer {
                            instance,
                            timer,
                            gen,
                        },
                        &mut fail.rng,
                    );
                    self.apply(now, acts, sched);
                }
            }
            WEv::FailMsg { from, to, msg } => {
                if let Some(fail) = self.fail.as_mut() {
                    let acts = fail.rt.feed(FailInput::Msg { from, to, msg }, &mut fail.rng);
                    self.apply(now, acts, sched);
                }
            }
        }
        self.pump_hooks(now, sched);
        self.pump_probes(now, sched);
        for (t, e) in self.cluster.take_outputs() {
            sched.at(t, WEv::C(e));
        }
    }

    fn finished(&self) -> bool {
        self.cluster.is_complete()
    }

    fn fingerprint_event(&self, event: &WEv<C::Event>, fp: &mut Fingerprint) {
        match event {
            WEv::C(e) => {
                fp.write_u8(1);
                e.fold(fp);
            }
            WEv::FailTimer {
                instance,
                timer,
                gen,
            } => {
                fp.write_u8(2);
                fp.write_u64(*instance as u64);
                fp.write_u64(*timer as u64);
                fp.write_u64(*gen);
            }
            WEv::FailMsg { from, to, msg } => {
                fp.write_u8(3);
                fp.write_u64(*from as u64);
                fp.write_u64(*to as u64);
                fp.write_u64(*msg as u64);
            }
        }
    }

    fn describe_event(&self, event: &WEv<C::Event>) -> String {
        match event {
            WEv::C(e) => self.cluster.describe_event(e),
            WEv::FailTimer {
                instance, timer, ..
            } => format!("fail-timer i{instance} t{timer}"),
            WEv::FailMsg { from, to, msg } => format!("fail-msg {from}->{to} m{msg}"),
        }
    }

    fn event_kind(&self, event: &WEv<C::Event>) -> &'static str {
        match event {
            WEv::C(e) => self.cluster.event_kind(e),
            WEv::FailTimer { .. } => "fail_timer",
            WEv::FailMsg { .. } => "fail_msg",
        }
    }

    fn event_track(&self, event: &WEv<C::Event>) -> u32 {
        match event {
            WEv::C(e) => self.cluster.event_track(e),
            // The FAIL-MPI injection side gets its own lane, after every
            // cluster lane.
            WEv::FailTimer { .. } | WEv::FailMsg { .. } => self.cluster.n_tracks(),
        }
    }
}

/// Track names for the harness world: the backend's lanes plus the
/// FAIL-MPI injection lane (matching [`Model::event_track`] on the world).
pub fn world_track_names<C: ProtocolBackend>(cluster: &C) -> Vec<String> {
    let mut names = cluster.track_names();
    names.push("fail-mpi".to_string());
    names
}

/// Relative compute noise baked into every experiment workload (models OS
/// and cache jitter of real compute phases; see `bt_programs_noisy`).
pub const COMPUTE_NOISE: f64 = 0.03;

/// Builds per-rank programs for the spec's workload (seeded compute noise
/// for BT; fixed programs verbatim).
pub fn programs_for(spec: &ExperimentSpec) -> Vec<Arc<Program>> {
    match &spec.workload {
        Workload::Bt(class) => {
            bt_programs_noisy(class, spec.cluster.n_ranks, spec.seed, COMPUTE_NOISE)
        }
        Workload::Fixed(programs) => programs.clone(),
    }
}

/// Runs one experiment to completion or timeout and classifies it,
/// dispatching on [`ExperimentSpec::backend`].
///
/// Panics when the spec's scenario fails its [`LintMode::Strict`] gate;
/// use [`try_run_one`] for a non-panicking strict check.
pub fn run_one(spec: &ExperimentSpec) -> RunRecord {
    run_one_with_trace(spec).0
}

/// Like [`run_one`], additionally returning the run's lifecycle trace in
/// the shared [`VclEvent`] vocabulary — the classifier's input, available
/// for every backend (empty when `record_trace` is off). The conformance
/// suite recounts metrics from it without needing the backend-specific
/// cluster back.
pub fn run_one_with_trace(spec: &ExperimentSpec) -> (RunRecord, Vec<TraceEntry<VclEvent>>) {
    match spec.backend {
        BackendKind::Vcl => {
            let (record, cluster) = run_one_keeping_cluster(spec);
            let entries = cluster.trace().entries().to_vec();
            (record, entries)
        }
        BackendKind::Ulfm => {
            let (cfg, ops) = backend_runtime_inputs(spec);
            run_backend(spec, UlfmCluster::new(cfg, ops, spec.seed))
        }
        BackendKind::Replica => {
            let (cfg, ops) = backend_runtime_inputs(spec);
            run_backend(spec, ReplicaCluster::new(cfg, ops, spec.seed))
        }
    }
}

/// Derives the generic backends' runtime inputs from a spec. The
/// [`BackendConfig`] timing surface maps the Vcl deployment constants
/// (ssh spawn/stagger, init handshake, closure detection); each rank's op
/// count is its program's progress-marker count — the same iterations the
/// Vcl interpreter reports as `AppProgress` — and the per-op duration is
/// the fleet-wide mean compute time between markers, so faults and probes
/// land mid-run at the same virtual scale as under Vcl. Communication
/// time is not replayed op-by-op (see DESIGN.md, "Protocol backends").
fn backend_runtime_inputs(spec: &ExperimentSpec) -> (BackendConfig, Vec<u32>) {
    let programs = programs_for(spec);
    let ops: Vec<u32> = programs
        .iter()
        .map(|p| {
            let marks = p
                .ops()
                .iter()
                .filter(|o| matches!(o, failmpi_mpi::Op::Progress(_)))
                .count();
            marks.max(1) as u32
        })
        .collect();
    let total_ops: u64 = ops.iter().map(|&o| u64::from(o)).sum();
    let compute_micros: u64 = programs
        .iter()
        .flat_map(|p| p.ops().iter())
        .filter_map(|o| match o {
            failmpi_mpi::Op::Compute(d) => Some(d.as_micros()),
            _ => None,
        })
        .sum();
    let op_delay = if compute_micros == 0 {
        SimDuration::from_millis(500)
    } else {
        SimDuration::from_micros((compute_micros / total_ops.max(1)).max(1_000))
    };
    let c = &spec.cluster;
    let cfg = BackendConfig {
        n_ranks: c.n_ranks,
        n_compute_hosts: c.n_compute_hosts,
        boot_delay: c.ssh_spawn_delay,
        boot_stagger: c.ssh_stagger,
        init_delay: c.init_delay_max,
        detect_delay: c.terminate_delay,
        round_delay: c.terminate_delay,
        op_delay,
        record_trace: c.record_trace,
    };
    (cfg, ops)
}

/// Runs a constructed non-Vcl backend under the spec's scenario, timeout
/// and classification, producing the same [`RunRecord`] surface as the
/// Vcl path. The Vcl-only instrumentation modes (trace sink, fingerprint
/// journal, wall profile, causal export) do not apply here.
fn run_backend<C: ProtocolBackend>(
    spec: &ExperimentSpec,
    cluster: C,
) -> (RunRecord, Vec<TraceEntry<VclEvent>>) {
    let fail = spec.injection.as_ref().map(|inj| {
        let hosts: Vec<HostId> = (0..cluster.n_compute_hosts())
            .map(|i| cluster.compute_host(i))
            .collect();
        build_fail_side(inj, spec.seed, &hosts)
    });
    let mut engine = Engine::with_tie_break(World { cluster, fail }, spec.tie_break);
    // Deep profiling covers the whole schedule, including the boot
    // events pushed below, so the context opens before the first push.
    let deep_profile = crate::profsink::armed();
    if deep_profile {
        failmpi_obs::prof::start_run(spec.backend.name());
    }
    for (t, e) in engine.model_mut().cluster.take_outputs() {
        engine.schedule(t, WEv::C(e));
    }
    if engine.model().fail.is_some() {
        let start_actions = {
            let fail = engine.model_mut().fail.as_mut().expect("checked");
            fail.rt.start(&mut fail.rng)
        };
        for a in start_actions {
            match a {
                FailAction::ArmTimer {
                    instance,
                    timer,
                    gen,
                    delay,
                } => engine.schedule(
                    SimTime::ZERO + delay,
                    WEv::FailTimer {
                        instance,
                        timer,
                        gen,
                    },
                ),
                FailAction::SendMsg { from, to, msg } => {
                    engine.schedule(SimTime::ZERO, WEv::FailMsg { from, to, msg })
                }
                other => panic!("unexpected start action {other:?}"),
            }
        }
    }

    let engine_outcome = engine.run(spec.timeout);
    if deep_profile {
        if let Some(p) = failmpi_obs::prof::finish_run() {
            crate::profsink::submit(p);
        }
    }
    let end = engine.now();
    let fingerprint = engine.fingerprint();
    let events = engine.events_handled();
    let queue_hwm = engine.queue_depth_hwm();
    let world = engine.into_model();
    let outcome = classify_entries(
        world.cluster.trace().entries(),
        world.cluster.is_complete(),
        engine_outcome,
        end,
        spec.timeout,
        spec.freeze_window,
    );
    let faults_injected = world.fail.as_ref().map_or(0, |f| f.halts);

    let mut metrics = MetricsSnapshot::new();
    metrics.set_backend(spec.backend.name());
    world.cluster.contribute_metrics(&mut metrics);
    metrics.set_counter("sim.events_handled", events);
    metrics.set_counter("sim.queue_depth_hwm", queue_hwm as u64);
    metrics.set_counter("sim.end_micros", end.as_micros());
    metrics.set_counter("harness.faults_injected", u64::from(faults_injected));
    crate::metrics::submit(&metrics);

    let record = RunRecord {
        outcome,
        end,
        faults_injected,
        recoveries: world.cluster.recoveries_started() as usize,
        waves_committed: world.cluster.waves_committed() as usize,
        max_progress: world.cluster.max_progress(),
        traffic: world.cluster.traffic(),
        fingerprint,
        events,
        metrics,
    };
    (record, world.cluster.trace().entries().to_vec())
}

/// Like [`run_one`], but lints the scenario at strict severity first
/// (whatever the spec's own [`LintMode`]) and returns the report instead
/// of running when it has `Error`-level findings.
pub fn try_run_one(spec: &ExperimentSpec) -> Result<RunRecord, Report> {
    if let Some(inj) = &spec.injection {
        let strict = InjectionSpec {
            lint: LintMode::Strict,
            ..inj.clone()
        };
        lint_injection(&strict)?;
    }
    Ok(run_one(spec))
}

/// Like [`run_one`], additionally returning the final cluster state (for
/// trace validation and post-mortem inspection).
pub fn run_one_keeping_cluster(spec: &ExperimentSpec) -> (RunRecord, Cluster) {
    let (record, cluster, _) = run_one_instrumented(spec, false);
    (record, cluster)
}

/// The fully instrumented run: like [`run_one_keeping_cluster`], but with
/// optional per-event fingerprint-journal capture (the expensive mode the
/// determinism harness only pays for after a mismatch).
pub fn run_one_instrumented(
    spec: &ExperimentSpec,
    capture_journal: bool,
) -> (RunRecord, Cluster, Option<Vec<JournalEntry>>) {
    let out = run_inner(spec, capture_journal, false, false);
    (out.record, out.cluster, out.journal)
}

/// Like [`run_one`], with the engine's wall-clock handler profiling on:
/// additionally returns per-event-kind simulator self-times. Used by
/// `bench-report`; the profile is wall-clock data and must never be mixed
/// into the deterministic [`RunRecord::metrics`] snapshot.
pub fn run_one_profiled(spec: &ExperimentSpec) -> (RunRecord, WallProfile) {
    let out = run_inner(spec, false, true, false);
    (out.record, out.profile)
}

/// A run with the engine's happens-before log captured.
pub struct TracedRun {
    /// The classified run.
    pub record: RunRecord,
    /// Final cluster state (semantic [`failmpi_mpichv::VclEvent`] trace,
    /// cause-anchored into the causal log).
    pub cluster: Cluster,
    /// The happens-before DAG over every handled engine event.
    pub causal: CausalLog,
    /// Track names matching the causal nodes' track indices.
    pub track_names: Vec<String>,
}

/// Like [`run_one_keeping_cluster`], with causal (happens-before) tracing
/// on: every engine event records the event that scheduled it, and every
/// [`failmpi_mpichv::VclEvent`] records the engine event it was emitted
/// under. The input to `failmpi-trace` exports and explanations.
pub fn run_one_traced(spec: &ExperimentSpec) -> TracedRun {
    let out = run_inner(spec, false, false, true);
    let track_names = world_track_names(&out.cluster);
    TracedRun {
        record: out.record,
        cluster: out.cluster,
        causal: out.causal,
        track_names,
    }
}

/// Builds the FAIL deployment of Fig. 3 — the coordinator `P1` plus one
/// controller per compute machine (`G1`) — against any backend's host
/// roster, and wires up every declared probe the harness knows how to
/// feed. Panics when the scenario fails its lint gate or does not deploy.
fn build_fail_side(inj: &InjectionSpec, seed: u64, compute_hosts: &[HostId]) -> FailSide {
    if let Err(report) = lint_injection(inj) {
        panic!(
            "refusing to run: scenario fails the strict lint gate \
             (see failmpi-analyze):\n{}",
            report.render_human()
        );
    }
    let scenario = compile(&inj.scenario_src).expect("scenario in spec must compile");
    let mut deployment = Deployment::new();
    deployment
        .add_instance("P1", &inj.adversary_class)
        .expect("fresh deployment");
    let mut members = Vec::new();
    let mut host_instance = BTreeMap::new();
    for (i, host) in compute_hosts.iter().enumerate() {
        let idx = deployment
            .add_instance(&format!("G1[{i}]"), &inj.machine_class)
            .expect("fresh deployment");
        members.push(idx);
        host_instance.insert(*host, idx);
    }
    deployment.add_group("G1", members).expect("fresh group");
    let params: Vec<(&str, i64)> =
        inj.params.iter().map(|(n, v)| (n.as_str(), *v)).collect();
    let rt = FailRuntime::new(&scenario, deployment, &params).expect("scenario deploys");
    let mut probes = Vec::new();
    for instance in 0..rt.len() {
        for kind_name in ["committed_wave", "epoch"] {
            if let Some(slot) = rt.probe_slot(instance, kind_name) {
                let kind = ProbeKind::of_name(kind_name).expect("known name");
                probes.push((instance, slot, kind, 0i64));
            }
        }
    }
    FailSide {
        rt,
        rng: SimRng::new(seed).derive(0xFA11),
        latency: inj.fail_latency,
        jitter_max: inj.fail_jitter_max,
        host_instance,
        halts: 0,
        probes,
    }
}

struct InnerRun {
    record: RunRecord,
    cluster: Cluster,
    journal: Option<Vec<JournalEntry>>,
    profile: WallProfile,
    causal: CausalLog,
}

fn run_inner(spec: &ExperimentSpec, capture_journal: bool, profile: bool, causal: bool) -> InnerRun {
    assert_eq!(
        spec.backend,
        BackendKind::Vcl,
        "the instrumented run paths (keeping-cluster/journal/profile/causal) \
         are Vcl-only; route other backends through run_one"
    );
    // The `--trace-out` sink claims exactly one run per invocation; the
    // claimed run pays for causal tracing, every other run keeps the
    // zero-overhead disabled path (see `crate::tracesink`).
    let trace_claimed = crate::tracesink::claim();
    let causal = causal || trace_claimed;
    let programs = programs_for(spec);
    let cluster = Cluster::new(spec.cluster.clone(), programs, spec.seed);

    let fail = spec.injection.as_ref().map(|inj| {
        let hosts: Vec<HostId> = (0..cluster.n_compute_hosts())
            .map(|i| cluster.compute_host(i))
            .collect();
        build_fail_side(inj, spec.seed, &hosts)
    });

    let mut engine = Engine::with_tie_break(World { cluster, fail }, spec.tie_break);
    if capture_journal {
        engine.enable_fingerprint_journal();
    }
    if profile {
        engine.enable_profiling();
    }
    if causal {
        engine.enable_causal_trace();
    }
    // Deep profiling covers the whole schedule, including the boot
    // events pushed below, so the context opens before the first push.
    let deep_profile = crate::profsink::armed();
    if deep_profile {
        failmpi_obs::prof::start_run(spec.backend.name());
    }
    // Initial cluster events.
    for (t, e) in engine.model_mut().cluster.take_outputs() {
        engine.schedule(t, WEv::C(e));
    }
    // Initial FAIL actions (timer arming at t = 0).
    if engine.model().fail.is_some() {
        let start_actions = {
            let fail = engine.model_mut().fail.as_mut().expect("checked");
            fail.rt.start(&mut fail.rng)
        };
        for a in start_actions {
            match a {
                FailAction::ArmTimer {
                    instance,
                    timer,
                    gen,
                    delay,
                } => engine.schedule(
                    SimTime::ZERO + delay,
                    WEv::FailTimer {
                        instance,
                        timer,
                        gen,
                    },
                ),
                FailAction::SendMsg { from, to, msg } => {
                    engine.schedule(SimTime::ZERO, WEv::FailMsg { from, to, msg })
                }
                other => panic!("unexpected start action {other:?}"),
            }
        }
    }

    let engine_outcome = engine.run(spec.timeout);
    if deep_profile {
        if let Some(p) = failmpi_obs::prof::finish_run() {
            crate::profsink::submit(p);
        }
    }
    let end = engine.now();
    let fingerprint = engine.fingerprint();
    let events = engine.events_handled();
    let queue_hwm = engine.queue_depth_hwm();
    let wall_profile = engine.profile().clone();
    let journal = capture_journal.then(|| engine.take_fingerprint_journal());
    let causal_log = engine.take_causal_log();
    let world = engine.into_model();
    let outcome = classify(
        &world.cluster,
        engine_outcome,
        end,
        spec.timeout,
        spec.freeze_window,
    );
    // Run summary counts come from the cluster's metrics registry rather
    // than the trace, so they survive `record_trace = false`.
    let cm = world.cluster.metrics();
    let recoveries = cm.recoveries_started.get() as usize;
    let waves_committed = cm.waves_committed.get() as usize;
    let max_progress = cm.max_progress;
    let faults_injected = world.fail.as_ref().map_or(0, |f| f.halts);

    let mut metrics = MetricsSnapshot::new();
    metrics.set_backend(spec.backend.name());
    world.cluster.contribute_metrics(&mut metrics);
    metrics.set_counter("sim.events_handled", events);
    metrics.set_counter("sim.queue_depth_hwm", queue_hwm as u64);
    metrics.set_counter("sim.end_micros", end.as_micros());
    metrics.set_counter("harness.faults_injected", u64::from(faults_injected));
    crate::metrics::submit(&metrics);

    let record = RunRecord {
        outcome,
        end,
        faults_injected,
        recoveries,
        waves_committed,
        max_progress,
        traffic: world.cluster.traffic(),
        fingerprint,
        events,
        metrics,
    };
    if trace_claimed {
        crate::tracesink::submit(crate::tracesink::build_trace_file(
            &format!("seed-{}", spec.seed),
            spec.seed,
            &record.outcome,
            end.as_micros(),
            &world.cluster,
            &causal_log,
            &world_track_names(&world.cluster),
        ));
    }
    InnerRun {
        record,
        cluster: world.cluster,
        journal,
        profile: wall_profile,
        causal: causal_log,
    }
}

/// The engine outcome of a run (exposed for tests that need raw outcomes).
pub type EngineOutcome = RunOutcome;
