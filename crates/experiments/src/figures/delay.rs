//! Beyond the paper: the delay-after-checkpoint experiment its Sec. 6
//! wanted to run.
//!
//! The paper attributes Fig. 6's "apparently chaotic" faulty times to the
//! phase of each fault relative to the last checkpoint wave, and proposes
//! to "precisely measure the date of failure injection as compared to the
//! date of the last checkpoint wave, and measure the impact of this delay
//! on the total execution time" — blocked then on reading the strained
//! program's variables, "a planned feature of FAIL-MPI".
//!
//! This reproduction implements that feature (`probe` variables +
//! `onchange` triggers; see `failmpi-core`) and runs the experiment: one
//! fault injected exactly D seconds after the first wave commit, D swept
//! across the checkpoint period. The expected signal — execution time
//! rising linearly with D (work since the snapshot is lost) and collapsing
//! once D crosses the next commit — is precisely the mechanism behind the
//! paper's Fig. 5 resonance and Fig. 6 variance.

use serde::Serialize;

use failmpi_mpichv::DispatcherMode;
use failmpi_workloads::BtClass;

use super::{cluster_config, fmt_time, spec, DELAY_SRC};
use crate::harness::InjectionSpec;
use crate::stats::PointSummary;
use crate::sweep::{run_all, seeded};

/// Sweep parameters.
#[derive(Clone, Debug)]
pub struct Config {
    /// Workload class.
    pub class: BtClass,
    /// MPI ranks.
    pub n_ranks: u32,
    /// Compute machines.
    pub n_hosts: usize,
    /// Checkpoint wave period, seconds.
    pub wave_secs: u64,
    /// Delays after the wave commit to sweep, seconds.
    pub delays_s: Vec<u64>,
    /// Runs per point.
    pub runs: usize,
    /// Experiment timeout, seconds.
    pub timeout_s: u64,
    /// Worker threads (0 = all cores).
    pub threads: usize,
    /// Base seed.
    pub base_seed: u64,
    /// Scale the recovery constants down for seconds-scale runs.
    pub miniature: bool,
}

crate::figures::figure_config!(Config);

impl Config {
    /// Paper-scale parameters: one fault, delays across the 30 s period.
    pub fn paper() -> Self {
        Config {
            class: BtClass::B,
            n_ranks: 49,
            n_hosts: 53,
            wave_secs: 30,
            delays_s: vec![0, 5, 10, 15, 20, 25],
            runs: 5,
            timeout_s: 1500,
            threads: 0,
            base_seed: 0xDE1A,
            miniature: false,
        }
    }

    /// A seconds-scale miniature.
    pub fn smoke() -> Self {
        Config {
            class: BtClass::S,
            n_ranks: 4,
            n_hosts: 6,
            wave_secs: 2,
            delays_s: vec![0, 1],
            runs: 3,
            timeout_s: 90,
            threads: 0,
            base_seed: 0xDE1A,
            miniature: true,
        }
    }
}

/// One delay value.
#[derive(Clone, Debug, Serialize)]
pub struct Point {
    /// Seconds between the wave commit and the fault.
    pub delay_s: u64,
    /// Aggregated results.
    pub summary: PointSummary,
}

/// The regenerated (new) figure.
#[derive(Clone, Debug, Serialize)]
pub struct Data {
    /// Wave period, for reference.
    pub wave_secs: u64,
    /// The fault-free baseline.
    pub baseline: PointSummary,
    /// Points in delay order.
    pub points: Vec<Point>,
}

/// Runs the sweep.
pub fn run(cfg: &Config) -> Data {
    let mut cluster =
        cluster_config(cfg.n_ranks, cfg.n_hosts, cfg.wave_secs, DispatcherMode::Historical);
    if cfg.miniature {
        super::miniaturize(&mut cluster);
    }
    let base = spec(
        cluster,
        cfg.class.clone(),
        None,
        cfg.timeout_s,
        cfg.base_seed,
    );
    let baseline = PointSummary::from_runs(&run_all(&seeded(&base, cfg.runs), cfg.threads));
    let mut points = Vec::new();
    for (k, &d) in cfg.delays_s.iter().enumerate() {
        let mut s = base.clone();
        s.seed += 1_000 * (k as u64 + 1);
        s.injection = Some(
            InjectionSpec::new(DELAY_SRC, "ADV1", "ADVnodes")
                .with_param("D", d as i64)
                .with_param("N", cfg.n_hosts as i64 - 1),
        );
        let records = run_all(&seeded(&s, cfg.runs), cfg.threads);
        points.push(Point {
            delay_s: d,
            summary: PointSummary::from_runs(&records),
        });
    }
    Data {
        wave_secs: cfg.wave_secs,
        baseline,
        points,
    }
}

/// Renders the sweep.
pub fn render(data: &Data) -> String {
    let mut out = format!(
        "Delay sweep — fault injected D seconds after the first wave commit\n\
         (the paper's Sec. 6 planned measurement; wave period {} s)\n\
         delay        exec time (s)      excess over no-fault (s)\n",
        data.wave_secs
    );
    let base = data.baseline.mean_time_s.unwrap_or(0.0);
    out.push_str(&format!(
        "no fault  {}   {:>10}\n",
        fmt_time(data.baseline.mean_time_s, data.baseline.std_time_s),
        "—"
    ));
    for p in &data.points {
        let excess = p.summary.mean_time_s.map(|t| t - base);
        out.push_str(&format!(
            "D = {:>3}s  {}   {:>10}\n",
            p.delay_s,
            fmt_time(p.summary.mean_time_s, p.summary.std_time_s),
            excess.map_or("—".to_string(), |e| format!("{e:+.1}")),
        ));
    }
    out
}
