//! Figure 5 — impact of fault frequency.
//!
//! BT class B on 49 processes over 53 machines; the Fig. 5(a) scenario
//! injects one fault every X seconds for X ∈ {65, 60, 55, 50, 45, 40},
//! checkpoint waves every 30 s, 1500 s timeout, 6 runs per point. The
//! figure reports mean execution time of terminated runs plus the
//! percentages of non-terminating and buggy runs.

use serde::Serialize;

use failmpi_mpichv::DispatcherMode;
use failmpi_workloads::BtClass;

use super::{cluster_config, fmt_time, spec, FIG5_SRC};
use crate::harness::InjectionSpec;
use crate::stats::PointSummary;
use crate::sweep::{run_all, seeded};

/// Sweep parameters.
#[derive(Clone, Debug)]
pub struct Config {
    /// Workload class.
    pub class: BtClass,
    /// MPI ranks.
    pub n_ranks: u32,
    /// Compute machines (the `G1` group size).
    pub n_hosts: usize,
    /// Checkpoint wave period, seconds.
    pub wave_secs: u64,
    /// Fault intervals to sweep, seconds.
    pub intervals_s: Vec<u64>,
    /// Runs per point.
    pub runs: usize,
    /// Experiment timeout, seconds.
    pub timeout_s: u64,
    /// Worker threads (0 = all cores).
    pub threads: usize,
    /// Base seed.
    pub base_seed: u64,
    /// Scale the recovery constants down for seconds-scale runs.
    pub miniature: bool,
}

crate::figures::figure_config!(Config);

impl Config {
    /// The paper's parameters.
    pub fn paper() -> Self {
        Config {
            class: BtClass::B,
            n_ranks: 49,
            n_hosts: 53,
            wave_secs: 30,
            intervals_s: vec![65, 60, 55, 50, 45, 40],
            runs: 6,
            timeout_s: 1500,
            threads: 0,
            base_seed: 0x5105,
            miniature: false,
        }
    }

    /// A seconds-scale miniature with the same shape (class S, 4 ranks).
    pub fn smoke() -> Self {
        Config {
            class: BtClass::S,
            n_ranks: 4,
            n_hosts: 6,
            wave_secs: 2,
            intervals_s: vec![4, 3, 2],
            runs: 3,
            timeout_s: 90,
            threads: 0,
            base_seed: 0x5105,
            miniature: true,
        }
    }
}

/// One x-position of the figure.
#[derive(Clone, Debug, Serialize)]
pub struct Point {
    /// Point label (`no faults` or `every Ns`).
    pub label: String,
    /// Fault interval, if faults are injected.
    pub interval_s: Option<u64>,
    /// Aggregated results.
    pub summary: PointSummary,
}

/// The regenerated figure.
#[derive(Clone, Debug, Serialize)]
pub struct Data {
    /// Workload class name.
    pub class: String,
    /// Rank count.
    pub n_ranks: u32,
    /// Points in sweep order.
    pub points: Vec<Point>,
}

/// Runs the sweep.
pub fn run(cfg: &Config) -> Data {
    let mut points = Vec::new();
    let class_name = cfg.class.name.to_string();
    let base = |seed| {
        let mut cluster =
            cluster_config(cfg.n_ranks, cfg.n_hosts, cfg.wave_secs, DispatcherMode::Historical);
        if cfg.miniature {
            super::miniaturize(&mut cluster);
        }
        spec(cluster, cfg.class.clone(), None, cfg.timeout_s, seed)
    };
    // No-fault baseline.
    let specs = seeded(&base(cfg.base_seed), cfg.runs);
    let records = run_all(&specs, cfg.threads);
    points.push(Point {
        label: "no faults".into(),
        interval_s: None,
        summary: PointSummary::from_runs(&records),
    });
    // One fault every X seconds.
    for (k, &x) in cfg.intervals_s.iter().enumerate() {
        let inj = InjectionSpec::new(FIG5_SRC, "ADV1", "ADVnodes")
            .with_param("X", x as i64)
            .with_param("N", cfg.n_hosts as i64 - 1);
        let mut s = base(cfg.base_seed + 1000 * (k as u64 + 1));
        s.injection = Some(inj);
        let specs = seeded(&s, cfg.runs);
        let records = run_all(&specs, cfg.threads);
        points.push(Point {
            label: format!("every {x} sec"),
            interval_s: Some(x),
            summary: PointSummary::from_runs(&records),
        });
    }
    Data {
        class: class_name,
        n_ranks: cfg.n_ranks,
        points,
    }
}

/// Renders the figure as the paper's series.
pub fn render(data: &Data) -> String {
    let mut out = format!(
        "Figure 5 — impact of fault frequency (BT class {}, {} ranks)\n\
         point            exec time (s)      %non-term   %buggy   faults/run\n",
        data.class, data.n_ranks,
    );
    for p in &data.points {
        out.push_str(&format!(
            "{:<14} {}   {:>8.1}  {:>7.1}   {:>8.1}\n",
            p.label,
            fmt_time(p.summary.mean_time_s, p.summary.std_time_s),
            p.summary.pct_non_terminating(),
            p.summary.pct_buggy(),
            p.summary.mean_faults,
        ));
    }
    out
}
