//! The [LBH+04] comparison, regenerated automatically.
//!
//! The paper's conclusion: "we were able to reproduce automatically
//! previous measurements that were done manually, like the impact of fault
//! frequency on the execution time [LBH+04]. This provides the opportunity
//! to evaluate many different implementations at large scales and compare
//! them fairly under the same failure scenarios."
//!
//! [LBH+04] (Lemarinier et al., *Improved message logging versus improved
//! coordinated checkpointing for fault tolerant MPI*, CLUSTER 2004)
//! compared exactly the two protocols this repository implements: Vcl
//! (coordinated checkpointing) and V2 (pessimistic sender-based message
//! logging). This figure sweeps the fault frequency over both under
//! identical FAIL scenarios — the comparison the 2004 paper ran by hand —
//! and regenerates its headline: coordinated checkpointing and logging tie
//! without faults, logging's single-rank restarts win increasingly as the
//! fault frequency rises, and logging keeps completing past the frequency
//! where coordinated checkpointing livelocks.

use serde::Serialize;

use failmpi_mpichv::{DispatcherMode, VProtocol};
use failmpi_workloads::BtClass;

use super::{cluster_config, fmt_time, spec, FIG5_SRC};
use crate::harness::InjectionSpec;
use crate::stats::PointSummary;
use crate::sweep::{run_all, seeded};

/// Sweep parameters.
#[derive(Clone, Debug)]
pub struct Config {
    /// Workload class.
    pub class: BtClass,
    /// MPI ranks.
    pub n_ranks: u32,
    /// Compute machines.
    pub n_hosts: usize,
    /// Checkpoint wave / self-checkpoint period, seconds.
    pub wave_secs: u64,
    /// Fault intervals to sweep, seconds (`0` = the no-fault baseline).
    pub intervals_s: Vec<u64>,
    /// Runs per point.
    pub runs: usize,
    /// Experiment timeout, seconds.
    pub timeout_s: u64,
    /// Worker threads (0 = all cores).
    pub threads: usize,
    /// Base seed.
    pub base_seed: u64,
    /// Scale the recovery constants down for seconds-scale runs.
    pub miniature: bool,
}

crate::figures::figure_config!(Config);

impl Config {
    /// Paper-scale parameters (the 2004 paper also used NAS kernels on a
    /// ~2×10²-node cluster with fault-frequency sweeps).
    pub fn paper() -> Self {
        Config {
            class: BtClass::B,
            n_ranks: 49,
            n_hosts: 53,
            wave_secs: 30,
            intervals_s: vec![0, 65, 50, 40, 30],
            runs: 5,
            timeout_s: 1500,
            threads: 0,
            base_seed: 0x1bb4,
            miniature: false,
        }
    }

    /// A seconds-scale miniature.
    pub fn smoke() -> Self {
        Config {
            class: BtClass::S,
            n_ranks: 4,
            n_hosts: 6,
            wave_secs: 1,
            intervals_s: vec![0, 4, 2],
            runs: 3,
            timeout_s: 90,
            threads: 0,
            base_seed: 0x1bb4,
            miniature: true,
        }
    }
}

/// One (protocol, interval) cell.
#[derive(Clone, Debug, Serialize)]
pub struct Point {
    /// Protocol name.
    pub protocol: String,
    /// Fault interval (`None` = fault-free).
    pub interval_s: Option<u64>,
    /// Aggregated results.
    pub summary: PointSummary,
}

/// The regenerated comparison.
#[derive(Clone, Debug, Serialize)]
pub struct Data {
    /// Points, grouped by protocol then interval.
    pub points: Vec<Point>,
}

/// Runs the sweep.
pub fn run(cfg: &Config) -> Data {
    let mut points = Vec::new();
    for (k, proto) in [VProtocol::Vcl, VProtocol::V2].into_iter().enumerate() {
        for (j, &interval) in cfg.intervals_s.iter().enumerate() {
            let mut cluster = cluster_config(
                cfg.n_ranks,
                cfg.n_hosts,
                cfg.wave_secs,
                DispatcherMode::Historical,
            );
            if cfg.miniature {
                super::miniaturize(&mut cluster);
            }
            cluster.protocol = proto;
            let mut s = spec(
                cluster,
                cfg.class.clone(),
                None,
                cfg.timeout_s,
                cfg.base_seed + 50_000 * k as u64 + 1_000 * j as u64,
            );
            if interval > 0 {
                s.injection = Some(
                    InjectionSpec::new(FIG5_SRC, "ADV1", "ADVnodes")
                        .with_param("X", interval as i64)
                        .with_param("N", cfg.n_hosts as i64 - 1),
                );
            }
            let records = run_all(&seeded(&s, cfg.runs), cfg.threads);
            points.push(Point {
                protocol: format!("{proto:?}"),
                interval_s: (interval > 0).then_some(interval),
                summary: PointSummary::from_runs(&records),
            });
        }
    }
    Data { points }
}

/// Renders the comparison.
pub fn render(data: &Data) -> String {
    let mut out = String::from(
        "LBH+04 regenerated — coordinated checkpointing (Vcl) vs message logging (V2)\n\
         protocol  faults        exec time (s)      %non-term   faults/run\n",
    );
    for p in &data.points {
        let label = match p.interval_s {
            None => "none".to_string(),
            Some(x) => format!("1/{x}s"),
        };
        out.push_str(&format!(
            "{:<9} {:<12} {}   {:>8.1}   {:>8.1}\n",
            p.protocol,
            label,
            fmt_time(p.summary.mean_time_s, p.summary.std_time_s),
            p.summary.pct_non_terminating(),
            p.summary.mean_faults,
        ));
    }
    out
}
