//! Figure-by-figure experiment drivers.
//!
//! Every submodule regenerates one figure of the paper's evaluation: a
//! `Config` (with `paper()` fidelity matching Sec. 5's parameters and a
//! `smoke()` miniature for tests/benches), a `run` function sweeping the
//! experiment grid in parallel, and a `render` function printing the same
//! series the paper plots.

pub mod ablation;
pub mod delay;
pub mod fig11;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig9;
pub mod lbh04;

use failmpi_sim::{SimDuration, SimTime};
use failmpi_mpichv::{DispatcherMode, VclConfig};
use failmpi_workloads::BtClass;

use crate::cli::Options;
use crate::harness::ExperimentSpec;

/// The two overridable knobs every figure config shares, so the common
/// binary entry point ([`run_figure_main`]) can apply `--runs`/`--threads`
/// without knowing the concrete config type.
pub trait FigureConfig {
    /// Mutable access to the per-point run count.
    fn runs_mut(&mut self) -> &mut usize;
    /// Mutable access to the worker-thread count.
    fn threads_mut(&mut self) -> &mut usize;
}

/// Implements [`FigureConfig`] for a config struct with public `runs` and
/// `threads` fields.
macro_rules! figure_config {
    ($ty:ty) => {
        impl crate::figures::FigureConfig for $ty {
            fn runs_mut(&mut self) -> &mut usize {
                &mut self.runs
            }
            fn threads_mut(&mut self) -> &mut usize {
                &mut self.threads
            }
        }
    };
}
pub(crate) use figure_config;

/// The shared `main` of every figure binary: parses the common CLI flags,
/// picks the smoke or paper config, applies `--runs`/`--threads`, installs
/// the `--metrics` and `--trace-out` sinks, runs the sweep, prints the
/// rendered figure, and writes the `--json` / `--metrics` / `--trace-out`
/// outputs. Exits with status 2 on a CLI error, so each binary's `main` is
/// a single call.
pub fn run_figure_main<C: FigureConfig, D: serde::Serialize>(
    pick: impl FnOnce(bool) -> C,
    run: impl FnOnce(&C) -> D,
    render: impl FnOnce(&D) -> String,
) {
    let opts = match Options::parse(std::env::args().skip(1)) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let mut cfg = pick(opts.smoke);
    if let Some(r) = opts.runs {
        *cfg.runs_mut() = r;
    }
    if let Some(t) = opts.threads {
        *cfg.threads_mut() = t;
    }
    opts.install_metrics_sink();
    opts.install_trace_sink();
    opts.install_profile_sink();
    let data = run(&cfg);
    print!("{}", render(&data));
    opts.maybe_write_json(&data).expect("write json");
    opts.maybe_write_metrics().expect("write metrics");
    opts.maybe_write_trace().expect("write trace");
    opts.maybe_write_profile().expect("write profile");
}

/// The Fig. 5(a) fault-frequency scenario source.
pub const FIG5_SRC: &str = include_str!("../../../core/scenarios/fig5_frequency.fail");
/// The Fig. 7(a) simultaneous-fault scenario source.
pub const FIG7_SRC: &str = include_str!("../../../core/scenarios/fig7_simultaneous.fail");
/// The Fig. 8 synchronized-fault scenario source.
pub const FIG8_SRC: &str = include_str!("../../../core/scenarios/fig8_synchronized.fail");
/// The Fig. 10 state-synchronized scenario source.
pub const FIG10_SRC: &str = include_str!("../../../core/scenarios/fig10_state_sync.fail");
/// The delay-after-checkpoint scenario (the Sec. 6 planned feature).
pub const DELAY_SRC: &str = include_str!("../../../core/scenarios/delay_injection.fail");

/// Builds the paper's cluster configuration at a given scale.
pub(crate) fn cluster_config(
    n_ranks: u32,
    n_hosts: usize,
    wave_secs: u64,
    mode: DispatcherMode,
) -> VclConfig {
    VclConfig {
        n_ranks,
        n_compute_hosts: n_hosts,
        checkpoint_period: SimDuration::from_secs(wave_secs),
        dispatcher: mode,
        ..VclConfig::default()
    }
}

/// Scales the recovery-time constants down for seconds-scale miniatures
/// (class S smoke runs), keeping the same ratios to the workload duration
/// that the paper-scale constants have to a class-B run. The `onload`
/// injection race window (`init_delay_max`) is left untouched — it is
/// micro-scale in both settings.
pub(crate) fn miniaturize(cfg: &mut VclConfig) {
    cfg.ssh_stagger = SimDuration::from_millis(20);
    cfg.restart_overhead = SimDuration::from_millis(400);
    cfg.terminate_delay = SimDuration::from_millis(30);
}

/// Builds a spec with the given pieces.
pub(crate) fn spec(
    cluster: VclConfig,
    class: BtClass,
    injection: Option<crate::harness::InjectionSpec>,
    timeout_s: u64,
    seed: u64,
) -> ExperimentSpec {
    ExperimentSpec {
        cluster,
        workload: crate::harness::Workload::Bt(class),
        injection,
        timeout: SimTime::from_secs(timeout_s),
        // Scale the silence threshold with the timeout: 1/10th, which is
        // the paper-scale 150 s window at the paper's 1500 s timeout.
        freeze_window: SimDuration::from_secs(timeout_s / 10),
        seed,
        tie_break: failmpi_sim::TieBreak::Fifo,
        backend: crate::harness::default_backend(),
    }
}

/// Formats an optional mean±std pair of seconds.
pub(crate) fn fmt_time(mean: Option<f64>, std: Option<f64>) -> String {
    match (mean, std) {
        (Some(m), Some(s)) => format!("{m:8.1} ±{s:6.1}"),
        (Some(m), None) => format!("{m:8.1}        "),
        _ => format!("{:>15}", "—"),
    }
}
