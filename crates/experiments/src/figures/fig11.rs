//! Figure 11 — synchronized faults pinned to the MPI daemon state.
//!
//! Like Fig. 9, but the second fault is injected just *before the
//! recovered daemon calls `localMPI_setCommand`* (Fig. 10 scenario): the
//! daemon is stopped at load, released on the crash order, and halted at a
//! debugger breakpoint — guaranteeing the hit lands after registration.
//! Under the historical dispatcher *every* run freezes; this is how the
//! paper pinpointed the bug.

use failmpi_mpichv::DispatcherMode;

use super::fig9::{render_titled, run_with_scenario, Config, Data};
use super::FIG10_SRC;

/// The paper's parameters (same grid as Fig. 9).
pub fn paper_config() -> Config {
    let mut cfg = Config::paper();
    cfg.base_seed = 0xB10B;
    cfg
}

/// A seconds-scale miniature.
pub fn smoke_config() -> Config {
    let mut cfg = Config::smoke();
    cfg.base_seed = 0xB10B;
    cfg
}

/// A fixed-dispatcher variant (the ablation reference).
pub fn fixed_config(mut cfg: Config) -> Config {
    cfg.mode = DispatcherMode::Fixed;
    cfg
}

/// Runs the sweep with the Fig. 10 scenario.
pub fn run(cfg: &Config) -> Data {
    run_with_scenario(cfg, FIG10_SRC, "ADV1", "ADVG1")
}

/// Renders the figure as the paper's series.
pub fn render(data: &Data) -> String {
    render_titled(
        data,
        "Figure 11 — synchronized faults depending on MPI state (before localMPI_setCommand)",
    )
}
