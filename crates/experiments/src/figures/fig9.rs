//! Figure 9 — impact of synchronized faults.
//!
//! Two faults per run: the first at a random machine after T seconds, the
//! second targeted at the first communication daemon that respawns in the
//! recovery wave (its machine's second `onload`, per the Fig. 8 scenario).
//! Swept over the four BT scales; the paper finds *some* buggy executions
//! at every scale — the second fault races the daemon's registration with
//! the dispatcher, and only post-registration hits trigger the bug.

use serde::Serialize;

use failmpi_mpichv::DispatcherMode;
use failmpi_workloads::BtClass;

use super::{cluster_config, fmt_time, spec, FIG8_SRC};
use crate::harness::InjectionSpec;
use crate::stats::PointSummary;
use crate::sweep::{run_all, seeded};

/// Sweep parameters.
#[derive(Clone, Debug)]
pub struct Config {
    /// Workload class.
    pub class: BtClass,
    /// Rank counts to sweep.
    pub scales: Vec<u32>,
    /// Spare machines on top of each scale.
    pub spares: usize,
    /// Checkpoint wave period, seconds.
    pub wave_secs: u64,
    /// Seconds before the first fault.
    pub first_fault_s: u64,
    /// Runs per point.
    pub runs: usize,
    /// Experiment timeout, seconds.
    pub timeout_s: u64,
    /// Worker threads (0 = all cores).
    pub threads: usize,
    /// Base seed.
    pub base_seed: u64,
    /// Dispatcher variant (Historical reproduces the paper).
    pub mode: DispatcherMode,
    /// Scale the recovery constants down for seconds-scale runs.
    pub miniature: bool,
}

crate::figures::figure_config!(Config);

impl Config {
    /// The paper's parameters.
    pub fn paper() -> Self {
        Config {
            class: BtClass::B,
            scales: vec![25, 36, 49, 64],
            spares: 4,
            wave_secs: 30,
            first_fault_s: 50,
            runs: 16,
            timeout_s: 1500,
            threads: 0,
            base_seed: 0x9109,
            mode: DispatcherMode::Historical,
            miniature: false,
        }
    }

    /// A seconds-scale miniature.
    pub fn smoke() -> Self {
        Config {
            class: BtClass::S,
            scales: vec![4, 9],
            spares: 2,
            wave_secs: 2,
            first_fault_s: 2,
            runs: 4,
            timeout_s: 90,
            threads: 0,
            base_seed: 0x9109,
            mode: DispatcherMode::Historical,
            miniature: true,
        }
    }
}

/// Results at one scale.
#[derive(Clone, Debug, Serialize)]
pub struct Point {
    /// Rank count.
    pub n_ranks: u32,
    /// Fault-free baseline.
    pub fault_free: PointSummary,
    /// Runs with the two synchronized faults.
    pub synchronized: PointSummary,
}

/// The regenerated figure.
#[derive(Clone, Debug, Serialize)]
pub struct Data {
    /// Points in scale order.
    pub points: Vec<Point>,
}

/// The scenario source this figure runs (override point for Fig. 11).
pub(crate) fn run_with_scenario(
    cfg: &Config,
    src: &str,
    adversary: &str,
    machine: &str,
) -> Data {
    let mut points = Vec::new();
    for (k, &n) in cfg.scales.iter().enumerate() {
        let hosts = n as usize + cfg.spares;
        let mut cluster = cluster_config(n, hosts, cfg.wave_secs, cfg.mode);
        if cfg.miniature {
            super::miniaturize(&mut cluster);
        }
        let base = spec(
            cluster,
            cfg.class.clone(),
            None,
            cfg.timeout_s,
            cfg.base_seed + 10_000 * k as u64,
        );
        let fault_free =
            PointSummary::from_runs(&run_all(&seeded(&base, cfg.runs), cfg.threads));
        let mut sync_spec = base.clone();
        sync_spec.seed += 5_000;
        sync_spec.injection = Some(
            InjectionSpec::new(src, adversary, machine)
                .with_param("T", cfg.first_fault_s as i64)
                .with_param("N", hosts as i64 - 1)
                // Freezing the dispatcher is the *point* of the
                // synchronized-fault figures; tell the strict lint gate
                // the statically-predicted freeze is expected.
                .with_expect_freeze(true),
        );
        let synchronized =
            PointSummary::from_runs(&run_all(&seeded(&sync_spec, cfg.runs), cfg.threads));
        points.push(Point {
            n_ranks: n,
            fault_free,
            synchronized,
        });
    }
    Data { points }
}

/// Runs the sweep with the Fig. 8 scenario.
pub fn run(cfg: &Config) -> Data {
    run_with_scenario(cfg, FIG8_SRC, "ADV1", "ADVnodes")
}

/// Renders the figure as the paper's series.
pub fn render(data: &Data) -> String {
    render_titled(data, "Figure 9 — impact of synchronized faults (2 faults)")
}

pub(crate) fn render_titled(data: &Data, title: &str) -> String {
    let mut out = format!(
        "{title}\n\
         ranks   no-fault time (s)    sync-fault time (s)   %non-term   %buggy\n",
    );
    for p in &data.points {
        out.push_str(&format!(
            "BT {:<4} {}  {}    {:>8.1}  {:>7.1}\n",
            p.n_ranks,
            fmt_time(p.fault_free.mean_time_s, p.fault_free.std_time_s),
            fmt_time(p.synchronized.mean_time_s, p.synchronized.std_time_s),
            p.synchronized.pct_non_terminating(),
            p.synchronized.pct_buggy(),
        ));
    }
    out
}
