//! Figure 6 — impact of scale.
//!
//! BT class B at 25, 36, 49 and 64 processes (BT needs a square count),
//! one fault every 50 seconds, the same number of checkpoint servers at
//! every scale, 5 runs per point. The figure reports the fault-free and
//! faulty execution times per scale plus the outcome percentages — and the
//! paper's analysis highlights the higher per-rank checkpoint-image size at
//! 25 ranks and the growing variance with scale.

use serde::Serialize;

use failmpi_mpichv::DispatcherMode;
use failmpi_workloads::BtClass;

use super::{cluster_config, fmt_time, spec, FIG5_SRC};
use crate::harness::InjectionSpec;
use crate::stats::PointSummary;
use crate::sweep::{run_all, seeded};

/// Sweep parameters.
#[derive(Clone, Debug)]
pub struct Config {
    /// Workload class.
    pub class: BtClass,
    /// Rank counts to sweep (perfect squares).
    pub scales: Vec<u32>,
    /// Spare machines added on top of each scale.
    pub spares: usize,
    /// Checkpoint wave period, seconds.
    pub wave_secs: u64,
    /// Fault interval, seconds.
    pub interval_s: u64,
    /// Runs per point.
    pub runs: usize,
    /// Experiment timeout, seconds.
    pub timeout_s: u64,
    /// Worker threads (0 = all cores).
    pub threads: usize,
    /// Base seed.
    pub base_seed: u64,
    /// Scale the recovery constants down for seconds-scale runs.
    pub miniature: bool,
}

crate::figures::figure_config!(Config);

impl Config {
    /// The paper's parameters.
    pub fn paper() -> Self {
        Config {
            class: BtClass::B,
            scales: vec![25, 36, 49, 64],
            spares: 4,
            wave_secs: 30,
            interval_s: 50,
            runs: 5,
            timeout_s: 1500,
            threads: 0,
            base_seed: 0x6106,
            miniature: false,
        }
    }

    /// A seconds-scale miniature (classes S at 4 and 9 ranks).
    pub fn smoke() -> Self {
        Config {
            class: BtClass::S,
            scales: vec![4, 9],
            spares: 2,
            wave_secs: 2,
            interval_s: 2,
            runs: 3,
            timeout_s: 90,
            threads: 0,
            base_seed: 0x6106,
            miniature: true,
        }
    }
}

/// Results at one scale.
#[derive(Clone, Debug, Serialize)]
pub struct Point {
    /// Rank count.
    pub n_ranks: u32,
    /// Fault-free runs.
    pub fault_free: PointSummary,
    /// Runs with one fault every `interval_s`.
    pub faulty: PointSummary,
}

/// The regenerated figure.
#[derive(Clone, Debug, Serialize)]
pub struct Data {
    /// Fault interval used for the faulty series.
    pub interval_s: u64,
    /// Points in scale order.
    pub points: Vec<Point>,
}

/// Runs the sweep.
pub fn run(cfg: &Config) -> Data {
    let mut points = Vec::new();
    for (k, &n) in cfg.scales.iter().enumerate() {
        let hosts = n as usize + cfg.spares;
        let mut cluster = cluster_config(n, hosts, cfg.wave_secs, DispatcherMode::Historical);
        if cfg.miniature {
            super::miniaturize(&mut cluster);
        }
        let base = spec(
            cluster,
            cfg.class.clone(),
            None,
            cfg.timeout_s,
            cfg.base_seed + 10_000 * k as u64,
        );
        let fault_free =
            PointSummary::from_runs(&run_all(&seeded(&base, cfg.runs), cfg.threads));
        let mut faulty_spec = base.clone();
        faulty_spec.seed += 5_000;
        faulty_spec.injection = Some(
            InjectionSpec::new(FIG5_SRC, "ADV1", "ADVnodes")
                .with_param("X", cfg.interval_s as i64)
                .with_param("N", hosts as i64 - 1),
        );
        let faulty =
            PointSummary::from_runs(&run_all(&seeded(&faulty_spec, cfg.runs), cfg.threads));
        points.push(Point {
            n_ranks: n,
            fault_free,
            faulty,
        });
    }
    Data {
        interval_s: cfg.interval_s,
        points,
    }
}

/// Renders the figure as the paper's series.
pub fn render(data: &Data) -> String {
    let mut out = format!(
        "Figure 6 — impact of scale (one fault every {} s)\n\
         ranks   no-fault time (s)    faulty time (s)      %non-term   %buggy\n",
        data.interval_s
    );
    for p in &data.points {
        out.push_str(&format!(
            "BT {:<4} {}  {}   {:>8.1}  {:>7.1}\n",
            p.n_ranks,
            fmt_time(p.fault_free.mean_time_s, p.fault_free.std_time_s),
            fmt_time(p.faulty.mean_time_s, p.faulty.std_time_s),
            p.faulty.pct_non_terminating(),
            p.faulty.pct_buggy(),
        ));
    }
    out
}
