//! Figure 7 — impact of simultaneous faults.
//!
//! BT class B on 49 processes; every 50 s the Fig. 7(a) scenario crashes a
//! burst of X machines (re-picking on negative acknowledgements), X ∈
//! {1..5}, 6 runs per point. The paper observes buggy (frozen-in-recovery)
//! executions appearing around 5 simultaneous faults.

use serde::Serialize;

use failmpi_mpichv::DispatcherMode;
use failmpi_workloads::BtClass;

use super::{cluster_config, fmt_time, spec, FIG7_SRC};
use crate::harness::InjectionSpec;
use crate::stats::PointSummary;
use crate::sweep::{run_all, seeded};

/// Sweep parameters.
#[derive(Clone, Debug)]
pub struct Config {
    /// Workload class.
    pub class: BtClass,
    /// MPI ranks.
    pub n_ranks: u32,
    /// Compute machines.
    pub n_hosts: usize,
    /// Checkpoint wave period, seconds.
    pub wave_secs: u64,
    /// Seconds between bursts.
    pub period_s: u64,
    /// Burst sizes to sweep.
    pub bursts: Vec<u32>,
    /// Runs per point.
    pub runs: usize,
    /// Experiment timeout, seconds.
    pub timeout_s: u64,
    /// Worker threads (0 = all cores).
    pub threads: usize,
    /// Base seed.
    pub base_seed: u64,
    /// Scale the recovery constants down for seconds-scale runs.
    pub miniature: bool,
}

crate::figures::figure_config!(Config);

impl Config {
    /// The paper's parameters.
    pub fn paper() -> Self {
        Config {
            class: BtClass::B,
            n_ranks: 49,
            n_hosts: 53,
            wave_secs: 30,
            period_s: 50,
            bursts: vec![1, 2, 3, 4, 5],
            runs: 6,
            timeout_s: 1500,
            threads: 0,
            base_seed: 0x7107,
            miniature: false,
        }
    }

    /// A seconds-scale miniature.
    pub fn smoke() -> Self {
        Config {
            class: BtClass::S,
            n_ranks: 4,
            n_hosts: 6,
            wave_secs: 2,
            period_s: 4,
            bursts: vec![1, 2],
            runs: 3,
            timeout_s: 90,
            threads: 0,
            base_seed: 0x7107,
            miniature: true,
        }
    }
}

/// One burst size of the figure.
#[derive(Clone, Debug, Serialize)]
pub struct Point {
    /// Simultaneous faults per burst.
    pub burst: u32,
    /// Aggregated results.
    pub summary: PointSummary,
}

/// The regenerated figure.
#[derive(Clone, Debug, Serialize)]
pub struct Data {
    /// Burst period, seconds.
    pub period_s: u64,
    /// Points in burst order.
    pub points: Vec<Point>,
}

/// Runs the sweep.
pub fn run(cfg: &Config) -> Data {
    let mut points = Vec::new();
    for (k, &x) in cfg.bursts.iter().enumerate() {
        let inj = InjectionSpec::new(FIG7_SRC, "ADV1", "ADVnodes")
            .with_param("X", x as i64)
            .with_param("T", cfg.period_s as i64)
            .with_param("N", cfg.n_hosts as i64 - 1);
        let mut cluster =
            cluster_config(cfg.n_ranks, cfg.n_hosts, cfg.wave_secs, DispatcherMode::Historical);
        if cfg.miniature {
            super::miniaturize(&mut cluster);
        }
        let mut s = spec(
            cluster,
            cfg.class.clone(),
            Some(inj),
            cfg.timeout_s,
            cfg.base_seed + 10_000 * k as u64,
        );
        s.seed += x as u64;
        let records = run_all(&seeded(&s, cfg.runs), cfg.threads);
        points.push(Point {
            burst: x,
            summary: PointSummary::from_runs(&records),
        });
    }
    Data {
        period_s: cfg.period_s,
        points,
    }
}

/// Renders the figure as the paper's series.
pub fn render(data: &Data) -> String {
    let mut out = format!(
        "Figure 7 — impact of simultaneous faults (bursts every {} s)\n\
         burst      exec time (s)      %non-term   %buggy   faults/run\n",
        data.period_s
    );
    for p in &data.points {
        out.push_str(&format!(
            "{:<2} fault{} {}   {:>8.1}  {:>7.1}   {:>8.1}\n",
            p.burst,
            if p.burst == 1 { " " } else { "s" },
            fmt_time(p.summary.mean_time_s, p.summary.std_time_s),
            p.summary.pct_non_terminating(),
            p.summary.pct_buggy(),
            p.summary.mean_faults,
        ));
    }
    out
}
