//! Ablations of the design choices DESIGN.md calls out.
//!
//! 1. **Dispatcher bookkeeping** — the Fig. 10 stress under the historical
//!    dispatcher vs. the fixed one: the bug disappears with the fix (the
//!    paper's conclusion, validated as an experiment).
//! 2. **Checkpoint style** — blocking vs. non-blocking Chandy–Lamport:
//!    fault-free overhead and behaviour under periodic faults.
//! 3. **Checkpoint period** — shorter waves cost more overhead but lose
//!    less work per fault.

use serde::Serialize;

use failmpi_mpichv::{CheckpointStyle, DispatcherMode, VProtocol};

use failmpi_workloads::BtClass;

use super::{cluster_config, fig11, fmt_time, spec, FIG5_SRC};
use crate::harness::InjectionSpec;
use crate::stats::PointSummary;
use crate::sweep::{run_all, seeded};

/// Grid parameters shared by the ablations.
#[derive(Clone, Debug)]
pub struct Config {
    /// Workload class.
    pub class: BtClass,
    /// MPI ranks.
    pub n_ranks: u32,
    /// Compute machines.
    pub n_hosts: usize,
    /// Checkpoint wave period, seconds.
    pub wave_secs: u64,
    /// Wave periods for the period ablation, seconds.
    pub periods_s: Vec<u64>,
    /// Fault interval for the faulty series, seconds.
    pub interval_s: u64,
    /// Runs per point.
    pub runs: usize,
    /// Experiment timeout, seconds.
    pub timeout_s: u64,
    /// Worker threads (0 = all cores).
    pub threads: usize,
    /// Base seed.
    pub base_seed: u64,
    /// Scale the recovery constants down for seconds-scale runs.
    pub miniature: bool,
}

crate::figures::figure_config!(Config);

impl Config {
    /// Paper-scale parameters.
    pub fn paper() -> Self {
        Config {
            class: BtClass::B,
            n_ranks: 49,
            n_hosts: 53,
            wave_secs: 30,
            periods_s: vec![10, 30, 60],
            interval_s: 50,
            runs: 5,
            timeout_s: 1500,
            threads: 0,
            base_seed: 0xAB1A,
            miniature: false,
        }
    }

    /// A seconds-scale miniature.
    pub fn smoke() -> Self {
        Config {
            class: BtClass::S,
            n_ranks: 4,
            n_hosts: 6,
            wave_secs: 2,
            periods_s: vec![1, 2, 4],
            interval_s: 4,
            runs: 3,
            timeout_s: 90,
            threads: 0,
            base_seed: 0xAB1A,
            miniature: true,
        }
    }
}

/// Dispatcher-mode ablation result.
#[derive(Clone, Debug, Serialize)]
pub struct DispatcherAblation {
    /// Percentage of buggy runs under the historical dispatcher.
    pub historical_pct_buggy: f64,
    /// Percentage of buggy runs under the fixed dispatcher.
    pub fixed_pct_buggy: f64,
    /// Percentage of completed runs under the fixed dispatcher.
    pub fixed_pct_completed: f64,
}

/// Runs the Fig. 10 stress under both dispatcher variants at one scale.
pub fn dispatcher(cfg: &Config) -> DispatcherAblation {
    let scales = vec![cfg.n_ranks];
    let mut base = if cfg.class == BtClass::B {
        fig11::paper_config()
    } else {
        fig11::smoke_config()
    };
    base.scales = scales;
    base.spares = cfg.n_hosts - cfg.n_ranks as usize;
    base.runs = cfg.runs;
    base.threads = cfg.threads;
    let hist = fig11::run(&base);
    let fixed = fig11::run(&fig11::fixed_config(base));
    let h = &hist.points[0].synchronized;
    let f = &fixed.points[0].synchronized;
    DispatcherAblation {
        historical_pct_buggy: h.pct_buggy(),
        fixed_pct_buggy: f.pct_buggy(),
        fixed_pct_completed: 100.0 - f.pct_buggy() - f.pct_non_terminating(),
    }
}

/// Checkpoint-style ablation result.
#[derive(Clone, Debug, Serialize)]
pub struct StylePoint {
    /// Which protocol variant.
    pub style: String,
    /// Fault-free runs.
    pub fault_free: PointSummary,
    /// Runs under periodic faults.
    pub faulty: PointSummary,
}

/// Compares blocking vs. non-blocking checkpointing.
pub fn checkpoint_style(cfg: &Config) -> Vec<StylePoint> {
    let mut out = Vec::new();
    for (k, style) in [CheckpointStyle::NonBlocking, CheckpointStyle::Blocking]
        .into_iter()
        .enumerate()
    {
        let mut cluster = cluster_config(
            cfg.n_ranks,
            cfg.n_hosts,
            cfg.wave_secs,
            DispatcherMode::Historical,
        );
        if cfg.miniature {
            super::miniaturize(&mut cluster);
        }
        cluster.checkpoint_style = style;
        let base = spec(
            cluster,
            cfg.class.clone(),
            None,
            cfg.timeout_s,
            cfg.base_seed + 20_000 * k as u64,
        );
        let fault_free =
            PointSummary::from_runs(&run_all(&seeded(&base, cfg.runs), cfg.threads));
        let mut faulty_spec = base.clone();
        faulty_spec.seed += 5_000;
        faulty_spec.injection = Some(
            InjectionSpec::new(FIG5_SRC, "ADV1", "ADVnodes")
                .with_param("X", cfg.interval_s as i64)
                .with_param("N", cfg.n_hosts as i64 - 1),
        );
        let faulty =
            PointSummary::from_runs(&run_all(&seeded(&faulty_spec, cfg.runs), cfg.threads));
        out.push(StylePoint {
            style: format!("{style:?}"),
            fault_free,
            faulty,
        });
    }
    out
}

/// Checkpoint-period ablation result.
#[derive(Clone, Debug, Serialize)]
pub struct PeriodPoint {
    /// Wave period, seconds.
    pub period_s: u64,
    /// Fault-free runs (pure checkpoint overhead).
    pub fault_free: PointSummary,
    /// Runs under periodic faults (overhead vs. lost-work trade-off).
    pub faulty: PointSummary,
}

/// Sweeps the checkpoint wave period.
pub fn checkpoint_period(cfg: &Config) -> Vec<PeriodPoint> {
    let mut out = Vec::new();
    for (k, &period) in cfg.periods_s.iter().enumerate() {
        let mut cluster = cluster_config(
            cfg.n_ranks,
            cfg.n_hosts,
            period,
            DispatcherMode::Historical,
        );
        if cfg.miniature {
            super::miniaturize(&mut cluster);
        }
        let base = spec(
            cluster,
            cfg.class.clone(),
            None,
            cfg.timeout_s,
            cfg.base_seed + 30_000 * k as u64,
        );
        let fault_free =
            PointSummary::from_runs(&run_all(&seeded(&base, cfg.runs), cfg.threads));
        let mut faulty_spec = base.clone();
        faulty_spec.seed += 5_000;
        faulty_spec.injection = Some(
            InjectionSpec::new(FIG5_SRC, "ADV1", "ADVnodes")
                .with_param("X", cfg.interval_s as i64)
                .with_param("N", cfg.n_hosts as i64 - 1),
        );
        let faulty =
            PointSummary::from_runs(&run_all(&seeded(&faulty_spec, cfg.runs), cfg.threads));
        out.push(PeriodPoint {
            period_s: period,
            fault_free,
            faulty,
        });
    }
    out
}

/// Protocol-comparison result (the MPICH-V framework's purpose: "evaluate
/// many different implementations … and compare them fairly under the
/// same failure scenarios").
#[derive(Clone, Debug, Serialize)]
pub struct ProtocolPoint {
    /// Which V-protocol.
    pub protocol: String,
    /// Fault interval, if any.
    pub interval_s: Option<u64>,
    /// Aggregated results.
    pub summary: PointSummary,
}

/// Compares the V-protocols under the same failure scenarios — the
/// framework's purpose ("evaluate many different implementations … and
/// compare them fairly"): Vcl (coordinated checkpointing), V2 (pessimistic
/// sender-based message logging, solo restarts) and Vdummy (no fault
/// tolerance). The faulty column reproduces the [LBH+04] comparison the
/// paper says FAIL-MPI can automate: message logging wins as the fault
/// frequency rises, coordinated checkpointing has the lower no-fault
/// overhead profile, and no-fault-tolerance only ever wins when nothing
/// fails.
pub fn protocol(cfg: &Config) -> Vec<ProtocolPoint> {
    let mut out = Vec::new();
    for (k, proto) in [VProtocol::Vcl, VProtocol::V2, VProtocol::Vdummy]
        .into_iter()
        .enumerate()
    {
        for (j, interval) in [None, Some(cfg.interval_s)].into_iter().enumerate() {
            let mut cluster = cluster_config(
                cfg.n_ranks,
                cfg.n_hosts,
                cfg.wave_secs,
                DispatcherMode::Historical,
            );
            if cfg.miniature {
                super::miniaturize(&mut cluster);
            }
            cluster.protocol = proto;
            let mut s = spec(
                cluster,
                cfg.class.clone(),
                None,
                cfg.timeout_s,
                cfg.base_seed + 40_000 * (2 * k + j) as u64,
            );
            if let Some(x) = interval {
                s.injection = Some(
                    InjectionSpec::new(FIG5_SRC, "ADV1", "ADVnodes")
                        .with_param("X", x as i64)
                        .with_param("N", cfg.n_hosts as i64 - 1),
                );
            }
            let records = run_all(&seeded(&s, cfg.runs), cfg.threads);
            out.push(ProtocolPoint {
                protocol: format!("{proto:?}"),
                interval_s: interval,
                summary: PointSummary::from_runs(&records),
            });
        }
    }
    out
}

/// Renders all three ablations.
pub fn render(
    dispatcher: &DispatcherAblation,
    styles: &[StylePoint],
    periods: &[PeriodPoint],
    protocols: &[ProtocolPoint],
) -> String {
    let mut out = String::from("Ablation 1 — dispatcher bookkeeping under the Fig. 10 stress\n");
    out.push_str(&format!(
        "historical: {:5.1}% buggy   fixed: {:5.1}% buggy ({:5.1}% completed)\n\n",
        dispatcher.historical_pct_buggy,
        dispatcher.fixed_pct_buggy,
        dispatcher.fixed_pct_completed
    ));
    out.push_str("Ablation 2 — blocking vs non-blocking Chandy–Lamport\n");
    out.push_str("style         no-fault time (s)    faulty time (s)      %non-term\n");
    for s in styles {
        out.push_str(&format!(
            "{:<12} {}  {}   {:>8.1}\n",
            s.style,
            fmt_time(s.fault_free.mean_time_s, s.fault_free.std_time_s),
            fmt_time(s.faulty.mean_time_s, s.faulty.std_time_s),
            s.faulty.pct_non_terminating(),
        ));
    }
    out.push_str("\nAblation 3 — checkpoint wave period\n");
    out.push_str("period   no-fault time (s)    faulty time (s)      %non-term\n");
    for p in periods {
        out.push_str(&format!(
            "{:>4} s  {}  {}   {:>8.1}\n",
            p.period_s,
            fmt_time(p.fault_free.mean_time_s, p.fault_free.std_time_s),
            fmt_time(p.faulty.mean_time_s, p.faulty.std_time_s),
            p.faulty.pct_non_terminating(),
        ));
    }
    out.push_str("\nAblation 4 — V-protocol comparison under identical scenarios (Vcl / V2 / Vdummy)\n");
    out.push_str("protocol  faults        exec time (s)      %non-term\n");
    for p in protocols {
        let label = match p.interval_s {
            None => "none".to_string(),
            Some(x) => format!("1/{x}s"),
        };
        out.push_str(&format!(
            "{:<9} {:<12} {}   {:>8.1}\n",
            p.protocol,
            label,
            fmt_time(p.summary.mean_time_s, p.summary.std_time_s),
            p.summary.pct_non_terminating(),
        ));
    }
    out
}
