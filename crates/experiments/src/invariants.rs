//! Structural invariants of execution traces.
//!
//! Every run of the MPICH-Vcl cluster — faulty, frozen or clean — must
//! produce a trace that tells a *coherent* story. [`validate_trace`] checks
//! that story mechanically; the property tests at the repository root run
//! it over randomized fault schedules, so a regression anywhere in the
//! protocol stack that garbles event ordering fails loudly.

use failmpi_sim::TraceEntry;
use failmpi_mpichv::{Cluster, VclEvent};

/// Checks the trace of a finished run. Returns a description of the first
/// violated invariant, or `Ok(())`.
pub fn validate_trace(cluster: &Cluster) -> Result<(), String> {
    let complete = cluster.is_complete().then(|| cluster.config().n_ranks);
    validate_entries(cluster.trace().entries(), complete)
}

/// The trace-level core of [`validate_trace`]: checks bare entries, with
/// `completed_ranks = Some(n)` when the job completed with `n` ranks (the
/// completion invariants need that context). Exposed so tests can validate
/// — and deliberately corrupt — hand-built traces.
pub fn validate_entries(
    entries: &[TraceEntry<VclEvent>],
    completed_ranks: Option<u32>,
) -> Result<(), String> {

    // 1. Timestamps are non-decreasing (the engine guarantees this; the
    //    trace must not reorder).
    for w in entries.windows(2) {
        if w[1].at < w[0].at {
            return Err(format!(
                "trace went backwards: {:?} after {:?}",
                w[1], w[0]
            ));
        }
    }

    // 2. Wave numbering: WaveStarted strictly increasing; every
    //    WaveCommitted matches the latest started wave; commits strictly
    //    increasing.
    let mut last_started = 0u32;
    let mut last_committed = 0u32;
    for e in entries {
        match e.kind {
            VclEvent::WaveStarted { wave } => {
                if wave <= last_started {
                    return Err(format!("wave {wave} started after {last_started}"));
                }
                last_started = wave;
            }
            VclEvent::WaveCommitted { wave } => {
                if wave != last_started {
                    return Err(format!(
                        "wave {wave} committed but {last_started} was the last started"
                    ));
                }
                if wave <= last_committed {
                    return Err(format!("wave {wave} committed after {last_committed}"));
                }
                last_committed = wave;
            }
            _ => {}
        }
    }

    // 3. Epoch coherence: RecoveryStarted carries 1, 2, … in order, and
    //    every epoch-e recovery is preceded by a FailureDetected outside a
    //    recovery window.
    let mut expected_epoch = 1u32;
    for e in entries {
        if let VclEvent::RecoveryStarted { epoch } = e.kind {
            if epoch != expected_epoch {
                return Err(format!(
                    "recovery epoch {epoch}, expected {expected_epoch}"
                ));
            }
            expected_epoch += 1;
        }
    }
    let fresh_failures = entries
        .iter()
        .filter(
            |e| matches!(e.kind, VclEvent::FailureDetected { during_recovery: false, .. }),
        )
        .count();
    let recoveries = (expected_epoch - 1) as usize;
    if fresh_failures != recoveries {
        return Err(format!(
            "{fresh_failures} fresh failures but {recoveries} recoveries"
        ));
    }

    // 4. Per-rank progress is non-decreasing between consecutive resumes
    //    (a rollback may reset it, but only after a RankResumed).
    // 5. A complete job ends with JobComplete as its last lifecycle event,
    //    after every rank finalized in its final incarnation.
    if let Some(n) = completed_ranks {
        let complete_at = entries
            .iter()
            .rev()
            .find(|e| matches!(e.kind, VclEvent::JobComplete))
            .ok_or("complete job without JobComplete")?;
        let finalized = entries
            .iter()
            .filter(|e| {
                matches!(e.kind, VclEvent::RankFinalized { .. }) && e.at <= complete_at.at
            })
            .count();
        if (finalized as u32) < n {
            return Err(format!(
                "job complete with only {finalized}/{n} finalizations"
            ));
        }
    }

    // 6. Every DaemonRegistered has a DaemonSpawned for the same rank and
    //    epoch somewhere before it.
    for (i, e) in entries.iter().enumerate() {
        if let VclEvent::DaemonRegistered { rank, epoch } = e.kind {
            let spawned = entries[..i].iter().any(|p| {
                matches!(p.kind, VclEvent::DaemonSpawned { rank: r, epoch: ep, .. }
                    if r == rank && ep == epoch)
            });
            if !spawned {
                return Err(format!(
                    "rank {rank:?} registered for epoch {epoch} without a spawn"
                ));
            }
        }
    }

    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{ExperimentSpec, InjectionSpec, Workload};
    use crate::figures::FIG5_SRC;
    use failmpi_sim::{SimDuration, SimTime};
    use failmpi_mpichv::VclConfig;
    use failmpi_workloads::BtClass;

    fn spec(seed: u64) -> ExperimentSpec {
        let mut cluster = VclConfig::small(4, SimDuration::from_secs(2));
        cluster.ssh_stagger = SimDuration::from_millis(20);
        cluster.restart_overhead = SimDuration::from_millis(400);
        cluster.terminate_delay = SimDuration::from_millis(30);
        ExperimentSpec {
            cluster,
            workload: Workload::Bt(BtClass::S),
            injection: None,
            timeout: SimTime::from_secs(90),
            freeze_window: SimDuration::from_secs(9),
            seed,
            tie_break: failmpi_sim::TieBreak::Fifo,
            backend: failmpi_backend::BackendKind::Vcl,
        }
    }

    /// `run_one` consumes the cluster; re-run via the harness internals to
    /// get the final cluster for validation.
    fn validate_run(spec: &ExperimentSpec) {
        let cluster = crate::harness::run_one_keeping_cluster(spec).1;
        validate_trace(&cluster).expect("trace invariants");
    }

    #[test]
    fn clean_run_trace_is_coherent() {
        validate_run(&spec(1));
    }

    #[test]
    fn faulty_run_trace_is_coherent() {
        let mut s = spec(2);
        s.injection = Some(
            InjectionSpec::new(FIG5_SRC, "ADV1", "ADVnodes")
                .with_param("X", 4)
                .with_param("N", 5),
        );
        validate_run(&s);
    }

    #[test]
    fn starved_run_trace_is_coherent() {
        let mut s = spec(3);
        s.injection = Some(
            InjectionSpec::new(FIG5_SRC, "ADV1", "ADVnodes")
                .with_param("X", 1)
                .with_param("N", 5),
        );
        validate_run(&s);
    }

    // ---- hand-built traces: validate_entries must reject corruption ----

    use failmpi_mpi::Rank;
    use failmpi_net::HostId;

    fn e(at_s: u64, kind: VclEvent) -> TraceEntry<VclEvent> {
        TraceEntry::new(SimTime::from_secs(at_s), kind)
    }

    /// A small coherent story: spawn/register two daemons, run, survive one
    /// failure, commit a wave, finish.
    fn coherent_trace() -> Vec<TraceEntry<VclEvent>> {
        vec![
            e(0, VclEvent::DaemonSpawned { rank: Rank(0), epoch: 0, host: HostId(0) }),
            e(0, VclEvent::DaemonSpawned { rank: Rank(1), epoch: 0, host: HostId(1) }),
            e(1, VclEvent::DaemonRegistered { rank: Rank(0), epoch: 0 }),
            e(1, VclEvent::DaemonRegistered { rank: Rank(1), epoch: 0 }),
            e(2, VclEvent::RunStarted { epoch: 0 }),
            e(4, VclEvent::WaveStarted { wave: 1 }),
            e(5, VclEvent::WaveCommitted { wave: 1 }),
            e(
                6,
                VclEvent::FailureDetected { rank: Rank(1), epoch: 0, during_recovery: false },
            ),
            e(7, VclEvent::RecoveryStarted { epoch: 1 }),
            e(7, VclEvent::DaemonSpawned { rank: Rank(1), epoch: 1, host: HostId(2) }),
            e(8, VclEvent::DaemonRegistered { rank: Rank(1), epoch: 1 }),
            e(9, VclEvent::RunStarted { epoch: 1 }),
            e(20, VclEvent::RankFinalized { rank: Rank(0) }),
            e(20, VclEvent::RankFinalized { rank: Rank(1) }),
            e(21, VclEvent::JobComplete),
        ]
    }

    #[test]
    fn coherent_hand_built_trace_passes() {
        validate_entries(&coherent_trace(), Some(2)).expect("coherent trace");
    }

    #[test]
    fn rejects_backwards_timestamps() {
        let mut t = coherent_trace();
        t[4].at = SimTime::from_secs(100);
        let err = validate_entries(&t, Some(2)).unwrap_err();
        assert!(err.contains("backwards"), "got: {err}");
    }

    #[test]
    fn rejects_commit_of_unstarted_wave() {
        let mut t = coherent_trace();
        // Commit wave 2 while wave 1 is the latest started.
        t.insert(7, e(5, VclEvent::WaveCommitted { wave: 2 }));
        let err = validate_entries(&t, Some(2)).unwrap_err();
        assert!(err.contains("committed"), "got: {err}");
    }

    #[test]
    fn rejects_skipped_recovery_epoch() {
        let mut t = coherent_trace();
        for entry in &mut t {
            if let VclEvent::RecoveryStarted { epoch } = &mut entry.kind {
                *epoch = 2; // first recovery must carry epoch 1
            }
        }
        let err = validate_entries(&t, Some(2)).unwrap_err();
        assert!(err.contains("epoch"), "got: {err}");
    }

    #[test]
    fn rejects_recovery_without_failure() {
        let mut t = coherent_trace();
        t.retain(|entry| {
            !matches!(entry.kind, VclEvent::FailureDetected { during_recovery: false, .. })
        });
        let err = validate_entries(&t, Some(2)).unwrap_err();
        assert!(err.contains("failures"), "got: {err}");
    }

    #[test]
    fn rejects_registration_without_spawn() {
        let mut t = coherent_trace();
        t.retain(|entry| {
            !matches!(entry.kind, VclEvent::DaemonSpawned { rank: Rank(1), epoch: 1, .. })
        });
        let err = validate_entries(&t, Some(2)).unwrap_err();
        assert!(err.contains("without a spawn"), "got: {err}");
    }

    #[test]
    fn rejects_completion_with_missing_finalizations() {
        let t = coherent_trace();
        // Claim 3 ranks completed while only 2 finalized.
        let err = validate_entries(&t, Some(3)).unwrap_err();
        assert!(err.contains("finalizations"), "got: {err}");
    }

    #[test]
    fn rejects_completion_without_job_complete() {
        let mut t = coherent_trace();
        t.retain(|entry| !matches!(entry.kind, VclEvent::JobComplete));
        let err = validate_entries(&t, Some(2)).unwrap_err();
        assert!(err.contains("JobComplete"), "got: {err}");
    }
}
