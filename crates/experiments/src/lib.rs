//! # failmpi-experiments — the paper's evaluation, regenerated
//!
//! This crate binds the two halves of the reproduction together — the
//! FAIL-MPI injection middleware (`failmpi-core`) and the simulated
//! MPICH-Vcl deployment (`failmpi-mpichv`) — and drives every experiment of
//! the paper's Sec. 5:
//!
//! | id | content | module |
//! |----|---------|--------|
//! | Table 1 | fault-injector capability matrix | [`criteria`] |
//! | Fig. 5 | impact of fault frequency | [`figures::fig5`] |
//! | Fig. 6 | impact of scale | [`figures::fig6`] |
//! | Fig. 7 | impact of simultaneous faults | [`figures::fig7`] |
//! | Fig. 9 | synchronized faults (first recovery wave) | [`figures::fig9`] |
//! | Fig. 11 | state-synchronized faults (`localMPI_setCommand`) | [`figures::fig11`] |
//! | — | dispatcher & checkpoint-style ablations | [`figures::ablation`] |
//!
//! Each figure has a binary of the same name (`cargo run --release -p
//! failmpi-experiments --bin fig5`) printing the series the paper plots,
//! and a smoke-scale variant used by tests and criterion benches.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod classify;
pub mod cli;
pub mod criteria;
pub mod crosscheck;
pub mod figures;
pub mod harness;
pub mod invariants;
pub mod metrics;
pub mod profsink;
pub mod robustness;
pub mod timeline;
pub mod stats;
pub mod sweep;
pub mod tracesink;

/// Re-export for [`install_alloc_profiler`] expansions (feature
/// `alloc-profile`).
#[cfg(feature = "alloc-profile")]
pub use failmpi_obs::CountingAlloc;

/// Installs the counting global allocator in the calling binary when it
/// is built with the `alloc-profile` feature, and expands to nothing
/// otherwise. Every figure/driver binary calls this once at top level so
/// that `--features alloc-profile` turns `--profile` output from
/// copy/queue/span telemetry into full allocation attribution:
///
/// ```text
/// cargo run --release -p failmpi-experiments --features alloc-profile \
///     --bin fig5 -- --smoke --profile fig5-profile.json
/// ```
#[macro_export]
macro_rules! install_alloc_profiler {
    () => {
        #[cfg(feature = "alloc-profile")]
        #[global_allocator]
        static FAILMPI_COUNTING_ALLOC: $crate::CountingAlloc = $crate::CountingAlloc;
    };
}

pub use classify::{classify_entries, Outcome};
pub use failmpi_backend::{BackendConfig, BackendKind, ProtocolBackend};
pub use crosscheck::{
    backend_crosscheck_one, backend_figure_matrix, backend_matrix, crosscheck_builtins,
    crosscheck_builtins_mode, crosscheck_one, figure_matrix, render_backend_matrix,
    render_matrix, runnable_builtins, smoke_spec_for, verdicts_agree, BackendMatrixRow,
    CrosscheckRow, MatrixRow,
};
pub use harness::{
    default_backend, lint_injection, run_one, run_one_instrumented, run_one_keeping_cluster,
    run_one_profiled, run_one_traced, run_one_with_trace, set_default_backend, set_default_expect_freeze, try_run_one,
    ExperimentSpec, InjectionSpec, LintMode, RunRecord, TracedRun, Workload,
};
pub use invariants::{validate_entries, validate_trace};
