//! Static-vs-dynamic crosscheck: for every runnable builtin figure
//! scenario, compare the model checker's pre-run verdict
//! ([`failmpi_analyze::StaticVerdict`]) against what the dynamic
//! simulator's classifier actually observes over a seed sweep.
//!
//! The agreement contract is asymmetric, because the two sides answer
//! different questions — the model checker decides *reachability* of a
//! freeze over all abstract schedules, the classifier observes *one
//! concrete schedule per seed*:
//!
//! * static **freezes** — at least one sweep seed must be classified
//!   [`crate::classify::Outcome::Buggy`] (the witness schedule is
//!   concretely realizable);
//! * static **survives** — no sweep seed may be classified `Buggy` (a
//!   dynamic freeze the model misses would be a soundness hole);
//! * static **unknown** (budget exhausted) — vacuously consistent.
//!
//! [`crate::classify::Outcome::NonTerminating`] agrees with a surviving
//! verdict: livelock (the paper's too-high fault frequency) is not a
//! freeze, statically (FC004, a warning) or dynamically (green vs red
//! bars in the figures).
//!
//! Both dispatcher variants are first-class: the historical mode carries
//! the paper's stale-entry bug, the fixed mode is the repaired reference
//! where any freeze — static or dynamic — is a genuinely unknown protocol
//! bug. The scenario fuzzer (`failmpi-fuzz`) leans on exactly this
//! two-mode contract as its oracle, so both modes are exercised end-to-end
//! here.

use failmpi_analyze::{model_check_source, ModelCheckConfig, StaticVerdict};
use failmpi_backend::BackendKind;
use failmpi_mpichv::DispatcherMode;
use failmpi_workloads::BtClass;

use crate::figures::{self, DELAY_SRC, FIG10_SRC, FIG5_SRC, FIG7_SRC, FIG8_SRC};
use crate::harness::{run_one, ExperimentSpec, InjectionSpec};
use crate::robustness::outcome_class;

/// One scenario's static verdict next to its dynamic seed sweep.
#[derive(Clone, Debug)]
pub struct CrosscheckRow {
    /// Scenario label (paper figure).
    pub name: &'static str,
    /// Dispatcher variant both sides ran against.
    pub mode: DispatcherMode,
    /// The model checker's pre-run verdict.
    pub static_verdict: StaticVerdict,
    /// Product states the exploration expanded.
    pub explored: usize,
    /// `(seed, outcome class)` per dynamic run.
    pub dynamic: Vec<(u64, &'static str)>,
    /// Whether the two sides satisfy the agreement contract.
    pub agrees: bool,
}

/// One runnable builtin: `(name, source, machine class, smoke-scale
/// parameter overrides)`.
type BuiltinScenario = (&'static str, &'static str, &'static str, &'static [(&'static str, i64)]);

/// The runnable builtin scenarios. Fig. 4 is a class library with no
/// deployment and is deliberately absent.
const SCENARIOS: &[BuiltinScenario] = &[
    ("fig5_frequency", FIG5_SRC, "ADVnodes", &[("X", 4), ("N", 5)]),
    (
        "fig7_simultaneous",
        FIG7_SRC,
        "ADVnodes",
        &[("X", 2), ("T", 4), ("N", 5)],
    ),
    ("fig8_synchronized", FIG8_SRC, "ADVnodes", &[("T", 2), ("N", 5)]),
    ("fig10_state_sync", FIG10_SRC, "ADVG1", &[("T", 2), ("N", 5)]),
    ("delay_injection", DELAY_SRC, "ADVnodes", &[("D", 1), ("N", 5)]),
];

/// The runnable builtins as `(name, source, machine class, smoke params)`
/// rows — the mutation seed pool of the scenario fuzzer.
pub fn runnable_builtins() -> &'static [BuiltinScenario] {
    SCENARIOS
}

/// The smoke-scale spec the crosscheck (and the scenario fuzzer) runs a
/// scenario under: 4 ranks on 6 machines, class-S BT, miniaturized
/// recovery constants, 90 s virtual timeout.
pub fn smoke_spec_for(
    src: &str,
    machine: &str,
    params: &[(&str, i64)],
    seed: u64,
    mode: DispatcherMode,
) -> ExperimentSpec {
    let mut cluster = figures::cluster_config(4, 6, 2, mode);
    figures::miniaturize(&mut cluster);
    let mut inj = InjectionSpec::new(src, "ADV1", machine);
    for (k, v) in params {
        inj = inj.with_param(k, *v);
    }
    figures::spec(cluster, BtClass::S, Some(inj), 90, seed)
}

/// Whether a static verdict and a dynamic sweep satisfy the asymmetric
/// agreement contract (see the module docs). Shared with the fuzzer's
/// oracle so both sides flag disagreements identically.
pub fn verdicts_agree(static_verdict: StaticVerdict, any_dynamic_buggy: bool) -> bool {
    match static_verdict {
        StaticVerdict::Freezes => any_dynamic_buggy,
        StaticVerdict::Survives => !any_dynamic_buggy,
        StaticVerdict::Unknown | StaticVerdict::NotApplicable => true,
    }
}

/// Crosschecks one scenario source over `seeds` dynamic runs under the
/// given dispatcher mode. `name` only labels the row.
pub fn crosscheck_one(
    name: &'static str,
    src: &str,
    machine: &str,
    params: &[(&str, i64)],
    seeds: &[u64],
    mode: DispatcherMode,
) -> CrosscheckRow {
    let cfg = ModelCheckConfig {
        params: params.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
        mode,
        ..ModelCheckConfig::default()
    };
    let st = model_check_source(src, &cfg);
    let dynamic: Vec<(u64, &'static str)> = seeds
        .iter()
        .map(|&seed| {
            let record = run_one(&smoke_spec_for(src, machine, params, seed, mode));
            (seed, outcome_class(&record.outcome))
        })
        .collect();
    let any_buggy = dynamic.iter().any(|(_, c)| *c == "buggy");
    CrosscheckRow {
        name,
        mode,
        static_verdict: st.summary.verdict,
        explored: st.summary.explored,
        dynamic,
        agrees: verdicts_agree(st.summary.verdict, any_buggy),
    }
}

/// Crosschecks every runnable builtin scenario over `seeds` dynamic runs
/// under the historical (paper-bug) dispatcher.
pub fn crosscheck_builtins(seeds: &[u64]) -> Vec<CrosscheckRow> {
    crosscheck_builtins_mode(seeds, DispatcherMode::Historical)
}

/// Crosschecks every runnable builtin under one dispatcher variant. The
/// fixed mode closes the fuzzer's main oracle blind spot: a freeze there
/// (static or dynamic) is a surviving-protocol bug, not the known Fig. 10
/// defect.
pub fn crosscheck_builtins_mode(seeds: &[u64], mode: DispatcherMode) -> Vec<CrosscheckRow> {
    SCENARIOS
        .iter()
        .map(|(name, src, machine, params)| {
            crosscheck_one(name, src, machine, params, seeds, mode)
        })
        .collect()
}

/// One cell of the paper-scale figure matrix: a builtin figure scenario
/// model-checked at grid scale under one dispatcher variant, with the
/// reduced exploration.
#[derive(Clone, Debug)]
pub struct MatrixRow {
    /// Scenario label (paper figure).
    pub name: &'static str,
    /// Dispatcher variant.
    pub mode: DispatcherMode,
    /// MPI ranks in the abstract deployment (hosts = ranks + 1).
    pub n_ranks: usize,
    /// The checker's verdict at this scale.
    pub verdict: StaticVerdict,
    /// Canonical states expanded.
    pub explored: usize,
    /// Canonical states interned (explored + frontier, deduplicated).
    pub interned: usize,
    /// Successors merged into an already-interned orbit representative.
    pub orbit_hits: usize,
    /// Commuting deliveries pruned by the ample-set filter.
    pub por_pruned: usize,
    /// Minimal witness cost when the verdict is `Freezes`.
    pub witness_cost: Option<(usize, usize)>,
}

/// Model-checks every runnable builtin at `n_ranks` grid scale (hosts =
/// ranks + 1, the one-spare shape), both dispatcher variants, with the
/// reduced exploration — the paper's figure-by-figure verdict matrix.
/// `budget` bounds each exploration; the 25-rank matrix completes well
/// inside the `failck` default.
pub fn figure_matrix(n_ranks: usize, budget: usize) -> Vec<MatrixRow> {
    let mut out = Vec::new();
    for (name, src, _machine, params) in SCENARIOS {
        for mode in [DispatcherMode::Historical, DispatcherMode::Fixed] {
            let cfg = ModelCheckConfig {
                params: params.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
                mode,
                n_ranks,
                n_hosts: n_ranks + 1,
                budget,
                reduce: true,
                ..ModelCheckConfig::default()
            };
            let r = model_check_source(src, &cfg);
            out.push(MatrixRow {
                name,
                mode,
                n_ranks,
                verdict: r.summary.verdict,
                explored: r.summary.explored,
                interned: r.summary.interned,
                orbit_hits: r.summary.orbit_hits,
                por_pruned: r.summary.por_pruned,
                witness_cost: r.summary.witness.as_ref().map(|w| (w.faults, w.steps.len())),
            });
        }
    }
    out
}

/// One cell of the cross-backend differential matrix: a builtin figure
/// scenario checked statically *and* swept dynamically under one protocol
/// backend, both sides at the same smoke deployment scale (4 ranks on 6
/// machines), historical dispatcher.
#[derive(Clone, Debug)]
pub struct BackendMatrixRow {
    /// Scenario label (paper figure).
    pub name: &'static str,
    /// Protocol backend both sides ran against.
    pub backend: BackendKind,
    /// The model checker's pre-run verdict for this backend's abstract
    /// model at the smoke scale.
    pub static_verdict: StaticVerdict,
    /// Product states the exploration expanded.
    pub explored: usize,
    /// `(seed, outcome class)` per dynamic run under this backend's
    /// runtime.
    pub dynamic: Vec<(u64, &'static str)>,
    /// Whether the two sides satisfy the same asymmetric agreement
    /// contract the Vcl crosscheck uses ([`verdicts_agree`]).
    pub agrees: bool,
}

/// Crosschecks one builtin under one protocol backend: static verdict at
/// the smoke deployment scale next to the dynamic seed sweep through that
/// backend's runtime.
pub fn backend_crosscheck_one(
    name: &'static str,
    src: &str,
    machine: &str,
    params: &[(&str, i64)],
    seeds: &[u64],
    backend: BackendKind,
) -> BackendMatrixRow {
    let cfg = ModelCheckConfig {
        backend,
        n_ranks: 4,
        n_hosts: 6,
        params: params.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
        mode: DispatcherMode::Historical,
        // The 4-rank product needs the orbit quotient to stay definitive
        // inside the default budget (the 2-rank Vcl crosscheck does not).
        reduce: true,
        ..ModelCheckConfig::default()
    };
    let st = model_check_source(src, &cfg);
    let dynamic: Vec<(u64, &'static str)> = seeds
        .iter()
        .map(|&seed| {
            let spec = smoke_spec_for(src, machine, params, seed, DispatcherMode::Historical)
                .with_backend(backend);
            let record = run_one(&spec);
            (seed, outcome_class(&record.outcome))
        })
        .collect();
    let any_buggy = dynamic.iter().any(|(_, c)| *c == "buggy");
    BackendMatrixRow {
        name,
        backend,
        static_verdict: st.summary.verdict,
        explored: st.summary.explored,
        dynamic,
        agrees: verdicts_agree(st.summary.verdict, any_buggy),
    }
}

/// The full cross-backend differential matrix: every runnable builtin ×
/// every protocol backend × the given seeds. The interesting rows are the
/// ones where backends *disagree* for protocol reasons — the Fig. 10
/// dispatcher bug is Vcl-specific (ULFM shrinks past it), random kills
/// freeze ULFM only by eating the whole job, and replication converts
/// any fault on an unprotected primary into an immediate loss.
pub fn backend_matrix(seeds: &[u64]) -> Vec<BackendMatrixRow> {
    let mut out = Vec::new();
    for (name, src, machine, params) in SCENARIOS {
        for backend in BackendKind::all() {
            out.push(backend_crosscheck_one(name, src, machine, params, seeds, backend));
        }
    }
    out
}

/// Model-checks every runnable builtin at `n_ranks` grid scale under one
/// backend (hosts = ranks + 1, reduced exploration) — the per-backend
/// analogue of [`figure_matrix`], historical dispatcher only since the
/// dispatcher variant is a Vcl concept.
pub fn backend_figure_matrix(
    backend: BackendKind,
    n_ranks: usize,
    budget: usize,
) -> Vec<MatrixRow> {
    SCENARIOS
        .iter()
        .map(|(name, src, _machine, params)| {
            let cfg = ModelCheckConfig {
                backend,
                params: params.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
                mode: DispatcherMode::Historical,
                n_ranks,
                n_hosts: n_ranks + 1,
                budget,
                reduce: true,
                ..ModelCheckConfig::default()
            };
            let r = model_check_source(src, &cfg);
            MatrixRow {
                name,
                mode: DispatcherMode::Historical,
                n_ranks,
                verdict: r.summary.verdict,
                explored: r.summary.explored,
                interned: r.summary.interned,
                orbit_hits: r.summary.orbit_hits,
                por_pruned: r.summary.por_pruned,
                witness_cost: r.summary.witness.as_ref().map(|w| (w.faults, w.steps.len())),
            }
        })
        .collect()
}

/// Renders the cross-backend matrix as an aligned table (the CI artifact).
pub fn render_backend_matrix(rows: &[BackendMatrixRow]) -> String {
    let mut out =
        String::from("scenario              backend  static    explored  dynamic\n");
    for r in rows {
        let dyns: Vec<String> = r.dynamic.iter().map(|(s, c)| format!("{s}:{c}")).collect();
        out.push_str(&format!(
            "{:<21} {:<8} {:<9} {:<9} {}{}\n",
            r.name,
            r.backend.name(),
            r.static_verdict.to_string(),
            r.explored,
            dyns.join(" "),
            if r.agrees { "" } else { "  [DISAGREES]" }
        ));
    }
    out
}

/// Renders the figure matrix as an aligned table (the CI artifact).
pub fn render_matrix(rows: &[MatrixRow]) -> String {
    let mut out = String::from(
        "scenario              mode        ranks  verdict   explored  orbit-hits  por-pruned  witness\n",
    );
    for r in rows {
        let witness = match r.witness_cost {
            Some((faults, steps)) => format!("{faults} fault(s) / {steps} step(s)"),
            None => "-".to_string(),
        };
        out.push_str(&format!(
            "{:<21} {:<11} {:<6} {:<9} {:<9} {:<11} {:<11} {}\n",
            r.name,
            match r.mode {
                DispatcherMode::Historical => "historical",
                DispatcherMode::Fixed => "fixed",
            },
            r.n_ranks,
            r.verdict.to_string(),
            r.explored,
            r.orbit_hits,
            r.por_pruned,
            witness
        ));
    }
    out
}

/// Renders the crosscheck as an aligned table (the CI artifact).
pub fn render(rows: &[CrosscheckRow]) -> String {
    let mut out = String::from("scenario              mode        static    dynamic\n");
    for r in rows {
        let dyns: Vec<String> = r
            .dynamic
            .iter()
            .map(|(s, c)| format!("{s}:{c}"))
            .collect();
        out.push_str(&format!(
            "{:<21} {:<11} {:<9} {}{}\n",
            r.name,
            match r.mode {
                DispatcherMode::Historical => "historical",
                DispatcherMode::Fixed => "fixed",
            },
            r.static_verdict.to_string(),
            dyns.join(" "),
            if r.agrees { "" } else { "  [DISAGREES]" }
        ));
    }
    out
}
