//! Regenerates Figure 5 (impact of fault frequency).

use failmpi_experiments::cli::Options;
use failmpi_experiments::figures::fig5;

fn main() {
    let opts = match Options::parse(std::env::args().skip(1)) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let mut cfg = if opts.smoke {
        fig5::Config::smoke()
    } else {
        fig5::Config::paper()
    };
    if let Some(r) = opts.runs {
        cfg.runs = r;
    }
    if let Some(t) = opts.threads {
        cfg.threads = t;
    }
    let data = fig5::run(&cfg);
    print!("{}", fig5::render(&data));
    opts.maybe_write_json(&data).expect("write json");
}
