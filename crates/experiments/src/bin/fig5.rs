//! Regenerates Figure 5 (impact of fault frequency).

use failmpi_experiments::figures::{fig5, run_figure_main};

failmpi_experiments::install_alloc_profiler!();

fn main() {
    run_figure_main(
        |smoke| {
            if smoke {
                fig5::Config::smoke()
            } else {
                fig5::Config::paper()
            }
        },
        fig5::run,
        fig5::render,
    );
}
