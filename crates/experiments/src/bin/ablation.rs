//! Runs the dispatcher / checkpoint-style / wave-period ablations.

use failmpi_experiments::figures::{ablation, run_figure_main};

failmpi_experiments::install_alloc_profiler!();

fn main() {
    run_figure_main(
        |smoke| {
            if smoke {
                ablation::Config::smoke()
            } else {
                ablation::Config::paper()
            }
        },
        |cfg| {
            (
                ablation::dispatcher(cfg),
                ablation::checkpoint_style(cfg),
                ablation::checkpoint_period(cfg),
                ablation::protocol(cfg),
            )
        },
        |(d, s, p, v)| ablation::render(d, s, p, v),
    );
}
