//! Runs the dispatcher / checkpoint-style / wave-period ablations.

use failmpi_experiments::cli::Options;
use failmpi_experiments::figures::ablation;

fn main() {
    let opts = match Options::parse(std::env::args().skip(1)) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let mut cfg = if opts.smoke {
        ablation::Config::smoke()
    } else {
        ablation::Config::paper()
    };
    if let Some(r) = opts.runs {
        cfg.runs = r;
    }
    if let Some(t) = opts.threads {
        cfg.threads = t;
    }
    let d = ablation::dispatcher(&cfg);
    let s = ablation::checkpoint_style(&cfg);
    let p = ablation::checkpoint_period(&cfg);
    let v = ablation::protocol(&cfg);
    print!("{}", ablation::render(&d, &s, &p, &v));
    opts.maybe_write_json(&(d, s, p, v)).expect("write json");
}
