//! `soak` — the determinism & schedule-robustness soak driver.
//!
//! Runs a small suite of smoke-scale scenarios, each of which is
//! (1) double-run under the canonical FIFO schedule to detect any
//! nondeterminism, and (2) swept across perturbed same-instant event
//! orderings ([`failmpi_sim::TieBreak::Seeded`]) with the trace
//! invariants validated on every run. The Fig. 10 dispatcher stress runs
//! under both dispatcher variants, asserting the paper's claim across the
//! whole interleaving sample: the historical dispatcher freezes on every
//! schedule, the fixed one on none.
//!
//! Exits non-zero on any divergence, invariant violation, or broken
//! classification expectation, so CI can run it as a smoke gate:
//!
//! ```text
//! cargo run --release -p failmpi-experiments --bin soak -- --runs 25 --json soak.json
//! ```

use std::collections::BTreeMap;
use std::process::ExitCode;

use serde::Serialize;

use failmpi_experiments::robustness::{
    fault_free_smoke_spec, fig10_stress_spec, perturb,
};
use failmpi_experiments::{run_one, ExperimentSpec};
use failmpi_mpichv::DispatcherMode;

failmpi_experiments::install_alloc_profiler!();

/// What every perturbed run of one scenario must classify as, if pinned.
enum Expect {
    /// Every run must land in this class.
    All(&'static str),
    /// No run may land in this class.
    Never(&'static str),
}

struct Scenario {
    name: &'static str,
    spec: ExperimentSpec,
    expect: Expect,
}

#[derive(Serialize)]
struct ScenarioReport {
    name: String,
    runs: usize,
    divergences: usize,
    invariant_violations: usize,
    distinct_schedules: usize,
    histogram: BTreeMap<String, usize>,
    expectation_met: bool,
}

#[derive(Serialize)]
struct SoakReport {
    runs_per_scenario: usize,
    backend: String,
    base_seed: u64,
    total_runs: usize,
    total_divergences: usize,
    total_invariant_violations: usize,
    passed: bool,
    scenarios: Vec<ScenarioReport>,
}

struct Options {
    runs: usize,
    seed: u64,
    backend: failmpi_backend::BackendKind,
    json: Option<String>,
    metrics: Option<String>,
    trace_out: Option<String>,
    profile: Option<String>,
}

fn parse(args: impl Iterator<Item = String>) -> Result<Options, String> {
    let mut o = Options {
        runs: 25,
        seed: 0x50AC,
        backend: failmpi_backend::BackendKind::Vcl,
        json: None,
        metrics: None,
        trace_out: None,
        profile: None,
    };
    let mut args = args.peekable();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--runs" => {
                o.runs = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--runs needs a number")?
            }
            "--seed" => {
                o.seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--seed needs a number")?
            }
            "--backend" => {
                let kind = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--backend needs vcl|ulfm|replica")?;
                failmpi_experiments::set_default_backend(kind);
                o.backend = kind;
            }
            "--json" => o.json = Some(args.next().ok_or("--json needs a path")?),
            "--metrics" => o.metrics = Some(args.next().ok_or("--metrics needs a path")?),
            "--trace-out" => {
                o.trace_out = Some(args.next().ok_or("--trace-out needs a path")?)
            }
            "--profile" => {
                o.profile = Some(args.next().ok_or("--profile needs a path")?)
            }
            "--help" | "-h" => {
                return Err(
                    "usage: soak [--runs N] [--seed S] [--backend vcl|ulfm|replica] \
                     [--json PATH] [--metrics PATH] [--trace-out PATH] [--profile PATH]"
                        .to_string(),
                )
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(o)
}

/// Double-runs the canonical (FIFO) schedule; 1 on fingerprint mismatch.
fn divergences(spec: &ExperimentSpec) -> usize {
    let a = run_one(spec).fingerprint;
    let b = run_one(spec).fingerprint;
    usize::from(a != b)
}

fn main() -> ExitCode {
    let opts = match parse(std::env::args().skip(1)) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    if opts.metrics.is_some() {
        failmpi_experiments::metrics::install_sink();
    }
    // The sink claims the first run to start — here the first FIFO
    // double-run of the first scenario, which runs before any perturbation
    // sweep, so the captured trace is deterministic.
    if opts.trace_out.is_some() {
        failmpi_experiments::tracesink::install_sink();
    }
    if opts.profile.is_some() {
        failmpi_experiments::profsink::install_sink();
    }

    // The classification pins are protocol-specific: the Fig. 10 stress
    // freezes every Vcl schedule (the dispatcher bug), completes under
    // ULFM's shrink-and-continue, and flickers under replication (the
    // verdict tracks where the faults land, so only livelock is
    // excluded). Determinism and schedule-robustness are checked
    // identically everywhere.
    use failmpi_backend::BackendKind;
    let fig10_expect = |mode: DispatcherMode| match (opts.backend, mode) {
        (BackendKind::Vcl, DispatcherMode::Historical) => Expect::All("buggy"),
        (BackendKind::Vcl, DispatcherMode::Fixed) => Expect::Never("buggy"),
        (BackendKind::Ulfm, _) => Expect::All("completed"),
        (BackendKind::Replica, _) => Expect::Never("non-terminating"),
    };
    let scenarios = vec![
        Scenario {
            name: "fault-free",
            spec: fault_free_smoke_spec(opts.seed),
            expect: Expect::All("completed"),
        },
        Scenario {
            name: "fig10-buggy",
            spec: fig10_stress_spec(DispatcherMode::Historical, opts.seed),
            expect: fig10_expect(DispatcherMode::Historical),
        },
        Scenario {
            name: "fig10-fixed",
            spec: fig10_stress_spec(DispatcherMode::Fixed, opts.seed),
            expect: fig10_expect(DispatcherMode::Fixed),
        },
    ];

    let mut reports = Vec::new();
    for sc in &scenarios {
        let divergences = divergences(&sc.spec);
        let report = perturb(sc.name, &sc.spec, opts.runs);
        let violations = report.violations().count();
        let expectation_met = match sc.expect {
            Expect::All(class) => report.count(class) == report.outcomes.len(),
            Expect::Never(class) => report.count(class) == 0,
        };
        println!(
            "{:<12} runs {:>3}  divergences {}  violations {}  schedules {:>3}  {:?}{}",
            sc.name,
            report.outcomes.len(),
            divergences,
            violations,
            report.distinct_schedules,
            report.histogram,
            if expectation_met { "" } else { "  ** EXPECTATION BROKEN **" },
        );
        reports.push(ScenarioReport {
            name: sc.name.to_string(),
            runs: report.outcomes.len(),
            divergences,
            invariant_violations: violations,
            distinct_schedules: report.distinct_schedules,
            histogram: report.histogram,
            expectation_met,
        });
    }

    let total_runs: usize = reports.iter().map(|r| r.runs + 2).sum();
    let total_divergences: usize = reports.iter().map(|r| r.divergences).sum();
    let total_violations: usize = reports.iter().map(|r| r.invariant_violations).sum();
    let passed = total_divergences == 0
        && total_violations == 0
        && reports.iter().all(|r| r.expectation_met);
    let soak = SoakReport {
        runs_per_scenario: opts.runs,
        backend: opts.backend.name().to_string(),
        base_seed: opts.seed,
        total_runs,
        total_divergences,
        total_invariant_violations: total_violations,
        passed,
        scenarios: reports,
    };
    println!(
        "soak: {} runs, {} divergences, {} invariant violations — {}",
        soak.total_runs,
        soak.total_divergences,
        soak.total_invariant_violations,
        if passed { "PASS" } else { "FAIL" },
    );
    if let Some(path) = &opts.json {
        let json = serde_json::to_string_pretty(&soak).expect("serializable");
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Some(path) = &opts.metrics {
        match failmpi_experiments::metrics::write_sink(path) {
            Ok(n) => eprintln!("metrics: wrote {n} run snapshots to {path}"),
            Err(e) => {
                eprintln!("cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(path) = &opts.trace_out {
        match failmpi_experiments::tracesink::write_sink(path) {
            Ok(true) => eprintln!("trace: wrote causal trace to {path}"),
            Ok(false) => eprintln!("trace: no run executed, {path} not written"),
            Err(e) => {
                eprintln!("cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(path) = &opts.profile {
        match failmpi_experiments::profsink::write_sink(path) {
            Ok(true) => eprintln!("profile: wrote merged run profile to {path}"),
            Ok(false) => eprintln!("profile: no run executed, {path} not written"),
            Err(e) => {
                eprintln!("cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if passed {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
