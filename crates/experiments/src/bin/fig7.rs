//! Regenerates Figure 7 of the paper.

use failmpi_experiments::figures::{fig7, run_figure_main};

failmpi_experiments::install_alloc_profiler!();

fn main() {
    run_figure_main(
        |smoke| {
            if smoke {
                fig7::Config::smoke()
            } else {
                fig7::Config::paper()
            }
        },
        fig7::run,
        fig7::render,
    );
}
