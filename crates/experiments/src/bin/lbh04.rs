//! Regenerates the [LBH+04] protocol comparison (coordinated
//! checkpointing vs message logging under identical fault scenarios) —
//! the manual prior-work measurement the paper says FAIL-MPI automates.

use failmpi_experiments::cli::Options;
use failmpi_experiments::figures::lbh04;

fn main() {
    let opts = match Options::parse(std::env::args().skip(1)) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let mut cfg = if opts.smoke {
        lbh04::Config::smoke()
    } else {
        lbh04::Config::paper()
    };
    if let Some(r) = opts.runs {
        cfg.runs = r;
    }
    if let Some(t) = opts.threads {
        cfg.threads = t;
    }
    let data = lbh04::run(&cfg);
    print!("{}", lbh04::render(&data));
    opts.maybe_write_json(&data).expect("write json");
}
