//! Regenerates the [LBH+04] protocol comparison (coordinated
//! checkpointing vs message logging under identical fault scenarios) —
//! the manual prior-work measurement the paper says FAIL-MPI automates.

use failmpi_experiments::figures::{lbh04, run_figure_main};

failmpi_experiments::install_alloc_profiler!();

fn main() {
    run_figure_main(
        |smoke| {
            if smoke {
                lbh04::Config::smoke()
            } else {
                lbh04::Config::paper()
            }
        },
        lbh04::run,
        lbh04::render,
    );
}
