//! `failc` — the FAIL scenario compiler CLI (the FCI compiler step).
//!
//! Usage: `failc <scenario.fail> [--emit-rust]`
//!
//! Parses and compiles a FAIL scenario, reports diagnostics, and either
//! summarises the compiled automata or emits the generated Rust source.

use failmpi_core::lang::codegen;
use failmpi_core::{compile, Deployment};

failmpi_experiments::install_alloc_profiler!();

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (path, emit_rust) = match args.as_slice() {
        [p] => (p.clone(), false),
        [p, flag] if flag == "--emit-rust" => (p.clone(), true),
        _ => {
            eprintln!("usage: failc <scenario.fail> [--emit-rust]");
            std::process::exit(2);
        }
    };
    let src = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("failc: cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    let scenario = match compile(&src) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("failc: {path}: {e}");
            std::process::exit(1);
        }
    };
    if emit_rust {
        print!("{}", codegen::generate(&scenario));
        return;
    }
    println!("scenario: {path}");
    println!(
        "params:   {}",
        scenario
            .param_names
            .iter()
            .zip(&scenario.param_defaults)
            .map(|(n, v)| format!("{n}={v}"))
            .collect::<Vec<_>>()
            .join(", ")
    );
    println!("messages: {}", scenario.messages.join(", "));
    for c in &scenario.classes {
        let transitions: usize = c.nodes.iter().map(|n| n.transitions.len()).sum();
        println!(
            "daemon {} — {} nodes, {} transitions, vars [{}], timers [{}]",
            c.name,
            c.nodes.len(),
            transitions,
            c.var_names.join(", "),
            c.timer_names.join(", "),
        );
    }
    match Deployment::from_suggested(&scenario) {
        Ok(d) if !d.is_empty() => println!("deployment: {} instances", d.len()),
        _ => println!("deployment: none declared (bind programmatically)"),
    }
}
