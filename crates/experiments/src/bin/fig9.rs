//! Regenerates Figure 9 (impact of synchronized faults).

use failmpi_experiments::figures::{fig9, run_figure_main};

failmpi_experiments::install_alloc_profiler!();

fn main() {
    run_figure_main(
        |smoke| {
            if smoke {
                fig9::Config::smoke()
            } else {
                fig9::Config::paper()
            }
        },
        fig9::run,
        fig9::render,
    );
}
