//! Regenerates Figure 6 of the paper.

use failmpi_experiments::cli::Options;
use failmpi_experiments::figures::fig6;

fn main() {
    let opts = match Options::parse(std::env::args().skip(1)) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let mut cfg = if opts.smoke {
        fig6::Config::smoke()
    } else {
        fig6::Config::paper()
    };
    if let Some(r) = opts.runs {
        cfg.runs = r;
    }
    if let Some(t) = opts.threads {
        cfg.threads = t;
    }
    let data = fig6::run(&cfg);
    print!("{}", fig6::render(&data));
    opts.maybe_write_json(&data).expect("write json");
}
