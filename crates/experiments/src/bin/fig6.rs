//! Regenerates Figure 6 of the paper.

use failmpi_experiments::figures::{fig6, run_figure_main};

failmpi_experiments::install_alloc_profiler!();

fn main() {
    run_figure_main(
        |smoke| {
            if smoke {
                fig6::Config::smoke()
            } else {
                fig6::Config::paper()
            }
        },
        fig6::run,
        fig6::render,
    );
}
