//! `trace` — run one experiment under a FAIL scenario and print its
//! execution timeline (the paper's trace-analysis workflow as a command).
//!
//! ```sh
//! trace <scenario.fail> [--adversary CLASS] [--machines CLASS]
//!       [--ranks N] [--seed S] [--param NAME=VALUE]... [--lifecycle]
//!       [--smoke] [--trace-out PATH]
//! ```
//!
//! The run always executes with causal tracing on, so timeline failure
//! lines carry their immediate cause; `--trace-out PATH` additionally
//! writes the full happens-before trace for `failmpi-trace`
//! explain/export/diff.

use failmpi_sim::{SimDuration, SimTime};
use failmpi_mpichv::VclConfig;
use failmpi_workloads::BtClass;

use failmpi_experiments::harness::{run_one_traced, ExperimentSpec, InjectionSpec, Workload};
use failmpi_experiments::timeline::{render_caused, TimelineOptions};
use failmpi_experiments::tracesink::trace_file_of;

failmpi_experiments::install_alloc_profiler!();

fn die(msg: &str) -> ! {
    eprintln!("trace: {msg}");
    std::process::exit(2);
}

fn main() {
    let mut args = std::env::args().skip(1);
    let Some(path) = args.next() else {
        die("usage: trace <scenario.fail> [--adversary C] [--machines C] [--ranks N] [--seed S] [--param N=V]... [--lifecycle] [--smoke] [--trace-out PATH]");
    };
    let mut adversary = "ADV1".to_string();
    let mut machines = "ADVnodes".to_string();
    let mut ranks = 4u32;
    let mut seed = 1u64;
    let mut params: Vec<(String, i64)> = Vec::new();
    let mut lifecycle = false;
    let mut smoke = true;
    let mut trace_out: Option<String> = None;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--adversary" => adversary = args.next().unwrap_or_else(|| die("--adversary needs a class")),
            "--machines" => machines = args.next().unwrap_or_else(|| die("--machines needs a class")),
            "--ranks" => {
                ranks = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--ranks needs a number"))
            }
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--seed needs a number"))
            }
            "--param" => {
                let kv = args.next().unwrap_or_else(|| die("--param needs NAME=VALUE"));
                let (k, v) = kv.split_once('=').unwrap_or_else(|| die("--param needs NAME=VALUE"));
                let v: i64 = v.parse().unwrap_or_else(|_| die("--param value must be an integer"));
                params.push((k.to_string(), v));
            }
            "--lifecycle" => lifecycle = true,
            "--smoke" => smoke = true,
            "--paper" => smoke = false,
            "--trace-out" => {
                trace_out =
                    Some(args.next().unwrap_or_else(|| die("--trace-out needs a path")))
            }
            other => die(&format!("unknown flag `{other}`")),
        }
    }
    let src = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| die(&format!("cannot read {path}: {e}")));

    let (cluster, class, timeout) = if smoke {
        let mut c = VclConfig::small(ranks, SimDuration::from_secs(2));
        c.ssh_stagger = SimDuration::from_millis(20);
        c.restart_overhead = SimDuration::from_millis(400);
        c.terminate_delay = SimDuration::from_millis(30);
        (c, BtClass::S, 90)
    } else {
        let c = VclConfig {
            n_ranks: ranks,
            n_compute_hosts: ranks as usize + 4,
            ..VclConfig::default()
        };
        (c, BtClass::B, 1500)
    };
    let mut inj = InjectionSpec::new(&src, &adversary, &machines);
    for (k, v) in &params {
        inj = inj.with_param(k, *v);
    }
    let spec = ExperimentSpec {
        cluster,
        workload: Workload::Bt(class),
        injection: Some(inj),
        timeout: SimTime::from_secs(timeout),
        freeze_window: SimDuration::from_secs(timeout / 10),
        seed,
        tie_break: failmpi_sim::TieBreak::Fifo,
        backend: failmpi_backend::BackendKind::Vcl,
    };
    let traced = run_one_traced(&spec);
    print!(
        "{}",
        render_caused(
            &traced.cluster,
            Some(&traced.causal),
            TimelineOptions {
                collapse_progress: true,
                lifecycle,
            }
        )
    );
    let record = &traced.record;
    println!(
        "\nverdict: {:?} ({} faults injected, {} recoveries, {} waves committed)",
        record.outcome, record.faults_injected, record.recoveries, record.waves_committed
    );
    if let Some(out) = trace_out {
        let name = std::path::Path::new(&path)
            .file_stem()
            .map_or_else(|| "trace".to_string(), |s| s.to_string_lossy().into_owned());
        let trace = trace_file_of(&name, seed, &traced);
        std::fs::write(&out, trace.to_json())
            .unwrap_or_else(|e| die(&format!("cannot write {out}: {e}")));
        eprintln!("trace: wrote causal trace to {out} (inspect with failmpi-trace)");
    }
}
