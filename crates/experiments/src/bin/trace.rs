//! `trace` — run one experiment under a FAIL scenario and print its
//! execution timeline (the paper's trace-analysis workflow as a command).
//!
//! ```sh
//! trace <scenario.fail> [--adversary CLASS] [--machines CLASS]
//!       [--ranks N] [--seed S] [--param NAME=VALUE]... [--lifecycle]
//!       [--smoke]
//! ```

use failmpi_sim::{SimDuration, SimTime};
use failmpi_mpichv::VclConfig;
use failmpi_workloads::BtClass;

use failmpi_experiments::harness::{run_one_keeping_cluster, ExperimentSpec, InjectionSpec, Workload};
use failmpi_experiments::timeline::{render, TimelineOptions};

fn die(msg: &str) -> ! {
    eprintln!("trace: {msg}");
    std::process::exit(2);
}

fn main() {
    let mut args = std::env::args().skip(1);
    let Some(path) = args.next() else {
        die("usage: trace <scenario.fail> [--adversary C] [--machines C] [--ranks N] [--seed S] [--param N=V]... [--lifecycle] [--smoke]");
    };
    let mut adversary = "ADV1".to_string();
    let mut machines = "ADVnodes".to_string();
    let mut ranks = 4u32;
    let mut seed = 1u64;
    let mut params: Vec<(String, i64)> = Vec::new();
    let mut lifecycle = false;
    let mut smoke = true;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--adversary" => adversary = args.next().unwrap_or_else(|| die("--adversary needs a class")),
            "--machines" => machines = args.next().unwrap_or_else(|| die("--machines needs a class")),
            "--ranks" => {
                ranks = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--ranks needs a number"))
            }
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--seed needs a number"))
            }
            "--param" => {
                let kv = args.next().unwrap_or_else(|| die("--param needs NAME=VALUE"));
                let (k, v) = kv.split_once('=').unwrap_or_else(|| die("--param needs NAME=VALUE"));
                let v: i64 = v.parse().unwrap_or_else(|_| die("--param value must be an integer"));
                params.push((k.to_string(), v));
            }
            "--lifecycle" => lifecycle = true,
            "--smoke" => smoke = true,
            "--paper" => smoke = false,
            other => die(&format!("unknown flag `{other}`")),
        }
    }
    let src = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| die(&format!("cannot read {path}: {e}")));

    let (cluster, class, timeout) = if smoke {
        let mut c = VclConfig::small(ranks, SimDuration::from_secs(2));
        c.ssh_stagger = SimDuration::from_millis(20);
        c.restart_overhead = SimDuration::from_millis(400);
        c.terminate_delay = SimDuration::from_millis(30);
        (c, BtClass::S, 90)
    } else {
        let mut c = VclConfig::default();
        c.n_ranks = ranks;
        c.n_compute_hosts = ranks as usize + 4;
        (c, BtClass::B, 1500)
    };
    let mut inj = InjectionSpec::new(&src, &adversary, &machines);
    for (k, v) in &params {
        inj = inj.with_param(k, *v);
    }
    let spec = ExperimentSpec {
        cluster,
        workload: Workload::Bt(class),
        injection: Some(inj),
        timeout: SimTime::from_secs(timeout),
        freeze_window: SimDuration::from_secs(timeout / 10),
        seed,
        tie_break: failmpi_sim::TieBreak::Fifo,
    };
    let (record, cluster) = run_one_keeping_cluster(&spec);
    print!(
        "{}",
        render(
            &cluster,
            TimelineOptions {
                collapse_progress: true,
                lifecycle,
            }
        )
    );
    println!(
        "\nverdict: {:?} ({} faults injected, {} recoveries, {} waves committed)",
        record.outcome, record.faults_injected, record.recoveries, record.waves_committed
    );
}
