//! Runs the delay-after-checkpoint sweep (the paper's Sec. 6 planned
//! measurement, enabled by the `probe` feature).

use failmpi_experiments::cli::Options;
use failmpi_experiments::figures::delay;

fn main() {
    let opts = match Options::parse(std::env::args().skip(1)) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let mut cfg = if opts.smoke {
        delay::Config::smoke()
    } else {
        delay::Config::paper()
    };
    if let Some(r) = opts.runs {
        cfg.runs = r;
    }
    if let Some(t) = opts.threads {
        cfg.threads = t;
    }
    let data = delay::run(&cfg);
    print!("{}", delay::render(&data));
    opts.maybe_write_json(&data).expect("write json");
}
