//! Runs the delay-after-checkpoint sweep (the paper's Sec. 6 planned
//! measurement, enabled by the `probe` feature).

use failmpi_experiments::figures::{delay, run_figure_main};

failmpi_experiments::install_alloc_profiler!();

fn main() {
    run_figure_main(
        |smoke| {
            if smoke {
                delay::Config::smoke()
            } else {
                delay::Config::paper()
            }
        },
        delay::run,
        delay::render,
    );
}
