//! Regenerates Figure 11 (state-synchronized faults).

use failmpi_experiments::figures::{fig11, run_figure_main};

failmpi_experiments::install_alloc_profiler!();

fn main() {
    run_figure_main(
        |smoke| {
            if smoke {
                fig11::smoke_config()
            } else {
                fig11::paper_config()
            }
        },
        fig11::run,
        fig11::render,
    );
}
