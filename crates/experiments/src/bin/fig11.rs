//! Regenerates Figure 11 (state-synchronized faults).

use failmpi_experiments::cli::Options;
use failmpi_experiments::figures::fig11;

fn main() {
    let opts = match Options::parse(std::env::args().skip(1)) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let mut cfg = if opts.smoke {
        fig11::smoke_config()
    } else {
        fig11::paper_config()
    };
    if let Some(r) = opts.runs {
        cfg.runs = r;
    }
    if let Some(t) = opts.threads {
        cfg.threads = t;
    }
    let data = fig11::run(&cfg);
    print!("{}", fig11::render(&data));
    opts.maybe_write_json(&data).expect("write json");
}
