//! Prints Table 1 (Sec. 2.1): the fault-injector capability matrix.

use failmpi_experiments::criteria;

failmpi_experiments::install_alloc_profiler!();

fn main() {
    print!("{}", criteria::render());
}
