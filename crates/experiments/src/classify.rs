//! Run classification, mechanising the paper's trace analysis:
//!
//! > "we distinguish between experiments that do not progress anymore due
//! > to the high failure frequency … and experiments that do not progress
//! > due to a bug in the fault tolerant implementation. The difference
//! > between the two kinds of experiments is done by analysing the
//! > execution trace."

use failmpi_sim::{RunOutcome, SimDuration, SimTime, TraceEntry};
use failmpi_mpichv::{Cluster, VclEvent};

/// The silence threshold: a run that reached its timeout without any
/// recovery/restart/progress activity in this final window is *frozen*
/// (buggy), not merely stalled. Stalled runs keep detecting failures and
/// restarting recoveries (the paper's rollback/crash cycle), so their gaps
/// stay below the largest fault interval (65 s) plus a recovery; frozen
/// runs go silent forever.
pub const FREEZE_WINDOW: SimDuration = SimDuration::from_secs(150);

/// Paper-faithful run outcomes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// The benchmark ran to completion.
    Completed {
        /// Total execution time.
        time: SimTime,
    },
    /// Timeout with ongoing fault/recovery activity: the failure frequency
    /// is too high for any progress (green bars in the paper's figures).
    NonTerminating,
    /// Timeout (or premature quiescence) with the system frozen: a bug in
    /// the fault-tolerant implementation (red bars in the paper's figures).
    Buggy,
}

impl Outcome {
    /// Completed-run time, if any.
    pub fn time(&self) -> Option<SimTime> {
        match self {
            Outcome::Completed { time } => Some(*time),
            _ => None,
        }
    }

    /// `true` for [`Outcome::Buggy`].
    pub fn is_buggy(&self) -> bool {
        matches!(self, Outcome::Buggy)
    }

    /// `true` for [`Outcome::NonTerminating`].
    pub fn is_non_terminating(&self) -> bool {
        matches!(self, Outcome::NonTerminating)
    }
}

fn is_liveness_event(k: &VclEvent) -> bool {
    matches!(
        k,
        VclEvent::RecoveryStarted { .. }
            | VclEvent::RankResumed { .. }
            | VclEvent::AppProgress { .. }
            | VclEvent::WaveCommitted { .. }
            | VclEvent::LaunchRetried { .. }
            | VclEvent::DaemonRegistered { .. }
    )
}

/// Classifies a finished engine run over `cluster`, using `freeze_window`
/// as the silence threshold (see [`FREEZE_WINDOW`] for the paper scale).
pub fn classify(
    cluster: &Cluster,
    engine_outcome: RunOutcome,
    end: SimTime,
    timeout: SimTime,
    freeze_window: SimDuration,
) -> Outcome {
    classify_entries(
        cluster.trace().entries(),
        cluster.is_complete(),
        engine_outcome,
        end,
        timeout,
        freeze_window,
    )
}

/// The trace-level core of [`classify`] — the same analysis over bare
/// entries, so tests can classify hand-built traces without running a
/// cluster.
pub fn classify_entries(
    entries: &[TraceEntry<VclEvent>],
    complete: bool,
    engine_outcome: RunOutcome,
    end: SimTime,
    timeout: SimTime,
    freeze_window: SimDuration,
) -> Outcome {
    if complete {
        return Outcome::Completed { time: end };
    }
    // Quiescence before the timeout with an incomplete job: nothing can
    // ever happen again — definitionally frozen.
    if engine_outcome == RunOutcome::Quiescent {
        return Outcome::Buggy;
    }
    let last_liveness = entries
        .iter()
        .rev()
        .find(|e| is_liveness_event(&e.kind))
        .map_or(SimTime::ZERO, |e| e.at);
    if timeout.saturating_since(last_liveness) > freeze_window {
        Outcome::Buggy
    } else {
        Outcome::NonTerminating
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use failmpi_mpi::Rank;

    fn e(at_s: u64, kind: VclEvent) -> TraceEntry<VclEvent> {
        TraceEntry::new(SimTime::from_secs(at_s), kind)
    }

    const TIMEOUT: SimTime = SimTime::from_secs(1500);
    const WINDOW: SimDuration = FREEZE_WINDOW;

    #[test]
    fn complete_job_classifies_completed() {
        let trace = vec![
            e(0, VclEvent::RunStarted { epoch: 0 }),
            e(90, VclEvent::RankFinalized { rank: Rank(0) }),
            e(91, VclEvent::JobComplete),
        ];
        let out = classify_entries(
            &trace,
            true,
            RunOutcome::Finished,
            SimTime::from_secs(91),
            TIMEOUT,
            WINDOW,
        );
        assert_eq!(
            out,
            Outcome::Completed {
                time: SimTime::from_secs(91)
            }
        );
    }

    #[test]
    fn ongoing_recovery_activity_classifies_non_terminating() {
        // The paper's rollback/crash cycle: failures and recoveries keep
        // arriving right up to the timeout.
        let mut trace = vec![e(0, VclEvent::RunStarted { epoch: 0 })];
        for epoch in 1..=20 {
            trace.push(e(
                70 * epoch as u64,
                VclEvent::FailureDetected {
                    rank: Rank(1),
                    epoch: epoch - 1,
                    during_recovery: false,
                },
            ));
            trace.push(e(70 * epoch as u64 + 5, VclEvent::RecoveryStarted { epoch }));
        }
        let out = classify_entries(
            &trace,
            false,
            RunOutcome::DeadlineReached,
            TIMEOUT,
            TIMEOUT,
            WINDOW,
        );
        assert_eq!(out, Outcome::NonTerminating);
    }

    #[test]
    fn long_silence_classifies_buggy() {
        // One early recovery, then nothing for >150 s before the timeout:
        // the Fig. 10 freeze signature.
        let trace = vec![
            e(0, VclEvent::RunStarted { epoch: 0 }),
            e(
                50,
                VclEvent::FailureDetected {
                    rank: Rank(1),
                    epoch: 0,
                    during_recovery: false,
                },
            ),
            e(55, VclEvent::RecoveryStarted { epoch: 1 }),
        ];
        let out = classify_entries(
            &trace,
            false,
            RunOutcome::DeadlineReached,
            TIMEOUT,
            TIMEOUT,
            WINDOW,
        );
        assert_eq!(out, Outcome::Buggy);
    }

    #[test]
    fn premature_quiescence_classifies_buggy() {
        // The queue drained with the job incomplete — frozen by definition,
        // however recent the last liveness event was.
        let trace = vec![e(10, VclEvent::RecoveryStarted { epoch: 1 })];
        let out = classify_entries(
            &trace,
            false,
            RunOutcome::Quiescent,
            SimTime::from_secs(11),
            TIMEOUT,
            WINDOW,
        );
        assert_eq!(out, Outcome::Buggy);
    }

    #[test]
    fn outcome_accessors() {
        let c = Outcome::Completed {
            time: SimTime::from_secs(5),
        };
        assert_eq!(c.time(), Some(SimTime::from_secs(5)));
        assert!(!c.is_buggy());
        assert!(Outcome::Buggy.is_buggy());
        assert!(Outcome::NonTerminating.is_non_terminating());
        assert_eq!(Outcome::Buggy.time(), None);
    }
}
