//! Schedule-robustness sweeps: re-running an experiment under perturbed
//! same-instant event orderings (see [`failmpi_sim::TieBreak::Seeded`])
//! and checking that its classification is a property of the *scenario*,
//! not of one lucky interleaving.
//!
//! The flagship use is the paper's Fig. 10 dispatcher freeze: under the
//! historical dispatcher the freeze must reproduce on **every** legal
//! schedule, and under the fixed dispatcher on **none** — otherwise the
//! bug diagnosis would be an artifact of the simulator's FIFO tie-break.

use failmpi_sim::TieBreak;
use failmpi_mpichv::{DispatcherMode, VProtocol};
use failmpi_testkit::{
    perturbation_seeds, sweep, DetRun, PerturbationOutcome, PerturbationReport,
};
use failmpi_workloads::BtClass;

use crate::classify::Outcome;
use crate::figures::{self, DELAY_SRC, FIG10_SRC, FIG5_SRC, FIG7_SRC, FIG8_SRC};
use crate::harness::{
    run_one_instrumented, run_one_keeping_cluster, ExperimentSpec, InjectionSpec,
};
use crate::invariants::validate_trace;

/// The histogram label of an [`Outcome`] (completion times vary across
/// interleavings, so the class deliberately drops the time).
pub fn outcome_class(outcome: &Outcome) -> &'static str {
    match outcome {
        Outcome::Completed { .. } => "completed",
        Outcome::NonTerminating => "non-terminating",
        Outcome::Buggy => "buggy",
    }
}

/// Runs `spec` once under the tie-break seed `tie_seed`, validating the
/// trace invariants on the way out.
pub fn perturbed_outcome(spec: &ExperimentSpec, tie_seed: u64) -> PerturbationOutcome {
    let perturbed = spec.clone().with_tie_break(TieBreak::Seeded(tie_seed));
    // The Vcl path keeps the cluster back for the trace invariants; the
    // generic backends run through the plain harness (their lifecycle
    // traces carry no wave/incarnation structure for `validate_trace`
    // to check).
    if perturbed.backend == failmpi_backend::BackendKind::Vcl {
        let (record, cluster) = run_one_keeping_cluster(&perturbed);
        PerturbationOutcome {
            seed: tie_seed,
            classification: outcome_class(&record.outcome).to_string(),
            fingerprint: record.fingerprint,
            invariant_violation: validate_trace(&cluster).err(),
        }
    } else {
        let record = crate::harness::run_one(&perturbed);
        PerturbationOutcome {
            seed: tie_seed,
            classification: outcome_class(&record.outcome).to_string(),
            fingerprint: record.fingerprint,
            invariant_violation: None,
        }
    }
}

/// Sweeps `n_seeds` schedule perturbations of `spec`.
pub fn perturb(label: &str, spec: &ExperimentSpec, n_seeds: usize) -> PerturbationReport {
    let seeds = perturbation_seeds(n_seeds);
    sweep(label, &seeds, |s| perturbed_outcome(spec, s))
}

/// The smoke-scale Fig. 10 stress (the `localMPI_setCommand`-synchronized
/// double fault) under the given dispatcher variant. `Historical`
/// reproduces the paper's freeze; `Fixed` is the repaired reference.
pub fn fig10_stress_spec(mode: DispatcherMode, seed: u64) -> ExperimentSpec {
    let n_ranks = 4u32;
    let hosts = 6usize;
    let mut cluster = figures::cluster_config(n_ranks, hosts, 2, mode);
    figures::miniaturize(&mut cluster);
    let mut spec = figures::spec(cluster, BtClass::S, None, 90, seed);
    spec.injection = Some(
        InjectionSpec::new(FIG10_SRC, "ADV1", "ADVG1")
            .with_param("T", 2)
            .with_param("N", hosts as i64 - 1),
    );
    spec
}

/// A miniature fault-free run (the determinism-soak baseline: no injector,
/// every schedule must complete).
pub fn fault_free_smoke_spec(seed: u64) -> ExperimentSpec {
    let mut cluster = figures::cluster_config(4, 6, 2, DispatcherMode::Historical);
    figures::miniaturize(&mut cluster);
    figures::spec(cluster, BtClass::S, None, 90, seed)
}

/// One run of `spec` packaged for the double-run determinism harness
/// ([`failmpi_testkit::assert_deterministic`]); `capture` turns on the
/// per-event fingerprint journal.
pub fn det_run(spec: &ExperimentSpec, capture: bool) -> DetRun {
    let (record, _, journal) = run_one_instrumented(spec, capture);
    DetRun {
        fingerprint: record.fingerprint,
        events: record.events,
        journal,
    }
}

/// One representative smoke-scale spec per paper scenario, labelled. This
/// is the coverage set of the determinism regression tests: every figure's
/// scenario source, the dispatcher ablation and both LBH+04 protocols.
pub fn scenario_suite(seed: u64) -> Vec<(&'static str, ExperimentSpec)> {
    let smoke = |n_ranks: u32, hosts: usize, wave_secs: u64, mode: DispatcherMode| {
        let mut cluster = figures::cluster_config(n_ranks, hosts, wave_secs, mode);
        figures::miniaturize(&mut cluster);
        cluster
    };
    let inject = |src: &str, machine: &str, params: &[(&str, i64)]| {
        let mut inj = InjectionSpec::new(src, "ADV1", machine);
        for (k, v) in params {
            inj = inj.with_param(k, *v);
        }
        Some(inj)
    };
    let h = DispatcherMode::Historical;
    let mut suite = vec![
        (
            "fault_free",
            figures::spec(smoke(4, 6, 2, h), BtClass::S, None, 90, seed),
        ),
        (
            "fig5_frequency",
            figures::spec(
                smoke(4, 6, 2, h),
                BtClass::S,
                inject(FIG5_SRC, "ADVnodes", &[("X", 4), ("N", 5)]),
                90,
                seed,
            ),
        ),
        (
            // Fig. 6 sweeps the scale; its scenario source is Fig. 5's.
            "fig6_scale",
            figures::spec(
                smoke(9, 11, 2, h),
                BtClass::S,
                inject(FIG5_SRC, "ADVnodes", &[("X", 4), ("N", 10)]),
                90,
                seed,
            ),
        ),
        (
            "fig7_simultaneous",
            figures::spec(
                smoke(4, 6, 2, h),
                BtClass::S,
                inject(FIG7_SRC, "ADVnodes", &[("X", 2), ("T", 4), ("N", 5)]),
                90,
                seed,
            ),
        ),
        (
            "fig9_synchronized",
            figures::spec(
                smoke(4, 6, 2, h),
                BtClass::S,
                inject(FIG8_SRC, "ADVnodes", &[("T", 2), ("N", 5)]),
                90,
                seed,
            ),
        ),
        ("fig10_state_sync", fig10_stress_spec(h, seed)),
        (
            "ablation_fixed_dispatcher",
            fig10_stress_spec(DispatcherMode::Fixed, seed),
        ),
        (
            "delay_sweep",
            figures::spec(
                smoke(4, 6, 2, h),
                BtClass::S,
                inject(DELAY_SRC, "ADVnodes", &[("D", 1), ("N", 5)]),
                90,
                seed,
            ),
        ),
    ];
    for proto in [VProtocol::Vcl, VProtocol::V2] {
        let mut cluster = smoke(4, 6, 1, h);
        cluster.protocol = proto;
        let name = match proto {
            VProtocol::Vcl => "lbh04_vcl",
            VProtocol::V2 => "lbh04_v2",
            VProtocol::Vdummy => unreachable!(),
        };
        suite.push((
            name,
            figures::spec(
                cluster,
                BtClass::S,
                inject(FIG5_SRC, "ADVnodes", &[("X", 4), ("N", 5)]),
                90,
                seed,
            ),
        ));
    }
    suite
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_cover_all_outcomes() {
        use failmpi_sim::SimTime;
        assert_eq!(
            outcome_class(&Outcome::Completed {
                time: SimTime::from_secs(1)
            }),
            "completed"
        );
        assert_eq!(outcome_class(&Outcome::NonTerminating), "non-terminating");
        assert_eq!(outcome_class(&Outcome::Buggy), "buggy");
    }

    #[test]
    fn perturbed_run_reports_fingerprint_and_class() {
        let spec = fault_free_smoke_spec(7);
        let a = perturbed_outcome(&spec, 1);
        let b = perturbed_outcome(&spec, 1);
        assert_eq!(a.fingerprint, b.fingerprint, "same tie seed, same schedule");
        assert_eq!(a.classification, "completed");
        assert_eq!(a.invariant_violation, None);
    }
}
