//! Minimal argument handling shared by the figure binaries.

use failmpi_backend::BackendKind;

use crate::harness::{set_default_backend, set_default_expect_freeze, set_default_lint_mode, LintMode};

/// Options common to every figure binary.
#[derive(Clone, Debug, Default)]
pub struct Options {
    /// Run the seconds-scale smoke configuration instead of paper scale.
    pub smoke: bool,
    /// Override the per-point run count.
    pub runs: Option<usize>,
    /// Override the worker-thread count.
    pub threads: Option<usize>,
    /// Write the figure data as JSON to this path.
    pub json: Option<String>,
    /// Write per-run metric snapshots (plus their aggregate) as JSON to
    /// this path (see [`crate::metrics`]).
    pub metrics: Option<String>,
    /// Scenario lint gate (`--lint off|warn|strict`); also installed as
    /// the process-wide default so every spec the binary builds picks it
    /// up.
    pub lint: Option<LintMode>,
    /// Run the first experiment with causal tracing on and write its
    /// happens-before trace as `failmpi-trace` JSON to this path (see
    /// [`crate::tracesink`]).
    pub trace_out: Option<String>,
    /// Profile every run and write the merged deterministic
    /// [`failmpi_obs::RunProfile`] JSON to this path (see
    /// [`crate::profsink`]; inspect with `failmpi-prof`).
    pub profile: Option<String>,
    /// Declare that the sweep hunts freezes: with `--lint strict`, run
    /// scenarios the model checker statically classifies as freezing
    /// instead of refusing them. Also installed as the process-wide
    /// default (see [`crate::harness::set_default_expect_freeze`]).
    pub expect_freeze: bool,
    /// Protocol backend under test (`--backend vcl|ulfm|replica`); also
    /// installed as the process-wide default so every spec the binary
    /// builds picks it up (see [`crate::harness::set_default_backend`]).
    pub backend: Option<BackendKind>,
}

impl Options {
    /// Parses `args` (without the program name). Returns `Err(usage)` on
    /// unknown flags.
    pub fn parse(args: impl Iterator<Item = String>) -> Result<Options, String> {
        let mut o = Options::default();
        let mut args = args.peekable();
        while let Some(a) = args.next() {
            match a.as_str() {
                "--smoke" => o.smoke = true,
                "--runs" => {
                    o.runs = Some(
                        args.next()
                            .and_then(|v| v.parse().ok())
                            .ok_or("--runs needs a number")?,
                    )
                }
                "--threads" => {
                    o.threads = Some(
                        args.next()
                            .and_then(|v| v.parse().ok())
                            .ok_or("--threads needs a number")?,
                    )
                }
                "--json" => o.json = Some(args.next().ok_or("--json needs a path")?),
                "--metrics" => {
                    o.metrics = Some(args.next().ok_or("--metrics needs a path")?)
                }
                "--trace-out" => {
                    o.trace_out = Some(args.next().ok_or("--trace-out needs a path")?)
                }
                "--profile" => {
                    o.profile = Some(args.next().ok_or("--profile needs a path")?)
                }
                "--lint" => {
                    let mode = args
                        .next()
                        .as_deref()
                        .and_then(LintMode::parse)
                        .ok_or("--lint needs off|warn|strict")?;
                    set_default_lint_mode(mode);
                    o.lint = Some(mode);
                }
                "--expect-freeze" => {
                    set_default_expect_freeze(true);
                    o.expect_freeze = true;
                }
                "--backend" => {
                    let kind: BackendKind = args
                        .next()
                        .ok_or("--backend needs vcl|ulfm|replica")?
                        .parse()
                        .map_err(|_| "--backend needs vcl|ulfm|replica")?;
                    set_default_backend(kind);
                    o.backend = Some(kind);
                }
                "--help" | "-h" => {
                    return Err("usage: [--smoke] [--runs N] [--threads N] [--json PATH] \
                                [--metrics PATH] [--trace-out PATH] [--profile PATH] \
                                [--lint off|warn|strict] [--expect-freeze] \
                                [--backend vcl|ulfm|replica]"
                        .to_string())
                }
                other => return Err(format!("unknown flag `{other}`")),
            }
        }
        Ok(o)
    }

    /// Writes `data` as JSON if `--json` was given.
    pub fn maybe_write_json<T: serde::Serialize>(&self, data: &T) -> std::io::Result<()> {
        if let Some(path) = &self.json {
            let json = serde_json::to_string_pretty(data).expect("serializable");
            std::fs::write(path, json)?;
        }
        Ok(())
    }

    /// Installs the process-wide metrics sink if `--metrics` was given.
    /// Call before running any experiment.
    pub fn install_metrics_sink(&self) {
        if self.metrics.is_some() {
            crate::metrics::install_sink();
        }
    }

    /// Writes the collected run metrics if `--metrics` was given. Call
    /// after the last experiment finished.
    pub fn maybe_write_metrics(&self) -> std::io::Result<()> {
        if let Some(path) = &self.metrics {
            let n = crate::metrics::write_sink(path)?;
            eprintln!("metrics: wrote {n} run snapshots to {path}");
        }
        Ok(())
    }

    /// Arms the process-wide run-profile sink if `--profile` was given.
    /// Call before running any experiment.
    pub fn install_profile_sink(&self) {
        if self.profile.is_some() {
            crate::profsink::install_sink();
        }
    }

    /// Writes the merged run profile if `--profile` was given. Call after
    /// the last experiment finished.
    pub fn maybe_write_profile(&self) -> std::io::Result<()> {
        if let Some(path) = &self.profile {
            if crate::profsink::write_sink(path)? {
                eprintln!("profile: wrote merged run profile to {path} (inspect with failmpi-prof)");
            } else {
                eprintln!("profile: no run executed, {path} not written");
            }
        }
        Ok(())
    }

    /// Arms the process-wide causal-trace sink if `--trace-out` was given.
    /// Call before running any experiment.
    pub fn install_trace_sink(&self) {
        if self.trace_out.is_some() {
            crate::tracesink::install_sink();
        }
    }

    /// Writes the captured causal trace if `--trace-out` was given. Call
    /// after the last experiment finished.
    pub fn maybe_write_trace(&self) -> std::io::Result<()> {
        if let Some(path) = &self.trace_out {
            if crate::tracesink::write_sink(path)? {
                eprintln!("trace: wrote causal trace to {path} (inspect with failmpi-trace)");
            } else {
                eprintln!("trace: no run executed, {path} not written");
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Options, String> {
        Options::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_flags() {
        let o = parse(&[
            "--smoke", "--runs", "3", "--threads", "2", "--json", "x.json", "--metrics",
            "m.json", "--trace-out", "t.json", "--profile", "p.json",
        ])
        .unwrap();
        assert!(o.smoke);
        assert_eq!(o.runs, Some(3));
        assert_eq!(o.threads, Some(2));
        assert_eq!(o.json.as_deref(), Some("x.json"));
        assert_eq!(o.metrics.as_deref(), Some("m.json"));
        assert_eq!(o.trace_out.as_deref(), Some("t.json"));
        assert_eq!(o.profile.as_deref(), Some("p.json"));
    }

    #[test]
    fn rejects_unknown() {
        assert!(parse(&["--bogus"]).is_err());
        assert!(parse(&["--runs"]).is_err());
        assert!(parse(&["--runs", "abc"]).is_err());
        assert!(parse(&["--metrics"]).is_err());
        assert!(parse(&["--trace-out"]).is_err());
        assert!(parse(&["--profile"]).is_err());
    }

    #[test]
    fn empty_is_default() {
        let o = parse(&[]).unwrap();
        assert!(!o.smoke);
        assert_eq!(o.runs, None);
        assert_eq!(o.lint, None);
    }

    #[test]
    fn lint_flag_sets_process_default() {
        use crate::harness::{default_lint_mode, LintMode};
        let before = default_lint_mode();
        let o = parse(&["--lint", "strict"]).unwrap();
        assert_eq!(o.lint, Some(LintMode::Strict));
        assert_eq!(default_lint_mode(), LintMode::Strict);
        crate::harness::set_default_lint_mode(before);
        assert!(parse(&["--lint", "bogus"]).is_err());
        assert!(parse(&["--lint"]).is_err());
    }

    #[test]
    fn backend_flag_sets_process_default() {
        use crate::harness::default_backend;
        let before = default_backend();
        assert_eq!(parse(&[]).unwrap().backend, None);
        let o = parse(&["--backend", "ulfm"]).unwrap();
        assert_eq!(o.backend, Some(BackendKind::Ulfm));
        assert_eq!(default_backend(), BackendKind::Ulfm);
        crate::harness::set_default_backend(before);
        assert!(parse(&["--backend", "bogus"]).is_err());
        assert!(parse(&["--backend"]).is_err());
    }

    #[test]
    fn expect_freeze_flag_sets_process_default() {
        use crate::harness::default_expect_freeze;
        assert!(!parse(&[]).unwrap().expect_freeze);
        let o = parse(&["--expect-freeze"]).unwrap();
        assert!(o.expect_freeze);
        assert!(default_expect_freeze());
        crate::harness::set_default_expect_freeze(false);
    }
}
