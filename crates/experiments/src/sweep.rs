//! Parallel execution of independent experiment runs.
//!
//! Each simulation is strictly single-threaded and deterministic; the
//! parallelism of the harness lives *across* runs: a work-stealing pool of
//! OS threads drains the spec list. Results come back in spec order.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

use crate::harness::{run_one, ExperimentSpec, RunRecord};

/// Runs every spec, using up to `threads` worker threads (0 = all cores).
pub fn run_all(specs: &[ExperimentSpec], threads: usize) -> Vec<RunRecord> {
    let threads = if threads == 0 {
        std::thread::available_parallelism().map_or(4, |n| n.get())
    } else {
        threads
    }
    .min(specs.len().max(1));

    if threads <= 1 || specs.len() <= 1 {
        return specs.iter().map(run_one).collect();
    }

    let next = AtomicUsize::new(0);
    let next = &next;
    let (tx, rx) = mpsc::channel::<(usize, RunRecord)>();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let tx = tx.clone();
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= specs.len() {
                    return;
                }
                let record = run_one(&specs[i]);
                if tx.send((i, record)).is_err() {
                    return;
                }
            });
        }
        drop(tx); // workers hold the remaining senders

        let mut results: Vec<Option<RunRecord>> = (0..specs.len()).map(|_| None).collect();
        let mut filled = 0usize;
        // The channel closes when the last worker drops its sender; a
        // worker panic propagates out of the scope, so an incomplete
        // result set can only mean a logic error here.
        for (i, record) in rx {
            results[i] = Some(record);
            filled += 1;
        }
        assert_eq!(filled, specs.len(), "worker exited without reporting");
        results.into_iter().flatten().collect()
    })
}

/// Expands one spec into `runs` seeded copies (seed, seed+1, …).
pub fn seeded(spec: &ExperimentSpec, runs: usize) -> Vec<ExperimentSpec> {
    (0..runs as u64)
        .map(|k| {
            let mut s = spec.clone();
            s.seed = spec.seed.wrapping_add(k);
            s
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use failmpi_sim::{SimDuration, SimTime};
    use failmpi_mpichv::VclConfig;
    use failmpi_workloads::BtClass;

    fn tiny_spec(seed: u64) -> ExperimentSpec {
        ExperimentSpec {
            cluster: VclConfig::small(4, SimDuration::from_secs(2)),
            workload: crate::harness::Workload::Bt(BtClass::S),
            injection: None,
            timeout: SimTime::from_secs(150),
            freeze_window: SimDuration::from_secs(15),
            seed,
            tie_break: failmpi_sim::TieBreak::Fifo,
            backend: failmpi_backend::BackendKind::Vcl,
        }
    }

    #[test]
    fn parallel_matches_serial() {
        let specs = seeded(&tiny_spec(1), 4);
        let serial = run_all(&specs, 1);
        let parallel = run_all(&specs, 4);
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.outcome, b.outcome);
            assert_eq!(a.end, b.end);
            assert_eq!(a.waves_committed, b.waves_committed);
        }
    }

    #[test]
    fn seeded_increments() {
        let specs = seeded(&tiny_spec(10), 3);
        let seeds: Vec<u64> = specs.iter().map(|s| s.seed).collect();
        assert_eq!(seeds, vec![10, 11, 12]);
    }
}
