//! Table 1 (Sec. 2.1): capability comparison of distributed fault
//! injectors. The FAIL-FCI column is not just prose here — each claimed
//! capability is cross-checked against this repository's implementation by
//! the tests at the bottom.

/// One comparison row.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CriterionRow {
    /// The criterion, as named by the paper.
    pub criterion: &'static str,
    /// NFTAPE (Stott et al. 2000).
    pub nftape: bool,
    /// LOKI (Chandra et al. 2000).
    pub loki: bool,
    /// FAIL-FCI / FAIL-MPI (this system).
    pub fail_fci: bool,
}

/// The paper's Table 1, verbatim.
pub const TABLE1: &[CriterionRow] = &[
    CriterionRow {
        criterion: "High Expressiveness",
        nftape: true,
        loki: false,
        fail_fci: true,
    },
    CriterionRow {
        criterion: "High-level Language",
        nftape: false,
        loki: false,
        fail_fci: true,
    },
    CriterionRow {
        criterion: "Low Intrusion",
        nftape: true,
        loki: true,
        fail_fci: true,
    },
    CriterionRow {
        criterion: "Probabilistic Scenario",
        nftape: true,
        loki: false,
        fail_fci: true,
    },
    CriterionRow {
        criterion: "No Code Modification",
        nftape: false,
        loki: false,
        fail_fci: true,
    },
    CriterionRow {
        criterion: "Scalability",
        nftape: false,
        loki: true,
        fail_fci: true,
    },
    CriterionRow {
        criterion: "Global-state Injection",
        nftape: true,
        loki: true,
        fail_fci: true,
    },
];

fn yn(b: bool) -> &'static str {
    if b {
        "yes"
    } else {
        "no"
    }
}

/// Renders the table in the paper's layout.
pub fn render() -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<24} {:>8} {:>8} {:>8}\n",
        "Criteria", "NFTAPE", "LOKI", "FAIL-FCI"
    ));
    for row in TABLE1 {
        out.push_str(&format!(
            "{:<24} {:>8} {:>8} {:>8}\n",
            row.criterion,
            yn(row.nftape),
            yn(row.loki),
            yn(row.fail_fci)
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use failmpi_core::{compile, Deployment, FailRuntime};

    #[test]
    fn table_matches_paper_counts() {
        assert_eq!(TABLE1.len(), 7);
        // FAIL-FCI claims every criterion.
        assert!(TABLE1.iter().all(|r| r.fail_fci));
        // NFTAPE misses high-level language, code-mod freedom, scalability.
        assert_eq!(TABLE1.iter().filter(|r| r.nftape).count(), 4);
        // LOKI only scores intrusion, scalability and global state.
        assert_eq!(TABLE1.iter().filter(|r| r.loki).count(), 3);
    }

    #[test]
    fn render_is_table_shaped() {
        let t = render();
        assert_eq!(t.lines().count(), 8);
        assert!(t.contains("High Expressiveness"));
        assert!(t.contains("FAIL-FCI"));
    }

    /// "High-level Language" + "High Expressiveness" + "Probabilistic
    /// Scenario": a probabilistic, stateful, communicating scenario really
    /// compiles and deploys in this implementation.
    #[test]
    fn claims_backed_by_implementation() {
        let src = r#"
            param N = 3;
            daemon Adv {
              int count = 0;
              node 1:
                always int pick = FAIL_RANDOM(0, N);
                timer t = 10;
                t -> !crash(G[pick]), count = count + 1, goto 1;
            }
            daemon Machine {
              node 1:
                onload -> continue, goto 2;
                ?crash -> !no(P), goto 1;
              node 2:
                before(localMPI_setCommand) -> halt, goto 1;
                ?crash -> !ok(P), halt, goto 1;
                onexit -> goto 1;
            }
        "#;
        let s = compile(src).expect("expressive scenario compiles");
        let mut d = Deployment::new();
        d.add_instance("P", "Adv").unwrap();
        let ms: Vec<usize> = (0..4)
            .map(|i| d.add_instance(&format!("m{i}"), "Machine").unwrap())
            .collect();
        d.add_group("G", ms).unwrap();
        // "No Code Modification": the runtime drives the system purely via
        // abstract actions; building it requires no app hooks.
        assert!(FailRuntime::new(&s, d, &[]).is_ok());
    }
}
