//! The `--trace-out` sink: captures one run's causal trace per invocation
//! and writes it as a schema-versioned [`failmpi_trace::TraceFile`].
//!
//! Mirrors the [`crate::metrics`] sink shape — a binary installs the sink,
//! the harness feeds it, the binary writes the result — but where the
//! metrics sink collects *every* run, causal tracing is per-run data
//! measured in megabytes, so this sink claims exactly **one** run: the
//! first to start after [`install_sink`]. With `--runs 1 --threads 1` (or
//! the single-run `trace` binary) the pick is deterministic; in a parallel
//! sweep it is whichever run the thread pool starts first.
//!
//! The claimed run is executed with the engine's causal tracing on (see
//! [`failmpi_sim::CausalLog`]); every other run keeps the zero-overhead
//! disabled path. This module also owns the [`VclEvent`] → [`Mark`]
//! conversion — the semantic vocabulary `failmpi-trace explain` keys on
//! (`failure_detected`, `recovery_started`, `daemon_spawned`, …), so the
//! kind strings here are a compatibility contract with that crate.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Mutex;

use failmpi_sim::{CausalLog, TraceEntry};
use failmpi_mpichv::{Cluster, VclEvent};
use failmpi_trace::{Mark, TraceFile};

use crate::classify::Outcome;
use crate::harness::TracedRun;
use crate::robustness::outcome_class;

/// Converts one semantic cluster-trace entry into a [`Mark`], anchored to
/// the engine event it was recorded under (when causal tracing was on).
///
/// The kind strings are the stable vocabulary of `failmpi-trace explain`
/// and must not be renamed casually: `failure_detected`,
/// `recovery_started` and `daemon_spawned` drive its dispatcher-bug
/// narration.
pub fn mark_of(entry: &TraceEntry<VclEvent>) -> Mark {
    let mut m = Mark {
        node: entry.cause.map(|id| id.0),
        t_us: entry.at.as_micros(),
        kind: String::new(),
        label: String::new(),
        rank: None,
        epoch: None,
        wave: None,
        during_recovery: false,
    };
    match &entry.kind {
        VclEvent::DaemonSpawned { rank, epoch, host } => {
            m.kind = "daemon_spawned".to_string();
            m.label = format!("spawn rank {} epoch {epoch} on host {}", rank.0, host.0);
            m.rank = Some(i64::from(rank.0));
            m.epoch = Some(i64::from(*epoch));
        }
        VclEvent::DaemonRegistered { rank, epoch } => {
            m.kind = "daemon_registered".to_string();
            m.label = format!("rank {} registered epoch {epoch}", rank.0);
            m.rank = Some(i64::from(rank.0));
            m.epoch = Some(i64::from(*epoch));
        }
        VclEvent::RunStarted { epoch } => {
            m.kind = "run_started".to_string();
            m.label = format!("run started epoch {epoch}");
            m.epoch = Some(i64::from(*epoch));
        }
        VclEvent::RankResumed { rank, from_wave } => {
            m.kind = "rank_resumed".to_string();
            m.label = match from_wave {
                Some(w) => format!("rank {} resumed from wave {w}", rank.0),
                None => format!("rank {} resumed from scratch", rank.0),
            };
            m.rank = Some(i64::from(rank.0));
            m.wave = from_wave.map(i64::from);
        }
        VclEvent::AppProgress { rank, iter } => {
            m.kind = "app_progress".to_string();
            m.label = format!("rank {} iteration {iter}", rank.0);
            m.rank = Some(i64::from(rank.0));
        }
        VclEvent::WaveStarted { wave } => {
            m.kind = "wave_started".to_string();
            m.label = format!("wave {wave} started");
            m.wave = Some(i64::from(*wave));
        }
        VclEvent::LocalCheckpointDone { rank, wave } => {
            m.kind = "local_checkpoint_done".to_string();
            m.label = format!("rank {} checkpointed wave {wave}", rank.0);
            m.rank = Some(i64::from(rank.0));
            m.wave = Some(i64::from(*wave));
        }
        VclEvent::WaveCommitted { wave } => {
            m.kind = "wave_committed".to_string();
            m.label = format!("wave {wave} committed");
            m.wave = Some(i64::from(*wave));
        }
        VclEvent::FailureDetected {
            rank,
            epoch,
            during_recovery,
        } => {
            m.kind = "failure_detected".to_string();
            m.label = if *during_recovery {
                format!(
                    "FAILURE rank {} epoch {epoch} (during active recovery)",
                    rank.0
                )
            } else {
                format!("FAILURE rank {} epoch {epoch}", rank.0)
            };
            m.rank = Some(i64::from(rank.0));
            m.epoch = Some(i64::from(*epoch));
            m.during_recovery = *during_recovery;
        }
        VclEvent::RecoveryStarted { epoch } => {
            m.kind = "recovery_started".to_string();
            m.label = format!("recovery -> epoch {epoch}");
            m.epoch = Some(i64::from(*epoch));
        }
        VclEvent::LaunchRetried { rank, epoch } => {
            m.kind = "launch_retried".to_string();
            m.label = format!("relaunch retry rank {} epoch {epoch}", rank.0);
            m.rank = Some(i64::from(rank.0));
            m.epoch = Some(i64::from(*epoch));
        }
        VclEvent::RankFinalized { rank } => {
            m.kind = "rank_finalized".to_string();
            m.label = format!("rank {} finalized", rank.0);
            m.rank = Some(i64::from(rank.0));
        }
        VclEvent::JobComplete => {
            m.kind = "job_complete".to_string();
            m.label = "job complete".to_string();
        }
    }
    m
}

/// Assembles the exported trace of one run: the engine's happens-before
/// DAG as nodes, the cluster's semantic [`VclEvent`] records as anchored
/// marks, plus run identity (name, seed, classified outcome, end instant,
/// track names).
pub fn build_trace_file(
    name: &str,
    seed: u64,
    outcome: &Outcome,
    end_micros: u64,
    cluster: &Cluster,
    causal: &CausalLog,
    track_names: &[String],
) -> TraceFile {
    let mut trace = TraceFile::from_causal(causal);
    trace.name = name.to_string();
    trace.seed = seed;
    trace.outcome = outcome_class(outcome).to_string();
    trace.end_micros = end_micros;
    trace.tracks = track_names.to_vec();
    trace.marks = cluster.trace().entries().iter().map(mark_of).collect();
    trace
}

/// [`build_trace_file`] over a finished [`TracedRun`].
pub fn trace_file_of(name: &str, seed: u64, traced: &TracedRun) -> TraceFile {
    build_trace_file(
        name,
        seed,
        &traced.record.outcome,
        traced.record.end.as_micros(),
        &traced.cluster,
        &traced.causal,
        &traced.track_names,
    )
}

/// Sink states: no sink, armed (next run to start claims it), claimed.
const OFF: u8 = 0;
const ARMED: u8 = 1;
const CLAIMED: u8 = 2;

static STATE: AtomicU8 = AtomicU8::new(OFF);
static CAPTURED: Mutex<Option<TraceFile>> = Mutex::new(None);

/// Arms the sink: the next run the harness starts is executed with causal
/// tracing on and its trace captured. Called once by a binary when
/// `--trace-out <path>` is given, before any experiment runs.
pub fn install_sink() {
    CAPTURED.lock().expect("trace sink lock").take();
    STATE.store(ARMED, Ordering::Release);
}

/// Atomically claims the armed sink for the calling run. Only the harness
/// calls this, once per run.
pub(crate) fn claim() -> bool {
    STATE
        .compare_exchange(ARMED, CLAIMED, Ordering::AcqRel, Ordering::Acquire)
        .is_ok()
}

/// Stores the claimed run's trace for [`write_sink`].
pub(crate) fn submit(trace: TraceFile) {
    CAPTURED.lock().expect("trace sink lock").replace(trace);
}

/// Writes the captured trace to `path`; `Ok(false)` when no run was
/// captured (the sink was never installed, or no experiment ran).
pub fn write_sink(path: &str) -> std::io::Result<bool> {
    let trace = CAPTURED.lock().expect("trace sink lock").take();
    match trace {
        Some(t) => {
            std::fs::write(path, t.to_json())?;
            Ok(true)
        }
        None => Ok(false),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use failmpi_net::HostId;
    use failmpi_sim::SimTime;
    use failmpi_mpi::Rank;

    fn entry(kind: VclEvent) -> TraceEntry<VclEvent> {
        TraceEntry::new(SimTime::from_secs(3), kind)
    }

    #[test]
    fn explain_contract_kind_strings_are_stable() {
        // `failmpi-trace explain` narrates the dispatcher bug from exactly
        // these kinds; renaming them silently breaks the CLI.
        let bug = mark_of(&entry(VclEvent::FailureDetected {
            rank: Rank(2),
            epoch: 1,
            during_recovery: true,
        }));
        assert_eq!(bug.kind, "failure_detected");
        assert!(bug.during_recovery);
        assert_eq!(bug.rank, Some(2));
        assert_eq!(bug.epoch, Some(1));
        let wave = mark_of(&entry(VclEvent::RecoveryStarted { epoch: 1 }));
        assert_eq!(wave.kind, "recovery_started");
        let spawn = mark_of(&entry(VclEvent::DaemonSpawned {
            rank: Rank(2),
            epoch: 1,
            host: HostId(5),
        }));
        assert_eq!(spawn.kind, "daemon_spawned");
        assert_eq!((spawn.rank, spawn.epoch), (Some(2), Some(1)));
    }

    #[test]
    fn marks_carry_time_and_anchor() {
        let mut e = entry(VclEvent::WaveCommitted { wave: 4 });
        e.cause = Some(failmpi_sim::EventId(17));
        let m = mark_of(&e);
        assert_eq!(m.node, Some(17));
        assert_eq!(m.t_us, SimTime::from_secs(3).as_micros());
        assert_eq!(m.wave, Some(4));
        assert_eq!(m.kind, "wave_committed");
    }

    #[test]
    fn every_vcl_event_maps_to_a_distinct_kind() {
        let events = vec![
            VclEvent::DaemonSpawned {
                rank: Rank(0),
                epoch: 0,
                host: HostId(0),
            },
            VclEvent::DaemonRegistered { rank: Rank(0), epoch: 0 },
            VclEvent::RunStarted { epoch: 0 },
            VclEvent::RankResumed {
                rank: Rank(0),
                from_wave: None,
            },
            VclEvent::AppProgress { rank: Rank(0), iter: 1 },
            VclEvent::WaveStarted { wave: 0 },
            VclEvent::LocalCheckpointDone { rank: Rank(0), wave: 0 },
            VclEvent::WaveCommitted { wave: 0 },
            VclEvent::FailureDetected {
                rank: Rank(0),
                epoch: 0,
                during_recovery: false,
            },
            VclEvent::RecoveryStarted { epoch: 1 },
            VclEvent::LaunchRetried { rank: Rank(0), epoch: 1 },
            VclEvent::RankFinalized { rank: Rank(0) },
            VclEvent::JobComplete,
        ];
        let kinds: std::collections::BTreeSet<String> =
            events.iter().map(|e| mark_of(&entry(e.clone())).kind).collect();
        assert_eq!(kinds.len(), events.len(), "kinds must be distinct");
        assert!(kinds.iter().all(|k| !k.is_empty()));
    }
}
