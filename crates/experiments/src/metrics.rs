//! The `--metrics` sink: collects per-run [`MetricsSnapshot`]s process-wide
//! and writes one schema-versioned JSON document per invocation.
//!
//! The harness submits every run's snapshot here (a no-op until a binary
//! installs the sink with [`install_sink`]), so the figure binaries get
//! `--metrics` support without threading a collector through every sweep.
//! [`write_sink`] orders the collected runs by their serialized form before
//! writing, making the document independent of worker-thread interleaving:
//! a same-seed re-run of any figure binary produces a byte-identical file.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use failmpi_obs::{MetricsSnapshot, SCHEMA_VERSION};
use serde::Serialize;

static ENABLED: AtomicBool = AtomicBool::new(false);
static RUNS: Mutex<Vec<MetricsSnapshot>> = Mutex::new(Vec::new());

/// Starts collecting run snapshots (clears anything collected earlier).
/// Called once by a binary when `--metrics <path>` is given.
pub fn install_sink() {
    RUNS.lock().expect("metrics sink lock").clear();
    ENABLED.store(true, Ordering::Release);
}

/// Submits one run's snapshot; no-op unless the sink is installed.
pub(crate) fn submit(snap: &MetricsSnapshot) {
    if ENABLED.load(Ordering::Acquire) {
        RUNS.lock().expect("metrics sink lock").push(snap.clone());
    }
}

/// The document written by [`write_sink`].
#[derive(Serialize)]
struct MetricsDoc {
    /// Snapshot schema version (see [`failmpi_obs::SCHEMA_VERSION`]).
    schema_version: u32,
    /// Runs collected this invocation.
    runs: Vec<MetricsSnapshot>,
    /// Element-wise merge of every run (sweep-level aggregate).
    aggregate: MetricsSnapshot,
}

/// Renders the collected runs as a deterministic JSON document.
pub fn render_sink() -> String {
    let mut runs = RUNS.lock().expect("metrics sink lock").clone();
    // Canonical order: sweeps run records on worker threads, so arrival
    // order is schedule-dependent; the serialized form is not.
    runs.sort_by_cached_key(MetricsSnapshot::to_json);
    let mut aggregate = MetricsSnapshot::new();
    for r in &runs {
        aggregate.merge(r);
    }
    let doc = MetricsDoc {
        schema_version: SCHEMA_VERSION,
        runs,
        aggregate,
    };
    let mut out = serde_json::to_string_pretty(&doc).expect("serializable");
    out.push('\n');
    out
}

/// Writes the collected runs to `path`; returns how many runs were written.
pub fn write_sink(path: &str) -> std::io::Result<usize> {
    let n = RUNS.lock().expect("metrics sink lock").len();
    std::fs::write(path, render_sink())?;
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    // One test only: the sink is process-global state and cargo runs tests
    // of a binary concurrently, so everything exercises it in one place.
    #[test]
    fn sink_collects_orders_and_aggregates() {
        assert!(!ENABLED.load(Ordering::Acquire));
        let mut a = MetricsSnapshot::new();
        a.set_counter("x", 2);
        submit(&a); // not installed: dropped
        install_sink();
        let mut b = MetricsSnapshot::new();
        b.set_counter("x", 5);
        // Submit in "wrong" order; the rendered document must not care.
        submit(&b);
        submit(&a);
        let doc = render_sink();
        install_sink(); // reset
        let v = serde_json::from_str(&doc).expect("valid json");
        let runs = v.get("runs").and_then(|r| r.as_array()).expect("runs");
        assert_eq!(runs.len(), 2);
        let agg = v.get("aggregate").expect("aggregate");
        assert_eq!(
            agg.get("counters")
                .and_then(|c| c.get("x"))
                .and_then(|x| x.as_u64()),
            Some(7)
        );
        assert_eq!(
            v.get("schema_version").and_then(|s| s.as_u64()),
            Some(u64::from(SCHEMA_VERSION))
        );
    }
}
