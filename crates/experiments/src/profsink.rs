//! The `--profile` sink: aggregates per-run [`RunProfile`]s process-wide
//! and writes one merged, deterministic JSON document per invocation.
//!
//! When armed (a binary saw `--profile <path>`), the harness wraps every
//! run in a `failmpi_obs::prof` context on its worker thread and submits
//! the resulting profile here. Profiles merge commutatively
//! ([`RunProfile::merge`]), so the aggregate — unlike raw arrival order —
//! is independent of worker-thread interleaving, and the written file is
//! byte-identical across same-seed re-runs of the same binary.
//!
//! The merged document keeps the backend tag of its runs; a binary that
//! somehow mixes backends under one sink produces `"backend": "mixed"`,
//! which `failmpi-prof` surfaces rather than hides.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use failmpi_obs::RunProfile;

static ARMED: AtomicBool = AtomicBool::new(false);
static MERGED: Mutex<Option<RunProfile>> = Mutex::new(None);

/// Arms the sink (clearing anything collected earlier). Called once by a
/// binary when `--profile <path>` is given, before any experiment runs.
pub fn install_sink() {
    *MERGED.lock().expect("profile sink lock") = None;
    ARMED.store(true, Ordering::Release);
}

/// Disarms the sink and drops the aggregate. Tests that compare
/// profiled vs unprofiled runs in one process use this to restore the
/// default (zero-overhead) path; binaries never need it.
pub fn disarm_sink() {
    ARMED.store(false, Ordering::Release);
    *MERGED.lock().expect("profile sink lock") = None;
}

/// Whether the harness should profile runs. One atomic load per run.
pub(crate) fn armed() -> bool {
    ARMED.load(Ordering::Acquire)
}

/// Folds one run's profile into the process aggregate; no-op unless the
/// sink is armed.
pub(crate) fn submit(profile: RunProfile) {
    if !armed() {
        return;
    }
    let mut merged = MERGED.lock().expect("profile sink lock");
    match merged.as_mut() {
        Some(agg) => agg.merge(&profile),
        None => *merged = Some(profile),
    }
}

/// Renders the aggregate as pretty JSON, or `None` when no run was
/// profiled.
pub fn render_sink() -> Option<String> {
    MERGED
        .lock()
        .expect("profile sink lock")
        .as_ref()
        .map(RunProfile::to_pretty_json)
}

/// Writes the aggregate profile to `path`. Returns `Ok(false)` (writing
/// nothing) when no run was profiled.
pub fn write_sink(path: &str) -> std::io::Result<bool> {
    match render_sink() {
        Some(json) => {
            std::fs::write(path, json)?;
            Ok(true)
        }
        None => Ok(false),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // One test only: the sink is process-global state and cargo runs
    // tests of a binary concurrently, so everything exercises it in one
    // place.
    #[test]
    fn sink_merges_runs_commutatively() {
        assert!(!armed());
        let mut a = RunProfile::new();
        a.backend = "vcl".to_string();
        a.runs = 1;
        a.events = 10;
        submit(a.clone()); // not armed: dropped
        assert!(render_sink().is_none());

        install_sink();
        let mut b = a.clone();
        b.events = 32;
        submit(a.clone());
        submit(b.clone());
        let doc = render_sink().expect("aggregate");
        // Reversed submission order yields the identical document.
        install_sink();
        submit(b);
        submit(a);
        assert_eq!(render_sink().expect("aggregate"), doc);

        let parsed = RunProfile::from_json(&doc).expect("parses");
        assert_eq!(parsed.runs, 2);
        assert_eq!(parsed.events, 42);
        assert_eq!(parsed.backend, "vcl");
        // Reset for any future in-process use.
        *MERGED.lock().unwrap() = None;
        ARMED.store(false, Ordering::Release);
    }
}
