//! Summary statistics over run records.

use serde::Serialize;

use failmpi_sim::SimTime;

use crate::harness::RunRecord;

/// Aggregate of one experiment point (one bar/marker in a paper figure).
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct PointSummary {
    /// Number of runs at this point.
    pub runs: usize,
    /// Mean execution time of the *completed* runs, in seconds (the paper
    /// averages only terminated experiments).
    pub mean_time_s: Option<f64>,
    /// Sample standard deviation of the completed times, in seconds.
    pub std_time_s: Option<f64>,
    /// Fastest completed run, in seconds.
    pub min_time_s: Option<f64>,
    /// Slowest completed run, in seconds (with `min`, the spread behind
    /// the paper's "apparently chaotic" Fig. 6 observation).
    pub max_time_s: Option<f64>,
    /// Fraction of runs classified non-terminating (0–1).
    pub non_terminating: f64,
    /// Fraction of runs classified buggy (0–1).
    pub buggy: f64,
    /// Mean number of faults injected per run.
    pub mean_faults: f64,
}

impl PointSummary {
    /// Summarises a set of runs of the same experiment point.
    pub fn from_runs(records: &[RunRecord]) -> Self {
        let n = records.len().max(1) as f64;
        let times: Vec<f64> = records
            .iter()
            .filter_map(|r| r.outcome.time())
            .map(SimTime::as_secs_f64)
            .collect();
        let (mean, std) = mean_std(&times);
        PointSummary {
            runs: records.len(),
            mean_time_s: mean,
            std_time_s: std,
            min_time_s: times.iter().copied().reduce(f64::min),
            max_time_s: times.iter().copied().reduce(f64::max),
            non_terminating: records
                .iter()
                .filter(|r| r.outcome.is_non_terminating())
                .count() as f64
                / n,
            buggy: records.iter().filter(|r| r.outcome.is_buggy()).count() as f64 / n,
            mean_faults: records.iter().map(|r| r.faults_injected as f64).sum::<f64>() / n,
        }
    }

    /// Percentage (0–100) of non-terminating runs.
    pub fn pct_non_terminating(&self) -> f64 {
        self.non_terminating * 100.0
    }

    /// Percentage (0–100) of buggy runs.
    pub fn pct_buggy(&self) -> f64 {
        self.buggy * 100.0
    }
}

/// Mean and sample standard deviation; `None`s when empty / singleton.
pub fn mean_std(xs: &[f64]) -> (Option<f64>, Option<f64>) {
    if xs.is_empty() {
        return (None, None);
    }
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    if xs.len() < 2 {
        return (Some(mean), None);
    }
    let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
    (Some(mean), Some(var.sqrt()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::Outcome;

    fn rec(outcome: Outcome, faults: u32) -> RunRecord {
        RunRecord {
            outcome,
            end: SimTime::from_secs(0),
            faults_injected: faults,
            recoveries: 0,
            waves_committed: 0,
            max_progress: 0,
            traffic: Default::default(),
            fingerprint: 0,
            events: 0,
            metrics: Default::default(),
        }
    }

    #[test]
    fn mean_std_basics() {
        assert_eq!(mean_std(&[]), (None, None));
        assert_eq!(mean_std(&[4.0]), (Some(4.0), None));
        let (m, s) = mean_std(&[1.0, 3.0]);
        assert_eq!(m, Some(2.0));
        assert!((s.unwrap() - 2f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn summary_counts_outcomes() {
        let runs = vec![
            rec(Outcome::Completed { time: SimTime::from_secs(100) }, 2),
            rec(Outcome::Completed { time: SimTime::from_secs(200) }, 3),
            rec(Outcome::NonTerminating, 30),
            rec(Outcome::Buggy, 1),
        ];
        let s = PointSummary::from_runs(&runs);
        assert_eq!(s.runs, 4);
        assert_eq!(s.mean_time_s, Some(150.0));
        assert_eq!(s.min_time_s, Some(100.0));
        assert_eq!(s.max_time_s, Some(200.0));
        assert_eq!(s.pct_non_terminating(), 25.0);
        assert_eq!(s.pct_buggy(), 25.0);
        assert_eq!(s.mean_faults, 9.0);
    }

    #[test]
    fn summary_of_empty_is_degenerate() {
        let s = PointSummary::from_runs(&[]);
        assert_eq!(s.runs, 0);
        assert_eq!(s.mean_time_s, None);
        assert_eq!(s.min_time_s, None);
        assert_eq!(s.max_time_s, None);
        assert_eq!(s.pct_buggy(), 0.0);
    }
}
