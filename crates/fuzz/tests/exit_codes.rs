//! Exit-code contract of the `failmpi-fuzz` binary, driven through the
//! compiled executable: 0 on a clean campaign or drift-free replay, 1 when
//! error-severity findings (FZ001/FZ002/FZ004) surface, 2 on usage or I/O
//! errors — and never a vacuous pass on malformed input.

use std::path::PathBuf;
use std::process::Command;

fn fuzz() -> Command {
    Command::new(env!("CARGO_BIN_EXE_failmpi-fuzz"))
}

fn code(out: &std::process::Output) -> i32 {
    out.status.code().expect("exit code")
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("failmpi-fuzz-test-{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("tmpdir");
    dir
}

#[test]
fn help_exits_zero() {
    let out = fuzz().arg("--help").output().expect("runs");
    assert_eq!(code(&out), 0);
    assert!(String::from_utf8_lossy(&out.stdout).contains("usage:"));
}

#[test]
fn usage_errors_exit_two() {
    // Unknown flag, flags missing their values, bad format, zero probe
    // seeds, and the replay/corpus conflict all land on exit 2.
    for args in [
        vec!["--bogus"],
        vec!["--seed"],
        vec!["--budget", "many"],
        vec!["--format", "xml"],
        vec!["--probe-seeds", "0"],
        vec!["--replay", "x", "--corpus", "y"],
        vec!["--replay", "x", "--minimize-family"],
    ] {
        let out = fuzz().args(&args).output().expect("runs");
        assert_eq!(code(&out), 2, "args {args:?}: {out:?}");
    }
}

#[test]
fn replay_of_a_missing_or_broken_corpus_exits_two() {
    let out = fuzz()
        .args(["--replay", "/nonexistent/fuzz-corpus"])
        .output()
        .expect("runs");
    assert_eq!(code(&out), 2);

    // A directory whose manifest is not JSON must refuse, not pass.
    let dir = scratch("broken-manifest");
    std::fs::write(dir.join("corpus.json"), "daemon A { node 1: }").expect("write");
    let out = fuzz().arg("--replay").arg(&dir).output().expect("runs");
    assert_eq!(code(&out), 2, "{out:?}");
}

#[test]
fn clean_campaign_exits_zero_and_is_deterministic() {
    let dir_a = scratch("campaign-a");
    let dir_b = scratch("campaign-b");
    let mut stdouts = Vec::new();
    for dir in [&dir_a, &dir_b] {
        let out = fuzz()
            .args(["--seed", "1", "--budget", "3", "--format", "json"])
            .arg("--corpus")
            .arg(dir.join("corpus"))
            .arg("--findings")
            .arg(dir.join("findings.json"))
            .output()
            .expect("runs");
        assert_eq!(code(&out), 0, "{out:?}");
        stdouts.push(String::from_utf8(out.stdout).expect("utf8"));
    }
    assert!(stdouts[0].contains("\"fig10_family_rediscovered\""));
    // Double-run determinism, down to the bytes of every artifact.
    assert_eq!(stdouts[0], stdouts[1]);
    assert_eq!(
        std::fs::read(dir_a.join("findings.json")).expect("findings a"),
        std::fs::read(dir_b.join("findings.json")).expect("findings b"),
    );
    let manifest_a = std::fs::read(dir_a.join("corpus/corpus.json")).expect("manifest a");
    assert_eq!(
        manifest_a,
        std::fs::read(dir_b.join("corpus/corpus.json")).expect("manifest b"),
    );

    // The freshly written corpus replays with zero drift...
    let out = fuzz()
        .arg("--replay")
        .arg(dir_a.join("corpus"))
        .output()
        .expect("runs");
    assert_eq!(code(&out), 0, "{out:?}");

    // ...and a corrupted pin is caught as FZ004 with exit 1 — the drift
    // path is exercised, never vacuous.
    let manifest = String::from_utf8(manifest_a).expect("utf8");
    assert!(manifest.contains("\"freezes\""), "{manifest}");
    let tampered = manifest.replacen("\"freezes\"", "\"survives\"", 1);
    std::fs::write(dir_a.join("corpus/corpus.json"), tampered).expect("write");
    let out = fuzz()
        .arg("--replay")
        .arg(dir_a.join("corpus"))
        .output()
        .expect("runs");
    assert_eq!(code(&out), 1, "{out:?}");
    assert!(String::from_utf8_lossy(&out.stdout).contains("FZ004"));
}
