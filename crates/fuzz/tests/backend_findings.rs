//! The oracle's backend axis: evaluating a candidate also runs it through
//! the ULFM and replication models/runtimes, and a concrete divergence
//! from the Vcl view surfaces as the informational FZ008 finding.

use std::collections::BTreeSet;
use std::path::PathBuf;

use failmpi_fuzz::{candidate_of, evaluate, findings_for, load_corpus, FuzzConfig};

fn corpus_dir() -> PathBuf {
    // The seed corpus lives with the facade's replay suite; the oracle
    // tests borrow its minimized reproducer as a known-divergent input.
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/fixtures/fuzz")
}

#[test]
fn fig10_reproducer_diverges_under_ulfm_and_reports_fz008() {
    let entries = load_corpus(&corpus_dir()).expect("seed corpus loads");
    let (entry, source) = entries
        .iter()
        .find(|(e, _)| e.name == "min-fig10-stale-entry")
        .expect("minimized reproducer present");
    let cfg = FuzzConfig {
        probe_seeds: entry.dynamic_historical.iter().map(|(s, _)| *s).collect(),
        ..FuzzConfig::default()
    };
    let ev = evaluate(&candidate_of(entry, source), &cfg);

    // The dispatcher bug freezes the Vcl probes; both alternate backends
    // are evaluated and at least ULFM completes the same campaign.
    assert!(ev.h_buggy(), "reproducer no longer freezes under Vcl");
    assert_eq!(ev.backends.len(), 2);
    let ulfm = &ev.backends[0];
    assert_eq!(ulfm.backend.name(), "ulfm");
    assert!(!ulfm.buggy(), "reproducer freezes under ULFM too: {ulfm:?}");

    let findings = findings_for(&ev, &BTreeSet::new());
    let fz008: Vec<_> = findings.iter().filter(|d| d.code == "FZ008").collect();
    assert!(
        fz008
            .iter()
            .any(|d| d.message.contains("freezes under vcl") && d.message.contains("ulfm")),
        "no FZ008 naming the vcl/ulfm divergence: {findings:?}"
    );
}

#[test]
fn non_divergent_entries_report_no_fz008() {
    // A scenario that behaves the same everywhere (the delay mutants
    // complete under every backend) must not manufacture a divergence.
    let entries = load_corpus(&corpus_dir()).expect("seed corpus loads");
    let (entry, source) = entries
        .iter()
        .find(|(e, _)| e.name.contains("delay_injection"))
        .expect("a delay mutant is pinned");
    let cfg = FuzzConfig {
        probe_seeds: entry.dynamic_historical.iter().map(|(s, _)| *s).collect(),
        ..FuzzConfig::default()
    };
    let ev = evaluate(&candidate_of(entry, source), &cfg);
    let findings = findings_for(&ev, &BTreeSet::new());
    assert!(
        findings.iter().all(|d| d.code != "FZ008"),
        "spurious FZ008 on a uniform scenario: {findings:?}"
    );
}
