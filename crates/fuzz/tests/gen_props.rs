//! Property tests over the scenario generator: every emitted candidate is
//! valid FAIL at the filter's claimed level, survives a pretty-printer
//! round trip unchanged, and the stream is a pure function of the seed.

use failmpi_core::lang::{parser, pretty};
use failmpi_fuzz::{passes_filter, Generator};
use proptest::prelude::*;
use proptest::test_runner::Config as PropConfig;

/// Drains up to `n` valid candidates from a fresh generator.
fn stream(seed: u64, n: usize) -> Vec<failmpi_fuzz::Candidate> {
    let mut generator = Generator::new(seed);
    (0..n).filter_map(|_| generator.next_valid(16)).collect()
}

proptest! {
    #![proptest_config(PropConfig::with_cases(12))]

    /// Every candidate the generator emits parses, and carries no
    /// `Error`-level FA finding — the validity level `next_valid` claims.
    #[test]
    fn emitted_candidates_hold_the_claimed_validity_level(seed in 0u64..4096) {
        for cand in stream(seed, 4) {
            prop_assert!(
                parser::parse(&cand.source).is_ok(),
                "candidate {} does not parse", cand.name
            );
            let errors = failmpi_analyze::check_source(&cand.source)
                .iter()
                .filter(|d| d.severity == failmpi_analyze::Severity::Error)
                .count();
            prop_assert_eq!(errors, 0);
            prop_assert!(passes_filter(&cand.source));
        }
    }

    /// Candidate sources are pretty-printer fixpoints: parsing and
    /// re-printing reproduces the bytes exactly. (The generator always
    /// prints from the AST, so this is the invariant that keeps mutation,
    /// minimization and the corpus byte-compatible.)
    #[test]
    fn candidate_sources_round_trip_through_the_pretty_printer(seed in 0u64..4096) {
        for cand in stream(seed, 4) {
            let ast = parser::parse(&cand.source).expect("parses");
            prop_assert_eq!(pretty::scenario(&ast), cand.source);
        }
    }

    /// The candidate stream is a pure function of the seed: two fresh
    /// generators with the same seed agree byte for byte on names,
    /// sources, deployment class and parameters.
    #[test]
    fn same_seed_means_byte_identical_stream(seed in 0u64..4096) {
        let a = stream(seed, 6);
        let b = stream(seed, 6);
        prop_assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            prop_assert_eq!(&x.name, &y.name);
            prop_assert_eq!(&x.source, &y.source);
            prop_assert_eq!(&x.machine_class, &y.machine_class);
            prop_assert_eq!(&x.params, &y.params);
            prop_assert_eq!(&x.origin, &y.origin);
        }
    }
}

/// Different seeds explore different candidates (not a proptest — one
/// deterministic spot check that the rng actually steers generation).
#[test]
fn distinct_seeds_diverge() {
    let a = stream(1, 6);
    let b = stream(2, 6);
    assert!(
        a.iter().zip(&b).any(|(x, y)| x.source != y.source),
        "seeds 1 and 2 produced identical streams"
    );
}
