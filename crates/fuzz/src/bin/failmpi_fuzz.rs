//! failmpi-fuzz: the coverage-guided FAIL-scenario fuzzing loop.
//!
//! ```text
//! failmpi-fuzz --seed 1 --budget 30                 # one campaign, summary on stdout
//! failmpi-fuzz --seed 1 --corpus out/ --findings f.json
//! failmpi-fuzz --replay tests/fixtures/fuzz        # corpus-replay regression check
//! ```
//!
//! Exit status: 0 no error-severity findings, 1 error findings (FZ001/
//! FZ002/FZ004), 2 usage or I/O error. Double runs with the same `--seed`
//! and `--budget` produce byte-identical corpus and findings files.

use std::path::PathBuf;
use std::process::ExitCode;

use failmpi_fuzz::{
    load_corpus, run_fuzz, run_replay, write_corpus, FuzzConfig, FuzzOptions, FuzzSummary,
};

struct Options {
    seed: u64,
    budget: usize,
    probe_seeds: usize,
    corpus: Option<PathBuf>,
    findings: Option<PathBuf>,
    replay: Option<PathBuf>,
    minimize_family: bool,
    json: bool,
}

const USAGE: &str = "usage: failmpi-fuzz [--seed N] [--budget N] [--probe-seeds N] \
     [--corpus DIR] [--findings FILE] [--replay DIR] [--minimize-family] \
     [--format human|json]";

fn usage_error() -> ExitCode {
    eprintln!("{USAGE}");
    ExitCode::from(2)
}

fn parse_args() -> Result<Options, ExitCode> {
    let mut opts = Options {
        seed: 1,
        budget: 30,
        probe_seeds: 2,
        corpus: None,
        findings: None,
        replay: None,
        minimize_family: false,
        json: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--seed" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => opts.seed = n,
                None => return Err(usage_error()),
            },
            "--budget" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => opts.budget = n,
                None => return Err(usage_error()),
            },
            "--probe-seeds" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => opts.probe_seeds = n,
                _ => return Err(usage_error()),
            },
            "--corpus" => match args.next() {
                Some(p) => opts.corpus = Some(PathBuf::from(p)),
                None => return Err(usage_error()),
            },
            "--findings" => match args.next() {
                Some(p) => opts.findings = Some(PathBuf::from(p)),
                None => return Err(usage_error()),
            },
            "--replay" => match args.next() {
                Some(p) => opts.replay = Some(PathBuf::from(p)),
                None => return Err(usage_error()),
            },
            "--minimize-family" => opts.minimize_family = true,
            "--format" => match args.next().as_deref() {
                Some("human") => opts.json = false,
                Some("json") => opts.json = true,
                _ => return Err(usage_error()),
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return Err(ExitCode::SUCCESS);
            }
            _ => return Err(usage_error()),
        }
    }
    if opts.replay.is_some() && (opts.corpus.is_some() || opts.minimize_family) {
        // Replay re-checks an existing corpus; it neither regenerates one
        // nor minimizes.
        return Err(usage_error());
    }
    Ok(opts)
}

fn print_summary(summary: &FuzzSummary, reports: &[failmpi_analyze::Report], json: bool) {
    if json {
        println!(
            "{}",
            serde_json::to_string_pretty(summary).expect("summary serializes")
        );
    } else {
        for r in reports {
            print!("{}", r.render_human());
        }
        println!(
            "failmpi-fuzz: seed {} budget {} — {} candidate(s), {} accepted, \
             {} error(s), {} warning(s), fig10 family rediscovered: {}",
            summary.seed,
            summary.budget,
            summary.candidates,
            summary.accepted,
            summary.errors,
            summary.warnings,
            summary.fig10_family_rediscovered
        );
    }
}

fn write_findings(path: &PathBuf, reports: &[failmpi_analyze::Report]) -> Result<(), ExitCode> {
    let json = serde_json::to_string_pretty(&reports.to_vec()).expect("reports serialize");
    std::fs::write(path, json + "\n").map_err(|e| {
        eprintln!("failmpi-fuzz: cannot write `{}`: {e}", path.display());
        ExitCode::from(2)
    })
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(code) => return code,
    };

    let config = FuzzConfig {
        probe_seeds: (1..=opts.probe_seeds as u64).collect(),
        ..FuzzConfig::default()
    };

    let (summary, reports) = if let Some(dir) = &opts.replay {
        let entries = match load_corpus(dir) {
            Ok(e) => e,
            Err(e) => {
                eprintln!("failmpi-fuzz: {e}");
                return ExitCode::from(2);
            }
        };
        run_replay(&entries, &config)
    } else {
        let fuzz_opts = FuzzOptions {
            seed: opts.seed,
            budget: opts.budget,
            config,
            minimize_family: opts.minimize_family,
            ..FuzzOptions::default()
        };
        let outcome = run_fuzz(&fuzz_opts);
        if let Some(dir) = &opts.corpus {
            if let Err(e) = write_corpus(dir, &outcome.corpus) {
                eprintln!("failmpi-fuzz: cannot write corpus to `{}`: {e}", dir.display());
                return ExitCode::from(2);
            }
        }
        (outcome.summary, outcome.reports)
    };

    if let Some(path) = &opts.findings {
        if let Err(code) = write_findings(path, &reports) {
            return code;
        }
    }
    print_summary(&summary, &reports, opts.json);

    if summary.errors > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
