//! # failmpi-fuzz — coverage-guided FAIL-scenario fuzzing
//!
//! The paper found its headline result — the MPICH-Vcl stale-dispatcher-
//! entry freeze (Fig. 10) — by hand-crafting fault campaigns until one
//! wedged the cluster. This crate automates that hunt as a deterministic,
//! seed-driven loop over the repo's whole verification stack:
//!
//! ```text
//!             ┌────────────────────────────────────────────────┐
//!             │  generate (mutate builtins / synthesize)       │
//!             │        │  FA-lint validity filter               │
//!             │        ▼                                        │
//!             │  evaluate: model checker  ×  dynamic harness   │
//!             │           (historical and fixed dispatcher)    │
//!             │        │                                        │
//!             │        ├─ novel behaviour? ──► corpus           │
//!             │        └─ findings (FZ001/FZ002) ──► minimize,  │
//!             │                                     narrate     │
//!             └────────────────────────────────────────────────┘
//! ```
//!
//! Finding codes (consumed by `failck --findings`):
//!
//! * **FZ001** (error) — static/dynamic verdict disagreement: the FC
//!   abstraction and the simulator answered differently.
//! * **FZ002** (error) — novel freeze family: a freeze that is not the
//!   Fig. 10 stale-entry pattern, or survives the fixed dispatcher.
//! * **FZ003** (warning) — Fig. 10-family rediscovery: expected against
//!   the historical dispatcher; proof the loop can find the paper's bug.
//! * **FZ004** (error) — corpus replay drift: a pinned verdict changed.
//! * **FZ005** (warning) — the delta-debugged minimal reproducer, attached
//!   to the finding it shrinks (the source rides in the help text).
//! * **FZ006** (warning) — the causal-trace narration of a frozen probe
//!   (`failmpi_trace::explain`), attached alongside freeze findings.
//! * **FZ007** (warning) — a statically reachable freeze no probe seed
//!   realized even after escalation — one extra seed per step of the
//!   minimal abstract witness, capped by `escalate_cap` (the abstraction's
//!   over-approximate direction; the converse is the FZ001 error).
//!
//! Determinism contract: `failmpi-fuzz --seed S --budget N` twice produces
//! byte-identical corpus and findings JSON — all randomness flows from one
//! [`failmpi_sim::SimRng`], the loop is single-threaded, and every output
//! collection is sorted.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod corpus;
pub mod coverage;
pub mod gen;
pub mod minimize;
pub mod oracle;

use std::collections::BTreeSet;
use std::path::PathBuf;

use failmpi_analyze::Report;
use serde::Serialize;

pub use corpus::{candidate_of, entry_of, load_corpus, replay_entry, write_corpus, CorpusEntry};
pub use coverage::{key_of, Coverage};
pub use gen::{passes_filter, Candidate, Generator};
pub use minimize::minimize;
pub use oracle::{evaluate, findings_for, Evaluation, FuzzConfig};

/// Raw generation attempts per accepted candidate before the slot is
/// forfeited (keeps a pathological seed from spinning).
const MAX_ATTEMPTS: usize = 16;

/// One fuzzing campaign's knobs.
#[derive(Clone, Debug)]
pub struct FuzzOptions {
    /// Generator seed.
    pub seed: u64,
    /// Candidates to evaluate.
    pub budget: usize,
    /// Oracle configuration.
    pub config: FuzzConfig,
    /// Also delta-debug FZ003 rediscoveries (off by default: error
    /// findings are always minimized, rediscoveries are expected and only
    /// minimized on request — the EXPERIMENTS.md walkthrough).
    pub minimize_family: bool,
    /// Known freeze fingerprints (from a replayed corpus); freezes that
    /// replay one are corpus behaviour, not findings.
    pub known_freeze_fps: BTreeSet<u64>,
}

impl Default for FuzzOptions {
    fn default() -> Self {
        FuzzOptions {
            seed: 1,
            budget: 30,
            config: FuzzConfig::default(),
            minimize_family: false,
            known_freeze_fps: BTreeSet::new(),
        }
    }
}

/// Campaign totals, printed as the run summary.
#[derive(Clone, Debug, Serialize)]
pub struct FuzzSummary {
    /// Generator seed.
    pub seed: u64,
    /// Candidate budget.
    pub budget: usize,
    /// Candidates that passed the validity filter and were evaluated.
    pub candidates: usize,
    /// Behaviourally novel candidates kept in the corpus.
    pub accepted: usize,
    /// Error-severity findings (FZ001/FZ002/FZ004).
    pub errors: usize,
    /// Warning-severity findings (FZ003 rediscoveries).
    pub warnings: usize,
    /// Whether any candidate reproduced the paper's Fig. 10 freeze family
    /// against the historical dispatcher — the loop's acceptance signal.
    pub fig10_family_rediscovered: bool,
}

/// Everything one campaign produced.
#[derive(Debug)]
pub struct FuzzOutcome {
    /// Totals.
    pub summary: FuzzSummary,
    /// Per-candidate finding reports (only candidates with findings).
    pub reports: Vec<Report>,
    /// Accepted corpus entries with their sources, in acceptance order.
    pub corpus: Vec<(CorpusEntry, String)>,
}

/// Runs one campaign.
pub fn run_fuzz(opts: &FuzzOptions) -> FuzzOutcome {
    let mut generator = Generator::new(opts.seed);
    let mut coverage = Coverage::new();
    let mut reports = Vec::new();
    let mut corpus = Vec::new();
    let mut candidates = 0usize;
    let mut fig10 = false;

    for _ in 0..opts.budget {
        let Some(cand) = generator.next_valid(MAX_ATTEMPTS) else {
            continue;
        };
        candidates += 1;
        let ev = evaluate(&cand, &opts.config);
        fig10 |= ev.fig10_family;

        let key = key_of(&ev);
        if coverage.observe(&key) {
            corpus.push((entry_of(&cand, &ev, &key), cand.source.clone()));
        }

        let mut findings = findings_for(&ev, &opts.known_freeze_fps);
        if findings.is_empty() {
            continue;
        }
        let has_errors = findings
            .iter()
            .any(|d| d.severity == failmpi_analyze::Severity::Error);
        if has_errors || opts.minimize_family {
            // Shrink while the finding signature (the sorted FZ code set)
            // survives — each probe re-runs both oracles.
            let signature = |src: &str| {
                let probe = Candidate {
                    source: src.to_string(),
                    ..cand.clone()
                };
                let mut codes: Vec<&str> =
                    findings_for(&evaluate(&probe, &opts.config), &opts.known_freeze_fps)
                        .iter()
                        .map(|d| d.code)
                        .collect();
                codes.sort_unstable();
                codes
            };
            let want = signature(&cand.source);
            let minimized = minimize(&cand.source, |src| signature(src) == want);
            if minimized != cand.source {
                findings.push(failmpi_analyze::Diagnostic::new(
                    failmpi_analyze::Severity::Warning,
                    "FZ005",
                    0,
                    format!(
                        "minimized reproducer ({} -> {} bytes)",
                        cand.source.len(),
                        minimized.len()
                    ),
                    minimized,
                ));
            }
        }
        if let Some(narration) = &ev.narration {
            findings.push(failmpi_analyze::Diagnostic::new(
                failmpi_analyze::Severity::Warning,
                "FZ006",
                0,
                "causal narration of the frozen probe".to_string(),
                narration.clone(),
            ));
        }
        reports.push(Report::new(format!("fuzz:{}", cand.name), findings));
    }

    let errors: usize = reports.iter().map(Report::error_count).sum();
    let warnings: usize = reports.iter().map(Report::warning_count).sum();
    FuzzOutcome {
        summary: FuzzSummary {
            seed: opts.seed,
            budget: opts.budget,
            candidates,
            accepted: corpus.len(),
            errors,
            warnings,
            fig10_family_rediscovered: fig10,
        },
        reports,
        corpus,
    }
}

/// Replays a loaded corpus: every entry re-evaluated against its pins;
/// drift comes back as FZ004 reports.
pub fn run_replay(
    entries: &[(CorpusEntry, String)],
    cfg: &FuzzConfig,
) -> (FuzzSummary, Vec<Report>) {
    let mut reports = Vec::new();
    for (entry, source) in entries {
        let findings = replay_entry(entry, source, cfg);
        if !findings.is_empty() {
            reports.push(Report::new(format!("fuzz:{}", entry.name), findings));
        }
    }
    let errors: usize = reports.iter().map(Report::error_count).sum();
    let warnings: usize = reports.iter().map(Report::warning_count).sum();
    (
        FuzzSummary {
            seed: 0,
            budget: entries.len(),
            candidates: entries.len(),
            accepted: entries.len(),
            errors,
            warnings,
            fig10_family_rediscovered: false,
        },
        reports,
    )
}

/// Where the checked-in seed corpus lives, relative to the repo root.
pub fn default_corpus_dir() -> PathBuf {
    PathBuf::from("tests/fixtures/fuzz")
}
