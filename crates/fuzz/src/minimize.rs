//! Delta-debugging over FAIL automata: shrink a finding's scenario while
//! it keeps reproducing the same FZ finding signature.
//!
//! The walk is purely structural and deterministic — try deleting every
//! action, transition, node and unreferenced daemon in source order, keep
//! any deletion under which the (re-pretty-printed) scenario still passes
//! the generator's validity filter *and* the caller's `reproduces`
//! predicate, and loop to a fixed point.

use failmpi_core::lang::ast::ScenarioAst;
use failmpi_core::lang::{parser, pretty};

use crate::gen::passes_filter;

/// One candidate deletion site.
enum Cut {
    Daemon(usize),
    Node(usize, usize),
    Transition(usize, usize, usize),
    Action(usize, usize, usize, usize),
}

fn cuts_of(ast: &ScenarioAst) -> Vec<Cut> {
    let mut cuts = Vec::new();
    for (d, dm) in ast.daemons.iter().enumerate() {
        let deployed = ast.instances.iter().any(|i| i.class == dm.name)
            || ast.groups.iter().any(|g| g.class == dm.name);
        if !deployed {
            cuts.push(Cut::Daemon(d));
        }
        for (n, node) in dm.nodes.iter().enumerate() {
            // The first node is the initial state; removing it rewires the
            // automaton rather than shrinking it.
            if n > 0 {
                cuts.push(Cut::Node(d, n));
            }
            for (t, tr) in node.transitions.iter().enumerate() {
                cuts.push(Cut::Transition(d, n, t));
                for a in 0..tr.actions.len() {
                    cuts.push(Cut::Action(d, n, t, a));
                }
            }
        }
    }
    cuts
}

fn apply(ast: &ScenarioAst, cut: &Cut) -> ScenarioAst {
    let mut out = ast.clone();
    match *cut {
        Cut::Daemon(d) => {
            out.daemons.remove(d);
        }
        Cut::Node(d, n) => {
            out.daemons[d].nodes.remove(n);
        }
        Cut::Transition(d, n, t) => {
            out.daemons[d].nodes[n].transitions.remove(t);
        }
        Cut::Action(d, n, t, a) => {
            out.daemons[d].nodes[n].transitions[t].actions.remove(a);
        }
    }
    out
}

/// How much an AST weighs, for progress accounting.
fn weight(ast: &ScenarioAst) -> usize {
    ast.daemons
        .iter()
        .map(|dm| {
            dm.nodes
                .iter()
                .map(|n| 1 + n.transitions.iter().map(|t| 1 + t.actions.len()).sum::<usize>())
                .sum::<usize>()
        })
        .sum()
}

/// Shrinks `source` to a 1-minimal reproducer: no single remaining
/// deletion keeps `reproduces` true. Returns the pretty-printed minimized
/// source (the input itself when nothing could be cut). `reproduces` is
/// called on candidate sources that already passed the validity filter.
pub fn minimize(source: &str, mut reproduces: impl FnMut(&str) -> bool) -> String {
    let Ok(mut ast) = parser::parse(source) else {
        return source.to_string();
    };
    let mut best = pretty::scenario(&ast);
    loop {
        let before = weight(&ast);
        // Deleting goto-heavy sites early invalidates later indices, so
        // re-enumerate after every successful cut.
        let mut progressed = false;
        let mut i = 0;
        loop {
            let cuts = cuts_of(&ast);
            if i >= cuts.len() {
                break;
            }
            let trial = apply(&ast, &cuts[i]);
            let printed = pretty::scenario(&trial);
            if passes_filter(&printed) && reproduces(&printed) {
                ast = trial;
                best = printed;
                progressed = true;
                // Indices shifted: restart the site scan on the smaller AST.
                i = 0;
            } else {
                i += 1;
            }
        }
        if !progressed || weight(&ast) >= before {
            break;
        }
    }
    best
}
