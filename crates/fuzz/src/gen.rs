//! Deterministic FAIL-scenario generation: structured mutations of the
//! builtin figure scenarios plus from-scratch synthesis of fig5/fig8/
//! fig10-shaped campaigns, every output filtered through the FA lints so
//! only well-formed automata reach the oracles.
//!
//! All randomness flows from one [`SimRng`]: the same seed produces the
//! same candidate stream byte for byte (sources are pretty-printed from
//! the AST, never patched textually).

use failmpi_core::lang::ast::{
    ActionAst, DaemonAst, DestAst, ExprAst, GroupAst, InstanceAst, NodeAst, ParamAst,
    ProbeDeclAst, ScenarioAst, TimerDeclAst, TransitionAst, VarDeclAst,
};
use failmpi_core::lang::{parser, pretty};
use failmpi_experiments::runnable_builtins;
use failmpi_sim::SimRng;

/// One generated scenario, ready for the oracles.
#[derive(Clone, Debug)]
pub struct Candidate {
    /// Stable candidate name (`c007-mut-fig10_state_sync`).
    pub name: String,
    /// Pretty-printed FAIL source.
    pub source: String,
    /// Daemon class deployed on every compute machine.
    pub machine_class: String,
    /// Smoke-scale parameter overrides.
    pub params: Vec<(String, i64)>,
    /// Where the candidate came from (`mutant of …` / `synthesized …`).
    pub origin: String,
}

/// A builtin scenario parsed once, as mutation seed material.
struct SeedScenario {
    name: &'static str,
    ast: ScenarioAst,
    machine: &'static str,
    params: Vec<(String, i64)>,
}

/// Whether `src` is fit to execute: it parses, compiles, and carries no
/// `Error`-level FA finding. This is the validity level every emitted
/// candidate is guaranteed to hold.
pub fn passes_filter(src: &str) -> bool {
    if parser::parse(src).is_err() {
        return false;
    }
    !failmpi_analyze::check_source(src)
        .iter()
        .any(|d| d.severity == failmpi_analyze::Severity::Error)
}

/// The deterministic candidate stream.
pub struct Generator {
    seeds: Vec<SeedScenario>,
    rng: SimRng,
    emitted: usize,
}

impl Generator {
    /// A generator over the runnable builtins, seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        let seeds = runnable_builtins()
            .iter()
            .map(|(name, src, machine, params)| SeedScenario {
                name,
                ast: parser::parse(src).expect("builtin scenarios parse"),
                machine,
                params: params.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
            })
            .collect();
        Generator {
            seeds,
            rng: SimRng::new(seed).derive(0xF0FF),
            emitted: 0,
        }
    }

    /// The next candidate that survives the FA filter, trying at most
    /// `max_attempts` raw generations (`None` if all were rejected — the
    /// caller just moves on, the stream stays deterministic either way).
    pub fn next_valid(&mut self, max_attempts: usize) -> Option<Candidate> {
        for _ in 0..max_attempts {
            let cand = self.raw();
            if passes_filter(&cand.source) {
                return Some(cand);
            }
        }
        None
    }

    /// One raw (unfiltered) candidate: 1-in-4 synthesized, else a mutant
    /// of a builtin.
    fn raw(&mut self) -> Candidate {
        self.emitted += 1;
        let idx = self.emitted;
        if self.rng.below(4) == 0 {
            let (ast, origin) = self.synthesize();
            Candidate {
                name: format!("c{idx:03}-syn"),
                source: pretty::scenario(&ast),
                machine_class: "ADVM".to_string(),
                params: vec![("T".to_string(), 2), ("N".to_string(), 5)],
                origin,
            }
        } else {
            let which = self.rng.below(self.seeds.len() as u64) as usize;
            let mut ast = self.seeds[which].ast.clone();
            let n_muts = 1 + self.rng.below(3) as usize;
            let mut applied = Vec::new();
            for _ in 0..n_muts {
                if let Some(tag) = self.mutate(&mut ast) {
                    applied.push(tag);
                }
            }
            let seed = &self.seeds[which];
            Candidate {
                name: format!("c{idx:03}-mut-{}", seed.name),
                source: pretty::scenario(&ast),
                machine_class: seed.machine.to_string(),
                params: seed.params.clone(),
                origin: format!("mutant of {} [{}]", seed.name, applied.join("+")),
            }
        }
    }

    // -- mutations ---------------------------------------------------------

    /// Applies one randomly chosen mutation in place; returns its tag, or
    /// `None` when the chosen operator had no applicable site.
    fn mutate(&mut self, ast: &mut ScenarioAst) -> Option<&'static str> {
        match self.rng.below(9) {
            0 => self.tweak_timer(ast).then_some("timer"),
            1 => self.retarget_goto(ast).then_some("goto"),
            2 => self.swap_guard(ast).then_some("guard"),
            3 => self.redirect_send(ast).then_some("target"),
            4 => self.dup_transition(ast).then_some("dup"),
            5 => self.drop_transition(ast).then_some("drop"),
            6 => self.insert_process_action(ast).then_some("action"),
            7 => self.splice_node(ast).then_some("splice"),
            8 => self.add_probe_watch(ast).then_some("probe"),
            _ => unreachable!(),
        }
    }

    /// Picks a uniformly random `(daemon, node)` pair that satisfies
    /// `keep`, deterministically.
    fn pick_node(
        &mut self,
        ast: &ScenarioAst,
        keep: impl Fn(&NodeAst) -> bool,
    ) -> Option<(usize, usize)> {
        let sites: Vec<(usize, usize)> = ast
            .daemons
            .iter()
            .enumerate()
            .flat_map(|(d, dm)| {
                dm.nodes
                    .iter()
                    .enumerate()
                    .filter(|(_, n)| keep(n))
                    .map(move |(n, _)| (d, n))
            })
            .collect();
        self.rng.pick(&sites).copied()
    }

    /// Picks a random `(daemon, node, transition)` triple.
    fn pick_transition(&mut self, ast: &ScenarioAst) -> Option<(usize, usize, usize)> {
        let sites: Vec<(usize, usize, usize)> = ast
            .daemons
            .iter()
            .enumerate()
            .flat_map(|(d, dm)| {
                dm.nodes.iter().enumerate().flat_map(move |(n, node)| {
                    (0..node.transitions.len()).map(move |t| (d, n, t))
                })
            })
            .collect();
        self.rng.pick(&sites).copied()
    }

    fn tweak_timer(&mut self, ast: &mut ScenarioAst) -> bool {
        let Some((d, n)) = self.pick_node(ast, |n| !n.timers.is_empty()) else {
            return false;
        };
        let node = &mut ast.daemons[d].nodes[n];
        let t = self.rng.below(node.timers.len() as u64) as usize;
        // Delays stay >= 1: a zero-delay timer storm would swamp the
        // engine without exercising anything new.
        node.timers[t].delay = ExprAst::Int(self.rng.range_inclusive(1, 8));
        true
    }

    fn retarget_goto(&mut self, ast: &mut ScenarioAst) -> bool {
        let Some((d, n, t)) = self.pick_transition(ast) else {
            return false;
        };
        let labels: Vec<i64> = ast.daemons[d].nodes.iter().map(|x| x.label).collect();
        let Some(&target) = self.rng.pick(&labels) else {
            return false;
        };
        for a in &mut ast.daemons[d].nodes[n].transitions[t].actions {
            if let ActionAst::Goto(l) = a {
                *l = target;
                return true;
            }
        }
        false
    }

    fn swap_guard(&mut self, ast: &mut ScenarioAst) -> bool {
        // The scenario-wide message alphabet keeps a swapped `?msg`
        // receivable: some daemon still sends it.
        let alphabet: Vec<String> = {
            let mut msgs: Vec<String> = ast
                .daemons
                .iter()
                .flat_map(|dm| dm.nodes.iter())
                .flat_map(|n| n.transitions.iter())
                .flat_map(|t| t.actions.iter())
                .filter_map(|a| match a {
                    ActionAst::Send { msg, .. } => Some(msg.clone()),
                    _ => None,
                })
                .collect();
            msgs.sort();
            msgs.dedup();
            msgs
        };
        let Some((d, n, t)) = self.pick_transition(ast) else {
            return false;
        };
        use failmpi_core::lang::ast::GuardAst as G;
        let g = &mut ast.daemons[d].nodes[n].transitions[t].guard;
        match g {
            G::Recv(m) => match self.rng.pick(&alphabet) {
                Some(other) => {
                    *m = other.clone();
                    true
                }
                None => false,
            },
            G::OnExit => {
                *g = G::OnError;
                true
            }
            G::OnError => {
                *g = G::OnExit;
                true
            }
            _ => false,
        }
    }

    fn redirect_send(&mut self, ast: &mut ScenarioAst) -> bool {
        let groups: Vec<String> = ast.groups.iter().map(|g| g.name.clone()).collect();
        let instances: Vec<String> = ast.instances.iter().map(|i| i.name.clone()).collect();
        let Some((d, n, t)) = self.pick_transition(ast) else {
            return false;
        };
        for a in &mut ast.daemons[d].nodes[n].transitions[t].actions {
            if let ActionAst::Send { dest, .. } = a {
                *dest = match self.rng.below(3) {
                    0 => DestAst::Sender,
                    1 => match self.rng.pick(&instances) {
                        Some(i) => DestAst::Instance(i.clone()),
                        None => DestAst::Sender,
                    },
                    _ => match self.rng.pick(&groups) {
                        Some(g) => DestAst::Group(
                            g.clone(),
                            ExprAst::Rand(
                                Box::new(ExprAst::Int(0)),
                                Box::new(ExprAst::Name("N".to_string())),
                            ),
                        ),
                        None => DestAst::Sender,
                    },
                };
                return true;
            }
        }
        false
    }

    fn dup_transition(&mut self, ast: &mut ScenarioAst) -> bool {
        let Some((d, n, t)) = self.pick_transition(ast) else {
            return false;
        };
        let node = &mut ast.daemons[d].nodes[n];
        let copy = node.transitions[t].clone();
        node.transitions.push(copy);
        true
    }

    fn drop_transition(&mut self, ast: &mut ScenarioAst) -> bool {
        // Keep at least one transition per node: a transitionless node is
        // printable but pointless, and FA flags whole daemons of them.
        let Some((d, n)) = self.pick_node(ast, |n| n.transitions.len() > 1) else {
            return false;
        };
        let node = &mut ast.daemons[d].nodes[n];
        let t = self.rng.below(node.transitions.len() as u64) as usize;
        node.transitions.remove(t);
        true
    }

    fn insert_process_action(&mut self, ast: &mut ScenarioAst) -> bool {
        let Some((d, n, t)) = self.pick_transition(ast) else {
            return false;
        };
        let action = match self.rng.below(3) {
            0 => ActionAst::Halt,
            1 => ActionAst::Stop,
            _ => ActionAst::Continue,
        };
        let actions = &mut ast.daemons[d].nodes[n].transitions[t].actions;
        let at = self.rng.below(actions.len() as u64 + 1) as usize;
        actions.insert(at, action);
        true
    }

    /// Duplicates an existing node under a fresh label and retargets one
    /// `goto` to it — the cheap, always-well-formed form of state
    /// splicing (labels are daemon-local, variables stay in scope).
    fn splice_node(&mut self, ast: &mut ScenarioAst) -> bool {
        let Some((d, n)) = self.pick_node(ast, |_| true) else {
            return false;
        };
        let daemon = &mut ast.daemons[d];
        let fresh = daemon.nodes.iter().map(|x| x.label).max().unwrap_or(0) + 1;
        let mut copy = daemon.nodes[n].clone();
        copy.label = fresh;
        daemon.nodes.push(copy);
        let gotos: Vec<(usize, usize, usize)> = daemon
            .nodes
            .iter()
            .enumerate()
            .flat_map(|(ni, node)| {
                node.transitions.iter().enumerate().flat_map(move |(ti, tr)| {
                    tr.actions.iter().enumerate().filter_map(move |(ai, a)| {
                        matches!(a, ActionAst::Goto(_)).then_some((ni, ti, ai))
                    })
                })
            })
            .collect();
        let Some(&(ni, ti, ai)) = self.rng.pick(&gotos) else {
            return true; // the spliced node stays unreachable; FA warns
        };
        daemon.nodes[ni].transitions[ti].actions[ai] = ActionAst::Goto(fresh);
        true
    }

    /// Adds a `probe epoch;`/`probe committed_wave;` watch to the machine
    /// class: an `onchange` transition reacting to the application's
    /// recovery state — the paper's Sec. 6 state-synchronized triggers.
    fn add_probe_watch(&mut self, ast: &mut ScenarioAst) -> bool {
        let probe = if self.rng.chance(0.5) { "epoch" } else { "committed_wave" };
        let Some((d, n)) = self.pick_node(ast, |_| true) else {
            return false;
        };
        let daemon = &mut ast.daemons[d];
        if !daemon.probes.iter().any(|p| p.name == probe) {
            daemon.probes.push(ProbeDeclAst {
                name: probe.to_string(),
                line: 0,
            });
        }
        let back = daemon.nodes[n].label;
        daemon.nodes[n].transitions.push(TransitionAst {
            guard: failmpi_core::lang::ast::GuardAst::Change(probe.to_string()),
            conds: Vec::new(),
            actions: vec![ActionAst::Continue, ActionAst::Goto(back)],
            line: 0,
        });
        true
    }

    // -- synthesis ---------------------------------------------------------

    /// Builds a fig5/fig8/fig10-shaped campaign from scratch: a
    /// coordinator `ADV1` ordering crashes into a machine group, and a
    /// machine class `ADVM` whose reply/halt protocol is drawn from the
    /// same design space the paper's scenarios cover.
    fn synthesize(&mut self) -> (ScenarioAst, String) {
        let second_wave = self.rng.below(3); // 0 none, 1 timer, 2 state-sync
        let stop_at_load = self.rng.chance(0.5);
        let breakpoint = stop_at_load && self.rng.chance(0.5);
        let retry_on_no = self.rng.chance(0.75);

        let rand_pick = || VarDeclAst {
            name: "ran".to_string(),
            init: ExprAst::Rand(
                Box::new(ExprAst::Int(0)),
                Box::new(ExprAst::Name("N".to_string())),
            ),
            line: 0,
        };
        let crash_group = || ActionAst::Send {
            msg: "crash".to_string(),
            dest: DestAst::Group("G1".to_string(), ExprAst::Name("ran".to_string())),
        };
        let send_p1 = |msg: &str| ActionAst::Send {
            msg: msg.to_string(),
            dest: DestAst::Instance("P1".to_string()),
        };
        let tr = |guard, actions: Vec<ActionAst>| TransitionAst {
            guard,
            conds: Vec::new(),
            actions,
            line: 0,
        };
        use failmpi_core::lang::ast::GuardAst as G;

        // Coordinator.
        let mut adv_nodes = vec![
            NodeAst {
                label: 1,
                always: vec![rand_pick()],
                timers: vec![TimerDeclAst {
                    name: "g_timer".to_string(),
                    delay: ExprAst::Name("T".to_string()),
                    line: 0,
                }],
                transitions: vec![tr(
                    G::Timer("g_timer".to_string()),
                    vec![crash_group(), ActionAst::Goto(2)],
                )],
                line: 0,
            },
            NodeAst {
                label: 2,
                always: vec![rand_pick()],
                timers: Vec::new(),
                transitions: {
                    let after_ok = if second_wave == 0 { 1 } else { 3 };
                    let mut ts = vec![tr(G::Recv("ok".to_string()), vec![ActionAst::Goto(after_ok)])];
                    if retry_on_no {
                        ts.push(tr(
                            G::Recv("no".to_string()),
                            vec![crash_group(), ActionAst::Goto(2)],
                        ));
                    }
                    ts
                },
                line: 0,
            },
        ];
        match second_wave {
            1 => adv_nodes.push(NodeAst {
                label: 3,
                always: vec![rand_pick()],
                timers: vec![TimerDeclAst {
                    name: "w_timer".to_string(),
                    delay: ExprAst::Int(self.rng.range_inclusive(1, 4)),
                    line: 0,
                }],
                transitions: vec![tr(
                    G::Timer("w_timer".to_string()),
                    vec![crash_group(), ActionAst::Goto(2)],
                )],
                line: 0,
            }),
            2 => {
                adv_nodes.push(NodeAst {
                    label: 3,
                    always: Vec::new(),
                    timers: Vec::new(),
                    transitions: vec![tr(
                        G::Recv("waveok".to_string()),
                        vec![
                            ActionAst::Send {
                                msg: "crash".to_string(),
                                dest: DestAst::Sender,
                            },
                            ActionAst::Goto(4),
                        ],
                    )],
                    line: 0,
                });
                adv_nodes.push(NodeAst {
                    label: 4,
                    always: Vec::new(),
                    timers: Vec::new(),
                    transitions: vec![tr(
                        G::Recv("waveok".to_string()),
                        vec![
                            ActionAst::Send {
                                msg: "nocrash".to_string(),
                                dest: DestAst::Sender,
                            },
                            ActionAst::Goto(4),
                        ],
                    )],
                    line: 0,
                });
            }
            _ => {}
        }
        let adv = DaemonAst {
            name: "ADV1".to_string(),
            vars: Vec::new(),
            probes: Vec::new(),
            nodes: adv_nodes,
            line: 0,
        };

        // Machine controller.
        let mut m_nodes = vec![NodeAst {
            label: 1,
            always: Vec::new(),
            timers: Vec::new(),
            transitions: vec![
                tr(G::OnLoad, vec![ActionAst::Continue, ActionAst::Goto(2)]),
                tr(G::Recv("crash".to_string()), vec![send_p1("no"), ActionAst::Goto(1)]),
            ],
            line: 0,
        }];
        if second_wave == 2 && stop_at_load {
            // Fig. 10 shape: the armed machine halts its process and waits
            // for the recovery wave to report back in.
            m_nodes.push(NodeAst {
                label: 2,
                always: Vec::new(),
                timers: Vec::new(),
                transitions: vec![
                    tr(
                        G::Recv("crash".to_string()),
                        vec![send_p1("ok"), ActionAst::Halt, ActionAst::Goto(11)],
                    ),
                    tr(
                        G::OnLoad,
                        vec![send_p1("waveok"), ActionAst::Stop, ActionAst::Goto(3)],
                    ),
                ],
                line: 0,
            });
            m_nodes.push(NodeAst {
                label: 11,
                always: Vec::new(),
                timers: Vec::new(),
                transitions: vec![
                    tr(
                        G::OnLoad,
                        vec![send_p1("waveok"), ActionAst::Stop, ActionAst::Goto(3)],
                    ),
                    tr(G::Recv("crash".to_string()), vec![send_p1("no"), ActionAst::Goto(11)]),
                ],
                line: 0,
            });
            let kill_then = if breakpoint { 4 } else { 5 };
            m_nodes.push(NodeAst {
                label: 3,
                always: Vec::new(),
                timers: Vec::new(),
                transitions: vec![
                    tr(
                        G::Recv("crash".to_string()),
                        vec![send_p1("ok"), ActionAst::Continue, ActionAst::Goto(kill_then)],
                    ),
                    tr(
                        G::Recv("nocrash".to_string()),
                        vec![ActionAst::Continue, ActionAst::Goto(5)],
                    ),
                ],
                line: 0,
            });
            if breakpoint {
                m_nodes.push(NodeAst {
                    label: 4,
                    always: Vec::new(),
                    timers: Vec::new(),
                    transitions: vec![tr(
                        G::Before("localMPI_setCommand".to_string()),
                        vec![ActionAst::Halt, ActionAst::Goto(5)],
                    )],
                    line: 0,
                });
            } else {
                // No breakpoint: node 3 halts outright on `crash`.
                let n3 = m_nodes.last_mut().unwrap();
                n3.transitions[0].actions =
                    vec![send_p1("ok"), ActionAst::Halt, ActionAst::Goto(5)];
            }
            m_nodes.push(NodeAst {
                label: 5,
                always: Vec::new(),
                timers: Vec::new(),
                transitions: vec![tr(G::OnLoad, vec![ActionAst::Continue, ActionAst::Goto(5)])],
                line: 0,
            });
        } else {
            // Fig. 5 shape: crash on order, rearm on relaunch.
            m_nodes.push(NodeAst {
                label: 2,
                always: Vec::new(),
                timers: Vec::new(),
                transitions: vec![
                    tr(G::OnExit, vec![ActionAst::Goto(1)]),
                    tr(G::OnError, vec![ActionAst::Goto(1)]),
                    tr(G::OnLoad, vec![ActionAst::Continue, ActionAst::Goto(2)]),
                    tr(
                        G::Recv("crash".to_string()),
                        vec![send_p1("ok"), ActionAst::Halt, ActionAst::Goto(1)],
                    ),
                ],
                line: 0,
            });
        }
        let machine = DaemonAst {
            name: "ADVM".to_string(),
            vars: Vec::new(),
            probes: Vec::new(),
            nodes: m_nodes,
            line: 0,
        };

        let ast = ScenarioAst {
            params: vec![
                ParamAst {
                    name: "T".to_string(),
                    default: ExprAst::Int(50),
                    line: 0,
                },
                ParamAst {
                    name: "N".to_string(),
                    default: ExprAst::Int(52),
                    line: 0,
                },
            ],
            daemons: vec![adv, machine],
            instances: vec![InstanceAst {
                name: "P1".to_string(),
                class: "ADV1".to_string(),
                line: 0,
            }],
            groups: vec![GroupAst {
                name: "G1".to_string(),
                len: 53,
                class: "ADVM".to_string(),
                line: 0,
            }],
        };
        let origin = format!(
            "synthesized wave={second_wave} stop_at_load={stop_at_load} \
             breakpoint={breakpoint} retry={retry_on_no}"
        );
        (ast, origin)
    }
}
