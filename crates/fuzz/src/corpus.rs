//! On-disk corpus format and the replay regression check.
//!
//! A corpus directory holds one `.fail` file per entry plus a
//! `corpus.json` manifest pinning every entry's static verdicts (both
//! dispatcher modes) and per-seed dynamic outcome classes. Replay
//! re-evaluates each entry and reports any drift from the pinned values
//! as FZ004 errors — the regression contract of the checked-in corpus.
//!
//! Verdicts are pinned as *strings*, never raw hashes: outcome classes
//! and verdict names are semantic and portable, while state digests and
//! schedule fingerprints are only stable within one build.

use std::collections::BTreeSet;
use std::path::Path;

use failmpi_analyze::{Diagnostic, Severity};
use serde::Serialize;
use serde_json::Value;

use crate::gen::Candidate;
use crate::oracle::{evaluate, Evaluation, FuzzConfig};

/// One manifest entry.
#[derive(Clone, Debug, Serialize)]
pub struct CorpusEntry {
    /// Candidate name (also the stem of its `.fail` file).
    pub name: String,
    /// The `.fail` file, relative to the corpus directory.
    pub file: String,
    /// How the generator produced it.
    pub origin: String,
    /// Daemon class deployed per compute machine.
    pub machine_class: String,
    /// Smoke-scale parameter overrides.
    pub params: Vec<(String, i64)>,
    /// Pinned static verdict, historical dispatcher.
    pub static_historical: String,
    /// Pinned static verdict, fixed dispatcher.
    pub static_fixed: String,
    /// Pinned `(seed, outcome class)` probes, historical dispatcher.
    pub dynamic_historical: Vec<(u64, String)>,
    /// Pinned `(seed, outcome class)` probes, fixed dispatcher.
    pub dynamic_fixed: Vec<(u64, String)>,
    /// Pinned static verdict of the ULFM abstract model. Empty in
    /// manifests written before the backend axis existed; replay skips
    /// empty pins.
    pub static_ulfm: String,
    /// Pinned `(seed, outcome class)` probes through the ULFM runtime.
    pub dynamic_ulfm: Vec<(u64, String)>,
    /// Pinned static verdict of the replication abstract model (empty =
    /// unpinned, as for `static_ulfm`).
    pub static_replica: String,
    /// Pinned `(seed, outcome class)` probes through the replication
    /// runtime.
    pub dynamic_replica: Vec<(u64, String)>,
    /// The behavioural novelty key that earned the slot (documentation;
    /// digests inside are build-specific and not re-checked on replay).
    pub coverage_key: String,
}

/// The manifest file name inside a corpus directory.
pub const MANIFEST: &str = "corpus.json";

/// Builds a manifest entry from a candidate and its evaluation.
pub fn entry_of(cand: &Candidate, ev: &Evaluation, coverage_key: &str) -> CorpusEntry {
    let dyn_pin = |runs: &[crate::oracle::DynRun]| -> Vec<(u64, String)> {
        runs.iter()
            .map(|r| (r.seed, r.class.to_string()))
            .collect()
    };
    let backend = |kind: failmpi_backend::BackendKind| {
        ev.backends
            .iter()
            .find(|b| b.backend == kind)
            .map(|b| (b.summary.verdict.to_string(), dyn_pin(&b.dynamic)))
            .unwrap_or_default()
    };
    let (static_ulfm, dynamic_ulfm) = backend(failmpi_backend::BackendKind::Ulfm);
    let (static_replica, dynamic_replica) = backend(failmpi_backend::BackendKind::Replica);
    CorpusEntry {
        name: cand.name.clone(),
        file: format!("{}.fail", cand.name),
        origin: cand.origin.clone(),
        machine_class: cand.machine_class.clone(),
        params: cand.params.clone(),
        static_historical: ev.static_h.verdict.to_string(),
        static_fixed: ev.static_f.verdict.to_string(),
        dynamic_historical: dyn_pin(&ev.dynamic_h),
        dynamic_fixed: dyn_pin(&ev.dynamic_f),
        static_ulfm,
        dynamic_ulfm,
        static_replica,
        dynamic_replica,
        coverage_key: coverage_key.to_string(),
    }
}

/// Writes `entries` (manifest rows paired with their sources) into `dir`.
pub fn write_corpus(
    dir: &Path,
    entries: &[(CorpusEntry, String)],
) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    for (entry, source) in entries {
        std::fs::write(dir.join(&entry.file), source)?;
    }
    let manifest: Vec<&CorpusEntry> = entries.iter().map(|(e, _)| e).collect();
    let json = serde_json::to_string_pretty(&manifest).expect("manifest serializes");
    std::fs::write(dir.join(MANIFEST), json + "\n")
}

fn str_field(v: &Value, key: &str, ctx: &str) -> Result<String, String> {
    v.get(key)
        .and_then(Value::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("{ctx}: missing string field `{key}`"))
}

/// Like [`str_field`] but tolerant of the field being absent — manifests
/// written before the backend axis carry no per-backend pins.
fn opt_str_field(v: &Value, key: &str, ctx: &str) -> Result<String, String> {
    match v.get(key) {
        None => Ok(String::new()),
        Some(f) => f
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| format!("{ctx}: non-string field `{key}`")),
    }
}

/// Like [`pin_list`] but tolerant of the field being absent.
fn opt_pin_list(v: &Value, key: &str, ctx: &str) -> Result<Vec<(u64, String)>, String> {
    if v.get(key).is_none() {
        return Ok(Vec::new());
    }
    pin_list(v, key, ctx)
}

fn pin_list(v: &Value, key: &str, ctx: &str) -> Result<Vec<(u64, String)>, String> {
    let arr = v
        .get(key)
        .and_then(Value::as_array)
        .ok_or_else(|| format!("{ctx}: missing array field `{key}`"))?;
    arr.iter()
        .map(|pair| {
            let seed = pair[0]
                .as_u64()
                .ok_or_else(|| format!("{ctx}: bad seed in `{key}`"))?;
            let class = pair[1]
                .as_str()
                .ok_or_else(|| format!("{ctx}: bad class in `{key}`"))?;
            Ok((seed, class.to_string()))
        })
        .collect()
}

/// Loads a corpus directory: manifest rows paired with their sources.
pub fn load_corpus(dir: &Path) -> Result<Vec<(CorpusEntry, String)>, String> {
    let manifest_path = dir.join(MANIFEST);
    let text = std::fs::read_to_string(&manifest_path)
        .map_err(|e| format!("cannot read {}: {e}", manifest_path.display()))?;
    let doc = serde_json::from_str(&text).map_err(|e| format!("{MANIFEST}: {e}"))?;
    let rows = doc
        .as_array()
        .ok_or_else(|| format!("{MANIFEST}: expected a JSON array"))?;
    let mut out = Vec::new();
    for row in rows {
        let name = str_field(row, "name", MANIFEST)?;
        let ctx = format!("{MANIFEST}[{name}]");
        let file = str_field(row, "file", &ctx)?;
        let params = row
            .get("params")
            .and_then(Value::as_array)
            .ok_or_else(|| format!("{ctx}: missing `params`"))?
            .iter()
            .map(|pair| {
                let k = pair[0]
                    .as_str()
                    .ok_or_else(|| format!("{ctx}: bad param name"))?;
                let v = pair[1]
                    .as_i64()
                    .ok_or_else(|| format!("{ctx}: bad param value"))?;
                Ok((k.to_string(), v))
            })
            .collect::<Result<Vec<_>, String>>()?;
        let entry = CorpusEntry {
            name: name.clone(),
            file: file.clone(),
            origin: str_field(row, "origin", &ctx)?,
            machine_class: str_field(row, "machine_class", &ctx)?,
            params,
            static_historical: str_field(row, "static_historical", &ctx)?,
            static_fixed: str_field(row, "static_fixed", &ctx)?,
            dynamic_historical: pin_list(row, "dynamic_historical", &ctx)?,
            dynamic_fixed: pin_list(row, "dynamic_fixed", &ctx)?,
            static_ulfm: opt_str_field(row, "static_ulfm", &ctx)?,
            dynamic_ulfm: opt_pin_list(row, "dynamic_ulfm", &ctx)?,
            static_replica: opt_str_field(row, "static_replica", &ctx)?,
            dynamic_replica: opt_pin_list(row, "dynamic_replica", &ctx)?,
            coverage_key: str_field(row, "coverage_key", &ctx)?,
        };
        let src_path = dir.join(&file);
        let source = std::fs::read_to_string(&src_path)
            .map_err(|e| format!("cannot read {}: {e}", src_path.display()))?;
        out.push((entry, source));
    }
    Ok(out)
}

/// The candidate a manifest entry replays as.
pub fn candidate_of(entry: &CorpusEntry, source: &str) -> Candidate {
    Candidate {
        name: entry.name.clone(),
        source: source.to_string(),
        machine_class: entry.machine_class.clone(),
        params: entry.params.clone(),
        origin: entry.origin.clone(),
    }
}

/// Re-evaluates one corpus entry against its pins, with the probe seeds
/// the entry was pinned under. Returns FZ004 diagnostics for every drift.
pub fn replay_entry(entry: &CorpusEntry, source: &str, cfg: &FuzzConfig) -> Vec<Diagnostic> {
    let seeds: Vec<u64> = entry.dynamic_historical.iter().map(|(s, _)| *s).collect();
    let cfg = FuzzConfig {
        probe_seeds: seeds,
        ..cfg.clone()
    };
    let ev = evaluate(&candidate_of(entry, source), &cfg);

    let mut out = Vec::new();
    let mut drift = |what: String| {
        out.push(Diagnostic::new(
            Severity::Error,
            "FZ004",
            0,
            format!("corpus replay drift: {what}"),
            "a pinned verdict changed — either a regression in the \
             simulator/model checker, or the corpus manifest needs \
             regenerating after an intentional behaviour change",
        ));
    };

    if ev.static_h.verdict.to_string() != entry.static_historical {
        drift(format!(
            "static verdict (historical) is {}, pinned {}",
            ev.static_h.verdict, entry.static_historical
        ));
    }
    if ev.static_f.verdict.to_string() != entry.static_fixed {
        drift(format!(
            "static verdict (fixed) is {}, pinned {}",
            ev.static_f.verdict, entry.static_fixed
        ));
    }
    for (pins, runs, mode) in [
        (&entry.dynamic_historical, &ev.dynamic_h, "historical"),
        (&entry.dynamic_fixed, &ev.dynamic_f, "fixed"),
    ] {
        for ((seed, pinned), run) in pins.iter().zip(runs) {
            if *pinned != run.class {
                drift(format!(
                    "dynamic class ({mode}, seed {seed}) is {}, pinned {pinned}",
                    run.class
                ));
            }
        }
    }

    // The per-backend pins, when the manifest carries them (empty pins
    // mean a pre-backend manifest; nothing to check).
    for be in &ev.backends {
        let (static_pin, dyn_pins) = match be.backend {
            failmpi_backend::BackendKind::Ulfm => (&entry.static_ulfm, &entry.dynamic_ulfm),
            failmpi_backend::BackendKind::Replica => {
                (&entry.static_replica, &entry.dynamic_replica)
            }
            failmpi_backend::BackendKind::Vcl => continue,
        };
        if !static_pin.is_empty() && be.summary.verdict.to_string() != *static_pin {
            drift(format!(
                "static verdict ({}) is {}, pinned {static_pin}",
                be.backend.name(),
                be.summary.verdict
            ));
        }
        for ((seed, pinned), run) in dyn_pins.iter().zip(&be.dynamic) {
            if *pinned != run.class {
                drift(format!(
                    "dynamic class ({}, seed {seed}) is {}, pinned {pinned}",
                    be.backend.name(),
                    run.class
                ));
            }
        }
    }
    out
}

/// Freeze fingerprints of every corpus entry, recomputed by replaying the
/// entries — the fuzzer's known-freeze set. (Fingerprints are not stored
/// in the manifest because they are build-specific.)
pub fn known_freeze_fingerprints(
    entries: &[(CorpusEntry, String)],
    cfg: &FuzzConfig,
) -> BTreeSet<u64> {
    let mut out = BTreeSet::new();
    for (entry, source) in entries {
        let seeds: Vec<u64> = entry.dynamic_historical.iter().map(|(s, _)| *s).collect();
        let cfg = FuzzConfig {
            probe_seeds: seeds,
            ..cfg.clone()
        };
        let ev = evaluate(&candidate_of(entry, source), &cfg);
        out.extend(ev.freeze_fingerprints());
    }
    out
}
