//! The differential oracle: every candidate runs through the static model
//! checker *and* the dynamic harness, under both dispatcher variants, and
//! the disagreements/novelties become FZ-coded findings.
//!
//! | code | severity | meaning |
//! |------|----------|---------|
//! | FZ001 | error | soundness gap: a probe froze but the model checker said survives |
//! | FZ002 | error | novel freeze family (not the Fig. 10 pattern, or freezes the fixed dispatcher) |
//! | FZ003 | warning | Fig. 10-family freeze rediscovered (the known defect) |
//! | FZ004 | error | corpus replay drift (a pinned verdict changed) |
//! | FZ007 | warning | a statically reachable freeze no probe seed realized (over-approximation) |
//! | FZ008 | info | backend divergence: the scenario separates protocol backends |
//!
//! The agreement contract is direction-aware. The checker explores *all*
//! abstract schedules, so `freezes` is an over-approximation — a witness
//! the probe seeds never realize (even after escalation) is FZ007, a
//! warning. The converse can never be excused: a concrete frozen run
//! under a `survives` verdict means the abstraction dropped a behaviour,
//! and that is the FZ001 error.

use std::collections::BTreeSet;

use failmpi_analyze::{
    model_check_source, Diagnostic, ModelCheckConfig, ModelSummary, Severity, StaticVerdict,
};
use failmpi_backend::BackendKind;
use failmpi_experiments::robustness::outcome_class;
use failmpi_experiments::{
    run_one, run_one_traced, smoke_spec_for, tracesink, verdicts_agree, LintMode,
};
use failmpi_mpichv::DispatcherMode;

use crate::gen::Candidate;

/// Oracle knobs.
#[derive(Clone, Debug)]
pub struct FuzzConfig {
    /// Dynamic seeds each candidate is probed with, per dispatcher mode.
    pub probe_seeds: Vec<u64>,
    /// Model-checker exploration budget per candidate (smaller than the
    /// failck default: mutants with unbounded counters go `unknown`, which
    /// the agreement contract treats as vacuous).
    pub model_budget: usize,
    /// Hard ceiling on the escalation seed ladder: when a static freeze
    /// goes unrealized by the initial probes, extra seeds are probed — as
    /// many as the model checker's witness schedule has steps (longer
    /// abstract schedules need more timing luck to realize concretely) —
    /// but never past this seed, so a mutant with a pathological witness
    /// cannot stall the campaign.
    pub escalate_cap: u64,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            probe_seeds: vec![1, 2],
            model_budget: 20_000,
            escalate_cap: 12,
        }
    }
}

/// One dynamic probe run.
#[derive(Clone, Debug)]
pub struct DynRun {
    /// Experiment seed.
    pub seed: u64,
    /// Classifier outcome class (`completed`/`non-terminating`/`buggy`).
    pub class: &'static str,
    /// Schedule fingerprint of the run.
    pub fingerprint: u64,
}

/// One alternate protocol backend's view of a candidate: the static
/// verdict of its abstract model next to the same probe seeds run through
/// its runtime. The Vcl view lives in the historical/fixed fields of
/// [`Evaluation`]; these rows cover the non-Vcl backends.
#[derive(Clone, Debug)]
pub struct BackendEval {
    /// The protocol backend probed.
    pub backend: BackendKind,
    /// Model-check summary of this backend's abstract model.
    pub summary: ModelSummary,
    /// Dynamic probes through this backend's runtime.
    pub dynamic: Vec<DynRun>,
}

impl BackendEval {
    /// Whether any probe froze under this backend.
    pub fn buggy(&self) -> bool {
        self.dynamic.iter().any(|r| r.class == "buggy")
    }
}

/// Everything both oracles observed about one candidate.
#[derive(Clone, Debug)]
pub struct Evaluation {
    /// Model-check summary under the historical (paper-bug) dispatcher.
    pub static_h: ModelSummary,
    /// Model-check summary under the fixed dispatcher.
    pub static_f: ModelSummary,
    /// Dynamic probes under the historical dispatcher.
    pub dynamic_h: Vec<DynRun>,
    /// Dynamic probes under the fixed dispatcher.
    pub dynamic_f: Vec<DynRun>,
    /// Whether a frozen historical run matches the causal-trace
    /// dispatcher-bug pattern (the Fig. 10 family classifier).
    pub fig10_family: bool,
    /// Causal narration of the first frozen historical run, when any.
    pub narration: Option<String>,
    /// The alternate protocol backends' views (ULFM, replication) — the
    /// differential oracle's third axis next to the dispatcher modes.
    pub backends: Vec<BackendEval>,
}

impl Evaluation {
    /// Whether any historical probe froze.
    pub fn h_buggy(&self) -> bool {
        self.dynamic_h.iter().any(|r| r.class == "buggy")
    }

    /// Whether any fixed-dispatcher probe froze.
    pub fn f_buggy(&self) -> bool {
        self.dynamic_f.iter().any(|r| r.class == "buggy")
    }

    /// Fingerprints of every frozen probe, both modes, sorted.
    pub fn freeze_fingerprints(&self) -> Vec<u64> {
        let mut fps: Vec<u64> = self
            .dynamic_h
            .iter()
            .chain(&self.dynamic_f)
            .filter(|r| r.class == "buggy")
            .map(|r| r.fingerprint)
            .collect();
        fps.sort_unstable();
        fps.dedup();
        fps
    }
}

fn probe(cand: &Candidate, seed: u64, mode: DispatcherMode, backend: BackendKind) -> DynRun {
    let params: Vec<(&str, i64)> = cand.params.iter().map(|(k, v)| (k.as_str(), *v)).collect();
    let mut spec = smoke_spec_for(&cand.source, &cand.machine_class, &params, seed, mode)
        .with_backend(backend);
    // The generator already FA-filtered the source; the gate would only
    // re-lint it (and spam stderr once per distinct mutant).
    if let Some(inj) = spec.injection.as_mut() {
        inj.lint = LintMode::Off;
    }
    let record = run_one(&spec);
    DynRun {
        seed,
        class: outcome_class(&record.outcome),
        fingerprint: record.fingerprint,
    }
}

/// Runs both oracles over `cand`.
pub fn evaluate(cand: &Candidate, cfg: &FuzzConfig) -> Evaluation {
    let static_of = |mode| {
        let mc = ModelCheckConfig {
            params: cand.params.clone(),
            mode,
            budget: cfg.model_budget,
            ..ModelCheckConfig::default()
        };
        model_check_source(&cand.source, &mc).summary
    };
    let static_h = static_of(DispatcherMode::Historical);
    let static_f = static_of(DispatcherMode::Fixed);

    // A statically reachable freeze deserves a fair shot at concrete
    // realization: escalate through additional seeds before the finding
    // stage settles on "unrealized" (FZ007). The ladder's length comes
    // from the witness itself — one extra seed per step of the minimal
    // abstract schedule, clamped by `escalate_cap` — so a shallow freeze
    // gets a short ladder and a deep Fig. 10-shaped one gets the full
    // budget. Deterministic: it depends only on the config and the
    // (deterministic) static summary.
    let ladder_of = |summary: &ModelSummary| -> Option<usize> {
        if summary.verdict != StaticVerdict::Freezes {
            return None;
        }
        // A freeze verdict always carries a witness; fall back to the old
        // flat ladder length if a future change ever drops it.
        Some(summary.witness.as_ref().map_or(4, |w| w.steps.len()))
    };
    let dynamic_of = |mode, ladder: Option<usize>| -> Vec<DynRun> {
        let mut runs: Vec<DynRun> = cfg
            .probe_seeds
            .iter()
            .map(|&seed| probe(cand, seed, mode, BackendKind::Vcl))
            .collect();
        if let Some(extra) = ladder {
            if !runs.iter().any(|r| r.class == "buggy") {
                let from = runs.iter().map(|r| r.seed).max().unwrap_or(0) + 1;
                let to = (from + extra as u64).saturating_sub(1).min(cfg.escalate_cap);
                for seed in from..=to {
                    let run = probe(cand, seed, mode, BackendKind::Vcl);
                    let hit = run.class == "buggy";
                    runs.push(run);
                    if hit {
                        break;
                    }
                }
            }
        }
        runs
    };
    let dynamic_h = dynamic_of(DispatcherMode::Historical, ladder_of(&static_h));
    let dynamic_f = dynamic_of(DispatcherMode::Fixed, ladder_of(&static_f));

    // Classify frozen historical runs against the paper's dispatcher-bug
    // pattern via the causal trace — the family discriminator that keeps
    // expected Fig. 10 rediscoveries out of the error findings.
    let (fig10_family, narration) = match dynamic_h.iter().find(|r| r.class == "buggy") {
        Some(run) => {
            let params: Vec<(&str, i64)> =
                cand.params.iter().map(|(k, v)| (k.as_str(), *v)).collect();
            let mut spec = smoke_spec_for(
                &cand.source,
                &cand.machine_class,
                &params,
                run.seed,
                DispatcherMode::Historical,
            );
            if let Some(inj) = spec.injection.as_mut() {
                inj.lint = LintMode::Off;
            }
            let traced = run_one_traced(&spec);
            let trace = tracesink::trace_file_of(&cand.name, run.seed, &traced);
            let ex = failmpi_trace::explain::explain(&trace);
            (
                ex.dispatcher_bug,
                Some(failmpi_trace::explain::render(&trace)),
            )
        }
        None => (false, None),
    };

    // The non-Vcl backends: one static check of each backend's abstract
    // model plus the base probe seeds through its runtime. No escalation
    // ladder — the backend axis hunts divergence, not realization, and
    // the corpus pins exactly these seeds.
    let backends = [BackendKind::Ulfm, BackendKind::Replica]
        .into_iter()
        .map(|backend| {
            let mc = ModelCheckConfig {
                backend,
                params: cand.params.clone(),
                mode: DispatcherMode::Historical,
                budget: cfg.model_budget,
                ..ModelCheckConfig::default()
            };
            BackendEval {
                backend,
                summary: model_check_source(&cand.source, &mc).summary,
                dynamic: cfg
                    .probe_seeds
                    .iter()
                    .map(|&seed| probe(cand, seed, DispatcherMode::Historical, backend))
                    .collect(),
            }
        })
        .collect();

    Evaluation {
        static_h,
        static_f,
        dynamic_h,
        dynamic_f,
        fig10_family,
        narration,
        backends,
    }
}

fn dyn_note(runs: &[DynRun]) -> String {
    runs.iter()
        .map(|r| format!("{}:{}", r.seed, r.class))
        .collect::<Vec<_>>()
        .join(" ")
}

/// Converts an evaluation into FZ diagnostics. `known_freeze_fps` holds
/// the freeze fingerprints already pinned by the corpus: a freeze that
/// replays a known fingerprint is corpus behaviour, not a finding.
pub fn findings_for(ev: &Evaluation, known_freeze_fps: &BTreeSet<u64>) -> Vec<Diagnostic> {
    let mut out = Vec::new();

    for (mode, summary, buggy, runs) in [
        ("historical", &ev.static_h, ev.h_buggy(), &ev.dynamic_h),
        ("fixed", &ev.static_f, ev.f_buggy(), &ev.dynamic_f),
    ] {
        if verdicts_agree(summary.verdict, buggy) {
            continue;
        }
        match summary.verdict {
            // A concrete freeze under a `survives` verdict: the
            // abstraction dropped a behaviour. Never excusable.
            StaticVerdict::Survives => out.push(Diagnostic::new(
                Severity::Error,
                "FZ001",
                0,
                format!(
                    "soundness gap under the {mode} dispatcher: model checker \
                     says survives but the probes saw [{}]",
                    dyn_note(runs)
                ),
                "the abstract Vcl model misses a schedule the simulator \
                 realizes — walk the causal narration of the frozen probe",
            )),
            // A reachable freeze no probe realized, even after the seed
            // escalation: the over-approximate direction, a warning.
            _ => out.push(Diagnostic::new(
                Severity::Warning,
                "FZ007",
                0,
                format!(
                    "statically reachable freeze unrealized under the {mode} \
                     dispatcher: probes [{}] all survive the witness",
                    dyn_note(runs)
                ),
                "the abstract witness schedule may need timing the smoke \
                 spec cannot hit, or the abstraction over-approximates \
                 here; raise --probe-seeds to keep hunting",
            )),
        }
    }

    // Any freeze that concretely survives the dispatcher fix is by
    // construction not the paper's stale-entry defect: a novel bug.
    if ev.f_buggy() {
        out.push(Diagnostic::new(
            Severity::Error,
            "FZ002",
            0,
            format!(
                "freeze survives the fixed dispatcher (static {}, probes [{}])",
                ev.static_f.verdict,
                dyn_note(&ev.dynamic_f)
            ),
            "not the known Fig. 10 stale-entry defect — the repaired \
             recovery protocol itself wedges on this scenario",
        ));
    } else if ev.h_buggy() {
        let fps = ev.freeze_fingerprints();
        let all_known = fps.iter().all(|fp| known_freeze_fps.contains(fp));
        if ev.fig10_family {
            if !all_known {
                out.push(Diagnostic::new(
                    Severity::Warning,
                    "FZ003",
                    0,
                    format!(
                        "fig10-family freeze rediscovered under the historical \
                         dispatcher (probes [{}])",
                        dyn_note(&ev.dynamic_h)
                    ),
                    "the causal trace matches the paper's stale-dispatcher-entry \
                     pattern and the fixed dispatcher survives it — the known \
                     defect, not a new finding",
                ));
            }
        } else {
            out.push(Diagnostic::new(
                Severity::Error,
                "FZ002",
                0,
                format!(
                    "novel freeze family under the historical dispatcher: the \
                     causal trace does not match the stale-entry pattern \
                     (probes [{}])",
                    dyn_note(&ev.dynamic_h)
                ),
                "a freeze with a different root cause than the paper's \
                 dispatcher bug — walk the causal narration",
            ));
        }
    }

    // Backend divergence: the scenario separates the protocol backends'
    // concrete behaviour. Informational — divergence is the differential
    // suite's raw material (a Vcl-only freeze localizes the dispatcher
    // bug; a backend-only freeze exposes that protocol's own failure
    // mode), not a defect in itself.
    for be in &ev.backends {
        if be.buggy() != ev.h_buggy() {
            let (frozen, surviving) = if ev.h_buggy() {
                ("vcl".to_string(), be.backend.name().to_string())
            } else {
                (be.backend.name().to_string(), "vcl".to_string())
            };
            out.push(Diagnostic::new(
                Severity::Info,
                "FZ008",
                0,
                format!(
                    "backend divergence: freezes under {frozen} but survives \
                     under {surviving} (static {}, probes [{}])",
                    be.summary.verdict,
                    dyn_note(&be.dynamic)
                ),
                "the scenario separates the recovery protocols — a vcl-only \
                 freeze localizes the dispatcher bug, a backend-only freeze \
                 is that protocol's own failure mode (see the cross-backend \
                 matrix in failmpi-experiments)",
            ));
        }
    }

    out
}
