//! Behavioural coverage: a candidate earns a corpus slot only when the
//! oracles observed something no earlier candidate produced.
//!
//! The novelty key reuses the repo's existing fingerprints instead of
//! inventing instrumentation: the model checker's interned-state digest
//! (static shape of the product under both dispatcher variants), the
//! verdict pair, the per-seed dynamic outcome classes, and the schedule
//! fingerprints of any frozen probe (the freeze family signal).

use std::collections::BTreeSet;

use crate::oracle::Evaluation;

/// Canonical, order-stable novelty key of an evaluation.
pub fn key_of(ev: &Evaluation) -> String {
    let dyn_part = |runs: &[crate::oracle::DynRun]| {
        runs.iter()
            .map(|r| r.class)
            .collect::<Vec<_>>()
            .join(",")
    };
    let freeze = ev
        .freeze_fingerprints()
        .iter()
        .map(|fp| format!("{fp:016x}"))
        .collect::<Vec<_>>()
        .join(",");
    format!(
        "{:016x}|{:016x}|{}|{}|{}|{}|{}",
        ev.static_h.state_digest,
        ev.static_f.state_digest,
        ev.static_h.verdict,
        ev.static_f.verdict,
        dyn_part(&ev.dynamic_h),
        dyn_part(&ev.dynamic_f),
        freeze
    )
}

/// The set of behaviours seen so far.
#[derive(Debug, Default)]
pub struct Coverage {
    seen: BTreeSet<String>,
}

impl Coverage {
    /// An empty coverage map.
    pub fn new() -> Self {
        Coverage::default()
    }

    /// Records `key`; returns `true` when it was novel.
    pub fn observe(&mut self, key: &str) -> bool {
        self.seen.insert(key.to_string())
    }

    /// Distinct behaviours observed.
    pub fn len(&self) -> usize {
        self.seen.len()
    }

    /// Whether nothing has been observed yet.
    pub fn is_empty(&self) -> bool {
        self.seen.is_empty()
    }
}
