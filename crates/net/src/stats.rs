//! Network-layer traffic counters.

use failmpi_obs::Counter;

/// Monotonic counters over one [`crate::Network`]'s lifetime.
///
/// Every field is a function of the simulated schedule (no wall-clock
/// data), so the struct is safe to fold into deterministic metrics
/// snapshots. Byte/message *class* accounting (application vs checkpoint
/// vs control) lives a layer up, where payloads have meaning.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Messages accepted by [`crate::Network::send`].
    pub msgs_sent: Counter,
    /// Payload bytes accepted by [`crate::Network::send`].
    pub bytes_sent: Counter,
    /// Sends refused (stream closed or an endpoint dead).
    pub sends_dropped: Counter,
    /// Connections established (listener present and alive).
    pub connects_ok: Counter,
    /// Connection attempts that failed (no listener, or owner dead).
    pub connects_failed: Counter,
    /// Streams closed gracefully by an endpoint.
    pub closes_graceful: Counter,
    /// Streams reset because an endpoint died.
    pub conns_reset: Counter,
    /// Processes killed.
    pub kills: Counter,
    /// Events delivered to a live, running recipient.
    pub deliveries: Counter,
    /// Events buffered for a suspended recipient.
    pub gate_buffered: Counter,
    /// Events dropped at the gate (recipient dead).
    pub gate_dropped: Counter,
}

impl NetStats {
    /// Folds another stats block in (aggregation across networks).
    pub fn merge(&mut self, other: &NetStats) {
        self.msgs_sent.merge(other.msgs_sent);
        self.bytes_sent.merge(other.bytes_sent);
        self.sends_dropped.merge(other.sends_dropped);
        self.connects_ok.merge(other.connects_ok);
        self.connects_failed.merge(other.connects_failed);
        self.closes_graceful.merge(other.closes_graceful);
        self.conns_reset.merge(other.conns_reset);
        self.kills.merge(other.kills);
        self.deliveries.merge(other.deliveries);
        self.gate_buffered.merge(other.gate_buffered);
        self.gate_dropped.merge(other.gate_dropped);
    }
}
