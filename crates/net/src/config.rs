//! Network timing parameters.

use failmpi_sim::SimDuration;

/// Timing model for the simulated cluster interconnect.
#[derive(Clone, Debug)]
pub struct NetConfig {
    /// One-way switch latency between two distinct hosts.
    pub latency: SimDuration,
    /// NIC bandwidth in bytes per second (applied on both the send and the
    /// receive side of every remote transfer).
    pub bandwidth_bytes_per_sec: u64,
    /// Latency of a local (same-host, unix-socket-like) delivery; local
    /// transfers do not occupy the NIC.
    pub local_latency: SimDuration,
    /// TCP keep-alive probe interval (modelled for completeness; the default
    /// failure model kills tasks, which breaks connections immediately).
    pub keepalive_interval: SimDuration,
    /// Number of consecutive missed probes before a peer is declared dead.
    pub keepalive_probes: u32,
    /// Extra delay before peers observe the closure of a killed process'
    /// streams. Zero models the paper's setup ("we emulated failures by
    /// killing the task, not the operating system, so failure detection was
    /// immediate"); set it to [`NetConfig::keepalive_detection_time`] to
    /// model a hard machine crash detected only through keep-alive probes.
    pub kill_detect_extra: SimDuration,
}

impl Default for NetConfig {
    /// Grid-Explorer-like defaults: GigE (125 MB/s), 100 µs switch latency,
    /// 5 µs local pipes, Linux default keep-alive (75 s × 9).
    fn default() -> Self {
        NetConfig {
            latency: SimDuration::from_micros(100),
            bandwidth_bytes_per_sec: 125_000_000,
            local_latency: SimDuration::from_micros(5),
            keepalive_interval: SimDuration::from_secs(75),
            keepalive_probes: 9,
            kill_detect_extra: SimDuration::ZERO,
        }
    }
}

impl NetConfig {
    /// Time a `bytes`-sized message occupies one NIC.
    pub fn wire_time(&self, bytes: u64) -> SimDuration {
        debug_assert!(self.bandwidth_bytes_per_sec > 0);
        // Ceil division in microseconds: bytes * 1e6 / bw.
        let us = (bytes as u128 * 1_000_000).div_ceil(self.bandwidth_bytes_per_sec as u128);
        SimDuration::from_micros(us.min(u64::MAX as u128) as u64)
    }

    /// Worst-case failure-detection delay through keep-alive alone.
    pub fn keepalive_detection_time(&self) -> SimDuration {
        self.keepalive_interval * self.keepalive_probes as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_time_scales_with_size() {
        let cfg = NetConfig::default();
        // 125 MB at 125 MB/s = 1 s.
        assert_eq!(cfg.wire_time(125_000_000), SimDuration::from_secs(1));
        assert_eq!(cfg.wire_time(0), SimDuration::ZERO);
        // 1 byte still costs at least a microsecond tick.
        assert_eq!(cfg.wire_time(1), SimDuration::from_micros(1));
    }

    #[test]
    fn keepalive_matches_linux_defaults() {
        let cfg = NetConfig::default();
        assert_eq!(
            cfg.keepalive_detection_time(),
            SimDuration::from_secs(75 * 9)
        );
    }
}
