//! The network state machine.

use std::collections::BTreeMap;
use std::mem;

use failmpi_sim::SimTime;

use crate::config::NetConfig;
use crate::stats::NetStats;
use crate::types::{CloseReason, ConnId, HostId, NetEvent, Port, ProcId};

struct HostNic {
    tx_free: SimTime,
    rx_free: SimTime,
}

struct ProcState<P> {
    host: HostId,
    alive: bool,
    suspended: bool,
    /// Events that arrived while the process was suspended (socket buffers).
    buffer: Vec<NetEvent<P>>,
}

struct ConnState {
    a: ProcId,
    b: ProcId,
    open: bool,
}

/// Verdict of [`Network::gate`] for a network event about to be delivered.
#[derive(Debug)]
pub enum Gated<P> {
    /// Deliver the event to its recipient now.
    Deliver(NetEvent<P>),
    /// The recipient is suspended; the network buffered the event and will
    /// release it from [`Network::resume`].
    Buffered,
    /// The recipient is dead (or never existed); the event evaporates.
    Dropped,
}

/// The simulated cluster network. See the crate docs for the model.
///
/// All mutating calls may produce events; the embedding world must drain
/// them with [`Network::take_events`] after each call (or batch of calls)
/// and feed them to its scheduler, then route each one back through
/// [`Network::gate`] at delivery time.
pub struct Network<P> {
    cfg: NetConfig,
    hosts: Vec<HostNic>,
    procs: Vec<ProcState<P>>,
    listeners: BTreeMap<(HostId, Port), ProcId>,
    conns: Vec<ConnState>,
    out: Vec<(SimTime, NetEvent<P>)>,
    stats: NetStats,
}

impl<P> Network<P> {
    /// Creates an empty network with the given timing model.
    pub fn new(cfg: NetConfig) -> Self {
        Network {
            cfg,
            hosts: Vec::new(),
            procs: Vec::new(),
            listeners: BTreeMap::new(),
            conns: Vec::new(),
            out: Vec::new(),
            stats: NetStats::default(),
        }
    }

    /// The timing configuration.
    pub fn config(&self) -> &NetConfig {
        &self.cfg
    }

    /// Lifetime traffic counters (see [`NetStats`]).
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// Adds one machine and returns its id.
    pub fn add_host(&mut self) -> HostId {
        let id = HostId(u16::try_from(self.hosts.len()).expect("too many hosts"));
        self.hosts.push(HostNic {
            tx_free: SimTime::ZERO,
            rx_free: SimTime::ZERO,
        });
        id
    }

    /// Adds `n` machines, returning their ids in order.
    pub fn add_hosts(&mut self, n: usize) -> Vec<HostId> {
        (0..n).map(|_| self.add_host()).collect()
    }

    /// Number of machines.
    pub fn host_count(&self) -> usize {
        self.hosts.len()
    }

    /// Starts a process on `host`. Process ids are never reused, so a stale
    /// id from a previous incarnation can never alias a new process.
    pub fn spawn_process(&mut self, host: HostId) -> ProcId {
        assert!((host.0 as usize) < self.hosts.len(), "unknown {host:?}");
        let id = ProcId(u32::try_from(self.procs.len()).expect("too many processes"));
        self.procs.push(ProcState {
            host,
            alive: true,
            suspended: false,
            buffer: Vec::new(),
        });
        id
    }

    /// Whether `proc` is alive (spawned and not killed).
    pub fn is_alive(&self, proc: ProcId) -> bool {
        self.procs.get(proc.0 as usize).is_some_and(|p| p.alive)
    }

    /// Whether `proc` is currently suspended.
    pub fn is_suspended(&self, proc: ProcId) -> bool {
        self.procs
            .get(proc.0 as usize)
            .is_some_and(|p| p.alive && p.suspended)
    }

    /// The machine `proc` runs on.
    pub fn host_of(&self, proc: ProcId) -> HostId {
        self.procs[proc.0 as usize].host
    }

    /// Live processes currently on `host`.
    pub fn procs_on_host(&self, host: HostId) -> Vec<ProcId> {
        self.procs
            .iter()
            .enumerate()
            .filter(|(_, p)| p.alive && p.host == host)
            .map(|(i, _)| ProcId(i as u32))
            .collect()
    }

    /// The other endpoint of `conn`, from `proc`'s perspective.
    pub fn peer_of(&self, conn: ConnId, proc: ProcId) -> Option<ProcId> {
        let c = self.conns.get(conn.0 as usize)?;
        if c.a == proc {
            Some(c.b)
        } else if c.b == proc {
            Some(c.a)
        } else {
            None
        }
    }

    /// Whether `conn` is still open on both ends.
    pub fn conn_open(&self, conn: ConnId) -> bool {
        self.conns.get(conn.0 as usize).is_some_and(|c| c.open)
    }

    /// Binds a listener owned by `proc` on its host at `port`.
    /// Returns `false` when the port is already bound on that host.
    pub fn listen(&mut self, proc: ProcId, port: Port) -> bool {
        let host = self.host_of(proc);
        if self.listeners.contains_key(&(host, port)) {
            return false;
        }
        self.listeners.insert((host, port), proc);
        true
    }

    /// Removes `proc`'s listener on `port`, if it owns one.
    pub fn unlisten(&mut self, proc: ProcId, port: Port) {
        let host = self.host_of(proc);
        if self.listeners.get(&(host, port)) == Some(&proc) {
            self.listeners.remove(&(host, port));
        }
    }

    fn one_way(&self, same_host: bool) -> failmpi_sim::SimDuration {
        if same_host {
            self.cfg.local_latency
        } else {
            self.cfg.latency
        }
    }

    /// Opens a stream from `proc` to whatever listens on `(host, port)`.
    ///
    /// Emits `Accepted` to the listener owner after one latency and
    /// `ConnEstablished { token }` to the initiator after a round trip —
    /// or `ConnectFailed { token }` after a round trip when nothing listens
    /// (or the listener's owner is dead).
    pub fn connect(&mut self, now: SimTime, proc: ProcId, host: HostId, port: Port, token: u64) {
        assert!(self.is_alive(proc), "connect from dead {proc:?}");
        let same = self.host_of(proc) == host;
        let one = self.one_way(same);
        let owner = self.listeners.get(&(host, port)).copied();
        match owner.filter(|&o| self.is_alive(o)) {
            Some(acceptor) => {
                self.stats.connects_ok.inc();
                let conn = ConnId(self.conns.len() as u64);
                self.conns.push(ConnState {
                    a: proc,
                    b: acceptor,
                    open: true,
                });
                self.out.push((
                    now + one,
                    NetEvent::Accepted {
                        conn,
                        proc: acceptor,
                        peer: proc,
                        port,
                    },
                ));
                self.out.push((
                    now + one + one,
                    NetEvent::ConnEstablished {
                        conn,
                        proc,
                        peer: acceptor,
                        token,
                    },
                ));
            }
            None => {
                self.stats.connects_failed.inc();
                self.out.push((
                    now + one + one,
                    NetEvent::ConnectFailed {
                        proc,
                        host,
                        port,
                        token,
                    },
                ));
            }
        }
    }

    /// Sends `payload` (`bytes` long for the bandwidth model) from `from`
    /// over `conn`. Returns `false` (dropping the message) when the stream
    /// is closed or either endpoint is dead — mirroring bytes written into
    /// a TCP socket that will soon RST.
    pub fn send(&mut self, now: SimTime, conn: ConnId, from: ProcId, payload: P, bytes: u64) -> bool {
        let Some(to) = self.peer_of(conn, from) else {
            self.stats.sends_dropped.inc();
            return false;
        };
        if !self.conn_open(conn) || !self.is_alive(from) || !self.is_alive(to) {
            self.stats.sends_dropped.inc();
            return false;
        }
        self.stats.msgs_sent.inc();
        self.stats.bytes_sent.add(bytes);
        // Payload-copy ledger: the payload is cloned into the in-flight
        // Delivered event here — the first hop of the copy chain the
        // zero-copy refactor targets.
        failmpi_obs::prof::copy("net.enqueue", bytes);
        let src_host = self.host_of(from);
        let dst_host = self.host_of(to);
        let arrive = if src_host == dst_host {
            now + self.cfg.local_latency
        } else {
            let wire = self.cfg.wire_time(bytes);
            let tx_start = now.max(self.hosts[src_host.0 as usize].tx_free);
            let tx_end = tx_start + wire;
            self.hosts[src_host.0 as usize].tx_free = tx_end;
            let rx_start = (tx_start + self.cfg.latency).max(self.hosts[dst_host.0 as usize].rx_free);
            let rx_end = rx_start + wire;
            self.hosts[dst_host.0 as usize].rx_free = rx_end;
            rx_end
        };
        self.out.push((
            arrive,
            NetEvent::Delivered {
                conn,
                proc: to,
                from,
                payload,
                bytes,
            },
        ));
        true
    }

    /// Gracefully closes `conn` from `closer`'s side; the peer observes a
    /// `Closed { Graceful }` one latency later.
    pub fn close(&mut self, now: SimTime, conn: ConnId, closer: ProcId) {
        let Some(peer) = self.peer_of(conn, closer) else {
            return;
        };
        let c = &mut self.conns[conn.0 as usize];
        if !c.open {
            return;
        }
        c.open = false;
        self.stats.closes_graceful.inc();
        if self.is_alive(peer) {
            let one = self.one_way(self.host_of(closer) == self.host_of(peer));
            self.out.push((
                now + one,
                NetEvent::Closed {
                    conn,
                    proc: peer,
                    reason: CloseReason::Graceful,
                },
            ));
        }
    }

    /// Kills `proc`: every open stream it holds resets, peers observe
    /// `Closed { PeerDied }` one latency later (the paper's immediate
    /// detection model), its listeners unbind, and any buffered events are
    /// discarded. Idempotent.
    pub fn kill(&mut self, now: SimTime, proc: ProcId) {
        let Some(state) = self.procs.get_mut(proc.0 as usize) else {
            return;
        };
        if !state.alive {
            return;
        }
        state.alive = false;
        state.suspended = false;
        state.buffer.clear();
        let host = state.host;
        self.stats.kills.inc();
        self.listeners.retain(|_, owner| *owner != proc);
        let mut closes = Vec::new();
        for (i, c) in self.conns.iter_mut().enumerate() {
            if c.open && (c.a == proc || c.b == proc) {
                c.open = false;
                let peer = if c.a == proc { c.b } else { c.a };
                closes.push((ConnId(i as u64), peer));
            }
        }
        self.stats.conns_reset.add(closes.len() as u64);
        for (conn, peer) in closes {
            if self.is_alive(peer) {
                let one = self.one_way(self.host_of(peer) == host);
                self.out.push((
                    now + one + self.cfg.kill_detect_extra,
                    NetEvent::Closed {
                        conn,
                        proc: peer,
                        reason: CloseReason::PeerDied,
                    },
                ));
            }
        }
    }

    /// Suspends `proc` (SIGSTOP): its streams stay open, inbound events are
    /// buffered until [`Network::resume`].
    pub fn suspend(&mut self, proc: ProcId) {
        if let Some(p) = self.procs.get_mut(proc.0 as usize) {
            if p.alive {
                p.suspended = true;
            }
        }
    }

    /// Resumes `proc` (SIGCONT) and returns the events buffered while it was
    /// suspended; the caller must deliver them at the current instant, in
    /// order.
    pub fn resume(&mut self, proc: ProcId) -> Vec<NetEvent<P>> {
        match self.procs.get_mut(proc.0 as usize) {
            Some(p) if p.alive && p.suspended => {
                p.suspended = false;
                mem::take(&mut p.buffer)
            }
            _ => Vec::new(),
        }
    }

    /// Filters an event at its delivery instant: delivers to live running
    /// processes, buffers for suspended ones, drops for dead ones.
    pub fn gate(&mut self, ev: NetEvent<P>) -> Gated<P> {
        let rcpt = ev.recipient();
        match self.procs.get_mut(rcpt.0 as usize) {
            Some(p) if p.alive && !p.suspended => {
                self.stats.deliveries.inc();
                Gated::Deliver(ev)
            }
            Some(p) if p.alive => {
                p.buffer.push(ev);
                self.stats.gate_buffered.inc();
                Gated::Buffered
            }
            _ => {
                self.stats.gate_dropped.inc();
                Gated::Dropped
            }
        }
    }

    /// Takes all freshly produced `(time, event)` pairs for scheduling.
    pub fn take_events(&mut self) -> Vec<(SimTime, NetEvent<P>)> {
        mem::take(&mut self.out)
    }

    /// Number of produced-but-not-yet-taken events (diagnostic).
    pub fn pending_out(&self) -> usize {
        self.out.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use failmpi_sim::SimDuration;

    type Net = Network<&'static str>;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn two_proc_net() -> (Net, ProcId, ProcId) {
        let mut net = Net::new(NetConfig::default());
        let h = net.add_hosts(2);
        let a = net.spawn_process(h[0]);
        let b = net.spawn_process(h[1]);
        (net, a, b)
    }

    /// Establishes a stream a→b and returns it, draining handshake events.
    fn connected() -> (Net, ProcId, ProcId, ConnId) {
        let (mut net, a, b) = two_proc_net();
        assert!(net.listen(b, Port(80)));
        net.connect(t(0), a, net.host_of(b), Port(80), 7);
        let evs = net.take_events();
        let conn = match &evs[0].1 {
            NetEvent::Accepted { conn, .. } => *conn,
            other => panic!("expected Accepted, got {other:?}"),
        };
        assert!(matches!(
            &evs[1].1,
            NetEvent::ConnEstablished { token: 7, .. }
        ));
        (net, a, b, conn)
    }

    #[test]
    fn handshake_produces_both_events_in_latency_order() {
        let (mut net, a, b) = two_proc_net();
        assert!(net.listen(b, Port(80)));
        net.connect(t(1), a, net.host_of(b), Port(80), 42);
        let evs = net.take_events();
        assert_eq!(evs.len(), 2);
        let lat = NetConfig::default().latency;
        assert_eq!(evs[0].0, t(1) + lat);
        assert_eq!(evs[1].0, t(1) + lat + lat);
        assert_eq!(evs[0].1.recipient(), b);
        assert_eq!(evs[1].1.recipient(), a);
    }

    #[test]
    fn connect_without_listener_fails() {
        let (mut net, a, b) = two_proc_net();
        net.connect(t(0), a, net.host_of(b), Port(81), 9);
        let evs = net.take_events();
        assert_eq!(evs.len(), 1);
        assert!(matches!(
            evs[0].1,
            NetEvent::ConnectFailed { token: 9, port: Port(81), .. }
        ));
    }

    #[test]
    fn connect_to_dead_listener_fails() {
        let (mut net, a, b) = two_proc_net();
        net.listen(b, Port(80));
        net.kill(t(0), b);
        net.take_events();
        net.connect(t(1), a, net.host_of(b), Port(80), 1);
        let evs = net.take_events();
        assert!(matches!(evs[0].1, NetEvent::ConnectFailed { .. }));
    }

    #[test]
    fn port_collision_rejected() {
        let (mut net, _a, b) = two_proc_net();
        assert!(net.listen(b, Port(80)));
        assert!(!net.listen(b, Port(80)));
    }

    #[test]
    fn send_delivers_with_bandwidth_and_latency() {
        let (mut net, a, _b, conn) = connected();
        // 125 MB at 125 MB/s streams through in 1 s + 100 µs switch latency
        // (cut-through: the receiver drains while the sender still pushes).
        assert!(net.send(t(10), conn, a, "data", 125_000_000));
        let evs = net.take_events();
        assert_eq!(evs.len(), 1);
        let expect = t(10) + NetConfig::default().latency + SimDuration::from_secs(1);
        assert_eq!(evs[0].0, expect);
        assert!(matches!(evs[0].1, NetEvent::Delivered { payload: "data", .. }));
    }

    #[test]
    fn sender_nic_serialises_messages() {
        let (mut net, a, _b, conn) = connected();
        assert!(net.send(t(0), conn, a, "m1", 125_000_000));
        assert!(net.send(t(0), conn, a, "m2", 125_000_000));
        let evs = net.take_events();
        // Second message starts tx only after the first finished.
        assert!(evs[1].0 >= evs[0].0 + SimDuration::from_secs(1));
    }

    #[test]
    fn receiver_nic_contends_across_senders() {
        let mut net: Net = Network::new(NetConfig::default());
        let hs = net.add_hosts(3);
        let server = net.spawn_process(hs[0]);
        let c1 = net.spawn_process(hs[1]);
        let c2 = net.spawn_process(hs[2]);
        net.listen(server, Port(9));
        net.connect(t(0), c1, hs[0], Port(9), 0);
        net.connect(t(0), c2, hs[0], Port(9), 0);
        let evs = net.take_events();
        let conns: Vec<ConnId> = evs
            .iter()
            .filter_map(|(_, e)| match e {
                NetEvent::ConnEstablished { conn, .. } => Some(*conn),
                _ => None,
            })
            .collect();
        assert_eq!(conns.len(), 2);
        // Both clients push 125 MB at the same instant: the server NIC must
        // serialise them, so the second delivery lands ≥ 1 s after the first.
        assert!(net.send(t(10), conns[0], c1, "x", 125_000_000));
        assert!(net.send(t(10), conns[1], c2, "y", 125_000_000));
        let evs = net.take_events();
        let mut times: Vec<SimTime> = evs.iter().map(|&(at, _)| at).collect();
        times.sort();
        assert!(times[1] >= times[0] + SimDuration::from_secs(1));
    }

    #[test]
    fn local_delivery_skips_nic() {
        let mut net: Net = Network::new(NetConfig::default());
        let h = net.add_host();
        let a = net.spawn_process(h);
        let b = net.spawn_process(h);
        net.listen(b, Port(1));
        net.connect(t(0), a, h, Port(1), 0);
        let evs = net.take_events();
        let conn = match evs[0].1 {
            NetEvent::Accepted { conn, .. } => conn,
            _ => panic!(),
        };
        net.send(t(1), conn, a, "big", 1_000_000_000);
        let evs = net.take_events();
        assert_eq!(evs[0].0, t(1) + NetConfig::default().local_latency);
    }

    #[test]
    fn kill_resets_peer_connections() {
        let (mut net, a, b, conn) = connected();
        net.kill(t(5), b);
        let evs = net.take_events();
        assert_eq!(evs.len(), 1);
        assert_eq!(
            evs[0].1,
            NetEvent::Closed {
                conn,
                proc: a,
                reason: CloseReason::PeerDied
            }
        );
        assert_eq!(evs[0].0, t(5) + NetConfig::default().latency);
        assert!(!net.conn_open(conn));
        assert!(!net.is_alive(b));
        // Sends into the dead stream are dropped.
        assert!(!net.send(t(6), conn, a, "late", 10));
    }

    #[test]
    fn kill_is_idempotent_and_unbinds_listeners() {
        let (mut net, a, b) = two_proc_net();
        net.listen(b, Port(80));
        net.kill(t(0), b);
        net.kill(t(1), b);
        assert!(net.take_events().is_empty());
        // Port is free again for another process on that host.
        let b2 = net.spawn_process(net.host_of(b));
        assert!(net.listen(b2, Port(80)));
        let _ = a;
    }

    #[test]
    fn graceful_close_notifies_peer_once() {
        let (mut net, a, b, conn) = connected();
        net.close(t(3), conn, a);
        net.close(t(4), conn, a);
        let evs = net.take_events();
        assert_eq!(evs.len(), 1);
        assert_eq!(
            evs[0].1,
            NetEvent::Closed {
                conn,
                proc: b,
                reason: CloseReason::Graceful
            }
        );
    }

    #[test]
    fn suspended_recipient_buffers_until_resume() {
        let (mut net, a, b, conn) = connected();
        net.suspend(b);
        assert!(net.is_suspended(b));
        net.send(t(1), conn, a, "queued", 10);
        let evs = net.take_events();
        assert_eq!(evs.len(), 1);
        // World routes the delivery through gate at its arrival instant.
        match net.gate(evs.into_iter().next().unwrap().1) {
            Gated::Buffered => {}
            other => panic!("expected Buffered, got {other:?}"),
        }
        let flushed = net.resume(b);
        assert_eq!(flushed.len(), 1);
        assert!(matches!(flushed[0], NetEvent::Delivered { payload: "queued", .. }));
        assert!(!net.is_suspended(b));
    }

    #[test]
    fn gate_drops_for_dead_recipient() {
        let (mut net, a, b, conn) = connected();
        net.send(t(1), conn, a, "inflight", 10);
        let evs = net.take_events();
        net.kill(t(1), b);
        net.take_events();
        match net.gate(evs.into_iter().next().unwrap().1) {
            Gated::Dropped => {}
            other => panic!("expected Dropped, got {other:?}"),
        }
    }

    #[test]
    fn killing_suspended_process_discards_buffer() {
        let (mut net, a, b, conn) = connected();
        net.suspend(b);
        net.send(t(1), conn, a, "lost", 10);
        for (_, ev) in net.take_events() {
            let _ = net.gate(ev);
        }
        net.kill(t(2), b);
        net.take_events();
        assert!(net.resume(b).is_empty());
    }

    #[test]
    fn procs_on_host_reflects_life_cycle() {
        let mut net: Net = Network::new(NetConfig::default());
        let h = net.add_host();
        let a = net.spawn_process(h);
        let b = net.spawn_process(h);
        assert_eq!(net.procs_on_host(h), vec![a, b]);
        net.kill(t(0), a);
        assert_eq!(net.procs_on_host(h), vec![b]);
    }

    #[test]
    fn keepalive_detection_delays_closure() {
        let mut cfg = NetConfig::default();
        cfg.kill_detect_extra = cfg.keepalive_detection_time();
        let mut net: Net = Network::new(cfg.clone());
        let h = net.add_hosts(2);
        let a = net.spawn_process(h[0]);
        let b = net.spawn_process(h[1]);
        net.listen(b, Port(80));
        net.connect(t(0), a, h[1], Port(80), 0);
        net.take_events();
        net.kill(t(100), b);
        let evs = net.take_events();
        assert_eq!(evs.len(), 1);
        // 9 × 75 s of keep-alive probes before anyone notices.
        assert_eq!(
            evs[0].0,
            t(100) + cfg.latency + SimDuration::from_secs(675)
        );
    }

    #[test]
    fn stats_count_connects_sends_and_closes() {
        let (mut net, a, b, conn) = connected();
        assert_eq!(net.stats().connects_ok.get(), 1);
        assert!(net.send(t(1), conn, a, "m", 100));
        assert_eq!(net.stats().msgs_sent.get(), 1);
        assert_eq!(net.stats().bytes_sent.get(), 100);
        for (_, ev) in net.take_events() {
            let _ = net.gate(ev);
        }
        assert_eq!(net.stats().deliveries.get(), 1);
        net.kill(t(2), b);
        assert_eq!(net.stats().kills.get(), 1);
        assert_eq!(net.stats().conns_reset.get(), 1);
        assert!(!net.send(t(3), conn, a, "late", 10));
        assert_eq!(net.stats().sends_dropped.get(), 1);
        // Failed connect (no listener anywhere on b's old port now).
        net.connect(t(4), a, net.host_of(b), Port(80), 0);
        assert_eq!(net.stats().connects_failed.get(), 1);
    }

    #[test]
    fn peer_of_rejects_strangers() {
        let (mut net, a, _b, conn) = connected();
        let stranger = net.spawn_process(net.host_of(a));
        assert_eq!(net.peer_of(conn, stranger), None);
    }
}
