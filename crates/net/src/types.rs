//! Identifier newtypes and the network event vocabulary.

use std::fmt;

use failmpi_sim::{Fingerprint, FingerprintEvent};

/// A physical machine in the simulated cluster.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct HostId(pub u16);

/// A (unix) process running on some host. Ids are never reused within a
/// simulation, so a `ProcId` also identifies one *incarnation* of a task.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcId(pub u32);

/// A TCP port on a host.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Port(pub u16);

/// One established stream between two processes.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ConnId(pub u64);

impl fmt::Debug for HostId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "host{}", self.0)
    }
}
impl fmt::Debug for ProcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pid{}", self.0)
    }
}
impl fmt::Debug for Port {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, ":{}", self.0)
    }
}
impl fmt::Debug for ConnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "conn{}", self.0)
    }
}

/// Why a connection ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CloseReason {
    /// The peer closed the stream deliberately.
    Graceful,
    /// The peer process died (task killed); this is the failure-detection
    /// signal MPICH-V's dispatcher relies on ("a failure is assumed after
    /// any unexpected socket closure").
    PeerDied,
    /// The local process' host was removed from the simulation.
    LocalReset,
}

/// An event delivered by the network to exactly one process.
///
/// `P` is the logical payload type chosen by the embedding world.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NetEvent<P> {
    /// A `connect` initiated by `proc` (correlated by `token`) succeeded.
    ConnEstablished {
        /// The new stream.
        conn: ConnId,
        /// The event's recipient (the initiator).
        proc: ProcId,
        /// The accepting process.
        peer: ProcId,
        /// Caller-supplied correlation token from `connect`.
        token: u64,
    },
    /// A listener owned by `proc` accepted a new stream.
    Accepted {
        /// The new stream.
        conn: ConnId,
        /// The event's recipient (the acceptor).
        proc: ProcId,
        /// The initiating process.
        peer: ProcId,
        /// The local port that accepted.
        port: Port,
    },
    /// A `connect` initiated by `proc` failed (no listener / dead host).
    ConnectFailed {
        /// The event's recipient (the initiator).
        proc: ProcId,
        /// Target host of the failed attempt.
        host: HostId,
        /// Target port of the failed attempt.
        port: Port,
        /// Caller-supplied correlation token from `connect`.
        token: u64,
    },
    /// A message arrived on `conn`.
    Delivered {
        /// The stream it arrived on.
        conn: ConnId,
        /// The event's recipient.
        proc: ProcId,
        /// The sending process.
        from: ProcId,
        /// Logical payload.
        payload: P,
        /// Size used for the bandwidth model.
        bytes: u64,
    },
    /// The stream was closed by the other side (or reset).
    Closed {
        /// The stream that closed.
        conn: ConnId,
        /// The event's recipient.
        proc: ProcId,
        /// Why it closed.
        reason: CloseReason,
    },
}

impl<P> NetEvent<P> {
    /// The process this event must be delivered to.
    pub fn recipient(&self) -> ProcId {
        match *self {
            NetEvent::ConnEstablished { proc, .. }
            | NetEvent::Accepted { proc, .. }
            | NetEvent::ConnectFailed { proc, .. }
            | NetEvent::Delivered { proc, .. }
            | NetEvent::Closed { proc, .. } => proc,
        }
    }

    /// The *other* process involved, where the event names one: the peer
    /// of a handshake or the sender of a delivery. Cross-node causality in
    /// the happens-before trace flows from this process to
    /// [`NetEvent::recipient`].
    pub fn origin(&self) -> Option<ProcId> {
        match *self {
            NetEvent::ConnEstablished { peer, .. } | NetEvent::Accepted { peer, .. } => Some(peer),
            NetEvent::Delivered { from, .. } => Some(from),
            NetEvent::ConnectFailed { .. } | NetEvent::Closed { .. } => None,
        }
    }

    /// A static kind label for handler profiling and causal-trace nodes.
    pub fn kind_str(&self) -> &'static str {
        match self {
            NetEvent::ConnEstablished { .. } => "net.established",
            NetEvent::Accepted { .. } => "net.accepted",
            NetEvent::ConnectFailed { .. } => "net.connect_failed",
            NetEvent::Delivered { .. } => "net.delivered",
            NetEvent::Closed { .. } => "net.closed",
        }
    }

    /// A short human label (payload-agnostic) for divergence reports and
    /// causal-trace nodes.
    pub fn label(&self) -> String {
        match self {
            NetEvent::ConnEstablished { proc, peer, .. } => {
                format!("net.established {proc:?}<-{peer:?}")
            }
            NetEvent::Accepted { proc, peer, .. } => {
                format!("net.accepted {proc:?}<-{peer:?}")
            }
            NetEvent::ConnectFailed { proc, host, .. } => {
                format!("net.connect-failed {proc:?}->{host:?}")
            }
            NetEvent::Delivered { proc, from, .. } => {
                format!("net.delivered {from:?}->{proc:?}")
            }
            NetEvent::Closed { proc, reason, .. } => {
                format!("net.closed {proc:?} ({reason:?})")
            }
        }
    }
}

impl FingerprintEvent for NetEvent<()> {
    fn fold(&self, fp: &mut Fingerprint) {
        self.fold_with(fp, |_, _| {});
    }
}

impl<P> NetEvent<P> {
    /// Folds this event's structure into a run fingerprint, using
    /// `payload` for the embedding world's payload type. (Offered as a
    /// helper rather than a blanket `FingerprintEvent` impl so worlds
    /// whose payloads cannot implement the trait can still fold the
    /// transport structure.)
    pub fn fold_with(&self, fp: &mut Fingerprint, payload: impl FnOnce(&P, &mut Fingerprint)) {
        match self {
            NetEvent::ConnEstablished {
                conn,
                proc,
                peer,
                token,
            } => {
                fp.write_u8(1);
                fp.write_u64(conn.0);
                fp.write_u32(proc.0);
                fp.write_u32(peer.0);
                fp.write_u64(*token);
            }
            NetEvent::Accepted {
                conn,
                proc,
                peer,
                port,
            } => {
                fp.write_u8(2);
                fp.write_u64(conn.0);
                fp.write_u32(proc.0);
                fp.write_u32(peer.0);
                fp.write_u32(port.0 as u32);
            }
            NetEvent::ConnectFailed {
                proc,
                host,
                port,
                token,
            } => {
                fp.write_u8(3);
                fp.write_u32(proc.0);
                fp.write_u32(host.0 as u32);
                fp.write_u32(port.0 as u32);
                fp.write_u64(*token);
            }
            NetEvent::Delivered {
                conn,
                proc,
                from,
                payload: p,
                bytes,
            } => {
                fp.write_u8(4);
                fp.write_u64(conn.0);
                fp.write_u32(proc.0);
                fp.write_u32(from.0);
                fp.write_u64(*bytes);
                payload(p, fp);
            }
            NetEvent::Closed { conn, proc, reason } => {
                fp.write_u8(5);
                fp.write_u64(conn.0);
                fp.write_u32(proc.0);
                fp.write_u8(match reason {
                    CloseReason::Graceful => 0,
                    CloseReason::PeerDied => 1,
                    CloseReason::LocalReset => 2,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recipient_extraction() {
        let ev: NetEvent<()> = NetEvent::Closed {
            conn: ConnId(1),
            proc: ProcId(7),
            reason: CloseReason::PeerDied,
        };
        assert_eq!(ev.recipient(), ProcId(7));
        let ev: NetEvent<u32> = NetEvent::Delivered {
            conn: ConnId(2),
            proc: ProcId(9),
            from: ProcId(1),
            payload: 5,
            bytes: 100,
        };
        assert_eq!(ev.recipient(), ProcId(9));
    }

    #[test]
    fn debug_formats() {
        assert_eq!(format!("{:?}", HostId(3)), "host3");
        assert_eq!(format!("{:?}", ProcId(4)), "pid4");
        assert_eq!(format!("{:?}", Port(80)), ":80");
        assert_eq!(format!("{:?}", ConnId(5)), "conn5");
    }
}
