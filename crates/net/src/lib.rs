//! # failmpi-net — simulated cluster network
//!
//! Models the Grid-Explorer-like substrate of the paper: a set of hosts with
//! GigE NICs connected by a switch, processes on hosts, and TCP-like streams
//! between processes (listen / connect / accept / send / close). The model is
//! a *pure state machine*: every mutating method records output events into an
//! internal buffer which the embedding world drains into its discrete-event
//! scheduler ([`Network::take_events`]).
//!
//! ## Fidelity choices
//!
//! * **Reliable, in-order streams** — per connection, like TCP.
//! * **Cut-through bandwidth model** — a message occupies the sender NIC
//!   for `bytes / bandwidth`, crosses the switch in `latency`, and occupies
//!   the receiver NIC for the same span, with the two occupations pipelined
//!   (the receiver drains while the sender still pushes). This captures
//!   both sender serialisation and receiver contention; the latter is what
//!   makes a checkpoint server shared by N clients a bottleneck, the effect
//!   behind the paper's Fig. 6 discussion of checkpoint-image sizes.
//! * **Immediate failure detection** — the paper emulates failures by
//!   killing the task (not the OS), so the TCP connection breaks as soon as
//!   the task dies and peers observe the closure one latency later. The
//!   keep-alive path (9 × 75 s probes) exists in [`NetConfig`] for
//!   completeness but is unused by the default kill model.
//! * **Suspension** — a SIGSTOPped process (FAIL's `stop` action) keeps its
//!   sockets alive; inbound events are buffered by the network and flushed on
//!   `resume`, exactly like kernel socket buffers under a stopped process.
//!
//! ```
//! use failmpi_net::{NetConfig, NetEvent, Network, Port};
//! use failmpi_sim::SimTime;
//!
//! let mut net: Network<&str> = Network::new(NetConfig::default());
//! let hosts = net.add_hosts(2);
//! let server = net.spawn_process(hosts[0]);
//! let client = net.spawn_process(hosts[1]);
//! net.listen(server, Port(80));
//! net.connect(SimTime::ZERO, client, hosts[0], Port(80), 42);
//! // The embedding world schedules these events and routes them back.
//! let events = net.take_events();
//! assert!(matches!(events[0].1, NetEvent::Accepted { .. }));
//! assert!(matches!(events[1].1, NetEvent::ConnEstablished { token: 42, .. }));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod network;
mod stats;
mod types;

pub use config::NetConfig;
pub use network::{Gated, Network};
pub use stats::NetStats;
pub use types::{CloseReason, ConnId, HostId, NetEvent, Port, ProcId};
