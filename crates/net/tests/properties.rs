//! Property-based tests for the simulated network.

use failmpi_net::{ConnId, Gated, NetConfig, NetEvent, Network, Port, ProcId};
use failmpi_sim::SimTime;
use proptest::prelude::*;

/// Builds a pair of connected processes on distinct hosts.
fn connected_pair() -> (Network<u32>, ProcId, ProcId, ConnId) {
    let mut net = Network::new(NetConfig::default());
    let hs = net.add_hosts(2);
    let a = net.spawn_process(hs[0]);
    let b = net.spawn_process(hs[1]);
    assert!(net.listen(b, Port(1)));
    net.connect(SimTime::ZERO, a, hs[1], Port(1), 0);
    let conn = net
        .take_events()
        .into_iter()
        .find_map(|(_, e)| match e {
            NetEvent::Accepted { conn, .. } => Some(conn),
            _ => None,
        })
        .expect("handshake");
    (net, a, b, conn)
}

proptest! {
    /// FIFO per stream: messages sent in order arrive in order with
    /// non-decreasing delivery times, whatever their sizes and send gaps.
    #[test]
    fn stream_is_fifo(msgs in proptest::collection::vec((0u64..10_000_000, 0u64..1_000_000), 1..60)) {
        let (mut net, a, _b, conn) = connected_pair();
        let mut now = SimTime::from_secs(1);
        for (i, &(bytes, gap_us)) in msgs.iter().enumerate() {
            now += failmpi_sim::SimDuration::from_micros(gap_us);
            prop_assert!(net.send(now, conn, a, i as u32, bytes));
        }
        let evs = net.take_events();
        prop_assert_eq!(evs.len(), msgs.len());
        let mut last = SimTime::ZERO;
        for (i, (at, ev)) in evs.into_iter().enumerate() {
            prop_assert!(at >= last, "delivery went backwards");
            last = at;
            match ev {
                NetEvent::Delivered { payload, .. } => prop_assert_eq!(payload as usize, i),
                other => prop_assert!(false, "unexpected {other:?}"),
            }
        }
    }

    /// Transfer time grows monotonically with message size.
    #[test]
    fn bigger_messages_take_longer(b1 in 1u64..50_000_000, b2 in 1u64..50_000_000) {
        let (small, large) = (b1.min(b2), b1.max(b2));
        let time_for = |bytes: u64| {
            let (mut net, a, _b, conn) = connected_pair();
            net.send(SimTime::from_secs(1), conn, a, 0, bytes);
            net.take_events()[0].0
        };
        prop_assert!(time_for(small) <= time_for(large));
    }

    /// Suspension never loses or reorders messages: whatever prefix of the
    /// stream is buffered, resume releases exactly that prefix in order.
    #[test]
    fn suspend_resume_preserves_stream(
        n_msgs in 1usize..30,
        suspend_after in 0usize..30,
    ) {
        let (mut net, a, b, conn) = connected_pair();
        for i in 0..n_msgs {
            net.send(SimTime::from_secs(1), conn, a, i as u32, 1_000);
        }
        let evs = net.take_events();
        let mut delivered = Vec::new();
        let mut suspended = false;
        for (k, (_, ev)) in evs.into_iter().enumerate() {
            if k == suspend_after {
                net.suspend(b);
                suspended = true;
            }
            match net.gate(ev) {
                Gated::Deliver(NetEvent::Delivered { payload, .. }) => delivered.push(payload),
                Gated::Deliver(_) => {}
                Gated::Buffered => prop_assert!(suspended),
                Gated::Dropped => prop_assert!(false, "nothing should drop"),
            }
        }
        for ev in net.resume(b) {
            if let NetEvent::Delivered { payload, .. } = ev {
                delivered.push(payload);
            }
        }
        prop_assert_eq!(delivered, (0..n_msgs as u32).collect::<Vec<_>>());
    }

    /// After killing any subset of processes, every remaining live peer of a
    /// killed process receives exactly one PeerDied closure per shared stream.
    #[test]
    fn kill_notifies_each_live_peer_once(kill_mask in 0u8..8) {
        let mut net: Network<u32> = Network::new(NetConfig::default());
        let hs = net.add_hosts(3);
        let procs: Vec<ProcId> = hs.iter().map(|&h| net.spawn_process(h)).collect();
        // Full mesh: each higher-id proc listens, lower connects.
        for (i, &p) in procs.iter().enumerate() {
            net.listen(p, Port(10 + i as u16));
        }
        for (i, &p) in procs.iter().enumerate() {
            for (j, &h) in hs.iter().enumerate().skip(i + 1) {
                net.connect(SimTime::ZERO, p, h, Port(10 + j as u16), 0);
            }
        }
        net.take_events();
        let killed: Vec<usize> = (0..3).filter(|i| kill_mask & (1 << i) != 0).collect();
        for &i in &killed {
            net.kill(SimTime::from_secs(1), procs[i]);
        }
        // Route every produced closure through the delivery gate, as the
        // embedding world would: closures addressed to processes that died
        // in the meantime are dropped there.
        let mut delivered = 0usize;
        for (_, ev) in net.take_events() {
            match net.gate(ev) {
                Gated::Deliver(NetEvent::Closed { proc, .. }) => {
                    prop_assert!(net.is_alive(proc));
                    delivered += 1;
                }
                Gated::Deliver(other) => prop_assert!(false, "unexpected {other:?}"),
                Gated::Dropped => {}
                Gated::Buffered => prop_assert!(false, "nobody is suspended"),
            }
        }
        // Each live process shares one stream with each killed one.
        let live: Vec<usize> = (0..3).filter(|i| !killed.contains(i)).collect();
        prop_assert_eq!(delivered, live.len() * killed.len());
    }
}
