//! Bug hunting with FAIL-MPI — the paper's Sec. 5.3 narrative, end to end.
//!
//! Stage 1 (Fig. 8): after a random first fault, crash the first daemon
//! that respawns in the recovery wave. *Some* runs freeze — the bug exists
//! but is timing-dependent.
//!
//! Stage 2 (Fig. 10): pin the second fault to the instant just before the
//! respawned daemon calls `localMPI_setCommand` — i.e. provably *after* it
//! registered with the dispatcher. *Every* run freezes: the bug is located.
//!
//! Stage 3: rerun stage 2 against the fixed dispatcher — every run
//! completes. The diagnosis (and the fix) is confirmed.
//!
//! ```sh
//! cargo run --release --example bughunt
//! ```

use failmpi::experiments::figures::{FIG10_SRC, FIG8_SRC};
use failmpi::prelude::*;

fn run_batch(
    label: &str,
    src: &str,
    machine_class: &str,
    mode: DispatcherMode,
    seeds: std::ops::Range<u64>,
) -> (usize, usize) {
    let total = seeds.clone().count();
    let mut frozen = 0;
    for seed in seeds {
        let mut cluster = VclConfig::small(4, SimDuration::from_secs(2));
        cluster.dispatcher = mode;
        cluster.ssh_stagger = SimDuration::from_millis(20);
        cluster.restart_overhead = SimDuration::from_millis(400);
        cluster.terminate_delay = SimDuration::from_millis(30);
        let spec = ExperimentSpec {
            cluster,
            workload: Workload::Bt(BtClass::S),
            injection: Some(
                InjectionSpec::new(src, "ADV1", machine_class)
                    .with_param("T", 2)
                    .with_param("N", 5),
            ),
            timeout: SimTime::from_secs(90),
            freeze_window: SimDuration::from_secs(9),
            seed,
            tie_break: TieBreak::Fifo,
            backend: BackendKind::Vcl,
        };
        if run_one(&spec).outcome.is_buggy() {
            frozen += 1;
        }
    }
    println!("{label}: {frozen}/{total} runs froze");
    (frozen, total)
}

fn main() {
    println!("hunting the MPICH-Vcl dispatcher bug with FAIL-MPI\n");

    let (s1, n1) = run_batch(
        "stage 1 — fault at first recovery onload (Fig. 8)  ",
        FIG8_SRC,
        "ADVnodes",
        DispatcherMode::Historical,
        0..12,
    );
    assert!(s1 > 0, "expected at least one frozen run at stage 1");
    assert!(s1 < n1, "stage 1 should only freeze sometimes");

    let (s2, n2) = run_batch(
        "stage 2 — fault before localMPI_setCommand (Fig. 10)",
        FIG10_SRC,
        "ADVG1",
        DispatcherMode::Historical,
        0..12,
    );
    assert_eq!(s2, n2, "the state-pinned scenario freezes every run");

    let (s3, _) = run_batch(
        "stage 3 — same stress against the fixed dispatcher  ",
        FIG10_SRC,
        "ADVG1",
        DispatcherMode::Fixed,
        0..12,
    );
    assert_eq!(s3, 0, "the fix must survive the stress");

    println!(
        "\nconclusion (paper Sec. 6): a second failure hitting a process that\n\
         already re-registered, while others are still being stopped, confuses\n\
         the dispatcher's wave bookkeeping and at least one node is never\n\
         relaunched. The fixed dispatcher relaunches the new victim and the\n\
         stress passes."
    );
}
