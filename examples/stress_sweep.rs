//! Dependability benchmarking: sweep the fault frequency over a
//! fault-tolerant MPI job and print the paper's Fig. 5 series (miniature
//! scale by default; pass `--paper` for the full 49-rank class-B sweep,
//! which takes a few seconds of wall time per point).
//!
//! ```sh
//! cargo run --release --example stress_sweep            # seconds-scale
//! cargo run --release --example stress_sweep -- --paper # paper-scale
//! ```

use failmpi::experiments::figures::fig5;

fn main() {
    let paper = std::env::args().any(|a| a == "--paper");
    let cfg = if paper {
        fig5::Config::paper()
    } else {
        fig5::Config::smoke()
    };
    println!(
        "sweeping fault intervals {:?}s over BT class {} at {} ranks ({} runs/point)\n",
        cfg.intervals_s, cfg.class.name, cfg.n_ranks, cfg.runs
    );
    let data = fig5::run(&cfg);
    print!("{}", fig5::render(&data));

    // The dependability-benchmark takeaway: how much fault frequency the
    // protocol absorbs before progress stops.
    let last_completing = data
        .points
        .iter()
        .filter(|p| p.summary.non_terminating < 0.5 && p.summary.buggy < 0.5)
        .filter_map(|p| p.interval_s)
        .min();
    match last_completing {
        Some(x) => println!(
            "\nMPICH-Vcl keeps making progress down to one fault every {x} s \
             at this scale; beyond that the rollback/recovery cycle starves."
        ),
        None => println!("\nno faulty configuration completed — lower the frequency"),
    }
}
