//! The paper's Sec. 6 planned feature, live: read the strained runtime's
//! internal wave counter from a FAIL scenario (`probe` + `onchange`) and
//! inject a fault at a precise offset after a checkpoint commits — then
//! sweep the offset and watch the rollback cost grow with it.
//!
//! ```sh
//! cargo run --release --example probe_delay
//! ```

use failmpi::experiments::figures::DELAY_SRC;
use failmpi::prelude::*;

fn main() {
    println!(
        "sweeping the fault offset after the first checkpoint commit\n\
         (scenario: crates/core/scenarios/delay_injection.fail)\n"
    );
    let mut cluster = VclConfig::small(4, SimDuration::from_secs(3));
    cluster.ssh_stagger = SimDuration::from_millis(20);
    cluster.restart_overhead = SimDuration::from_millis(400);
    cluster.terminate_delay = SimDuration::from_millis(30);
    let base = ExperimentSpec {
        cluster,
        workload: Workload::Bt(BtClass::S),
        injection: None,
        timeout: SimTime::from_secs(90),
        freeze_window: SimDuration::from_secs(9),
        seed: 3,
        tie_break: TieBreak::Fifo,
        backend: BackendKind::Vcl,
    };
    let clean = run_one(&base);
    let t0 = clean.outcome.time().expect("baseline completes").as_secs_f64();
    println!("no fault: {t0:6.2}s");

    // The miniature's wave period is 3 s; offsets beyond ~1 s land at the
    // end of the 5 s job, so sweep the meaningful range.
    for d in [0i64, 1] {
        let mut spec = base.clone();
        spec.injection = Some(
            InjectionSpec::new(DELAY_SRC, "ADV1", "ADVnodes")
                .with_param("D", d)
                .with_param("N", 5),
        );
        let rec = run_one(&spec);
        match rec.outcome.time() {
            Some(t) => println!(
                "D = {d}s:  {:6.2}s  (+{:.2}s lost to the fault)",
                t.as_secs_f64(),
                t.as_secs_f64() - t0
            ),
            None => println!("D = {d}s:  did not terminate ({:?})", rec.outcome),
        }
        assert_eq!(rec.faults_injected, 1, "exactly one pinned fault");
    }
    println!(
        "\nthe later the fault lands after the snapshot, the more work the\n\
         rollback throws away — the mechanism behind the paper's Fig. 5\n\
         resonance and Fig. 6 variance, measured directly."
    );
}
