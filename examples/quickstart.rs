//! Quickstart: write a FAIL scenario, strain a fault-tolerant MPI run with
//! it, and read the execution trace.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use failmpi::experiments::figures::FIG5_SRC;
use failmpi::prelude::*;

fn main() {
    // 1. The FAIL scenario: the paper's Fig. 5(a) — every X seconds, pick a
    //    machine uniformly at random and crash whatever MPI daemon runs
    //    there; retry immediately on a negative acknowledgement.
    let scenario = compile(FIG5_SRC).expect("the paper's scenario compiles");
    println!(
        "compiled scenario: {} daemon classes, messages [{}]",
        scenario.classes.len(),
        scenario.messages.join(", ")
    );

    // 2. The system under test: a 4-rank BT-pattern job on 6 machines under
    //    MPICH-Vcl (non-blocking Chandy–Lamport, 2 s checkpoint waves),
    //    with the historical (buggy) dispatcher, exactly like the paper.
    let mut cluster = VclConfig::small(4, SimDuration::from_secs(2));
    cluster.ssh_stagger = SimDuration::from_millis(20);
    cluster.restart_overhead = SimDuration::from_millis(400);
    cluster.terminate_delay = SimDuration::from_millis(30);
    let spec_clean = ExperimentSpec {
        cluster,
        workload: Workload::Bt(BtClass::S),
        injection: None,
        timeout: SimTime::from_secs(90),
        freeze_window: SimDuration::from_secs(9),
        seed: 42,
        tie_break: TieBreak::Fifo,
        backend: BackendKind::Vcl,
    };

    // 3. A fault-free baseline…
    let clean = run_one(&spec_clean);
    println!(
        "fault-free run: {:?} ({} checkpoint waves committed)",
        clean.outcome, clean.waves_committed
    );

    // 4. …then the same job under fire: one fault every 4 virtual seconds.
    let mut spec_faulty = spec_clean.clone();
    spec_faulty.injection = Some(
        InjectionSpec::new(FIG5_SRC, "ADV1", "ADVnodes")
            .with_param("X", 4)
            .with_param("N", 5), // machines are G1[0..=5]
    );
    let faulty = run_one(&spec_faulty);
    println!(
        "faulty run:     {:?} ({} faults injected, {} recoveries, {} waves)",
        faulty.outcome, faulty.faults_injected, faulty.recoveries, faulty.waves_committed
    );

    let (Some(t_clean), Some(t_faulty)) = (clean.outcome.time(), faulty.outcome.time()) else {
        println!("a run did not terminate — try another seed");
        return;
    };
    println!(
        "fault tolerance worked: the job survived {} crashes, paying {:.1}s \
         of rollback/recovery ({:.1}s -> {:.1}s)",
        faulty.faults_injected,
        t_faulty.as_secs_f64() - t_clean.as_secs_f64(),
        t_clean.as_secs_f64(),
        t_faulty.as_secs_f64(),
    );
}
