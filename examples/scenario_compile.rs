//! The FCI compiler pipeline as a library: parse a FAIL scenario, inspect
//! the compiled automata, run the static analyzer over them (what the
//! `failck` binary does), emit the generated Rust source (the paper's
//! "compiler generates C++ sources" step), and dry-run the automaton
//! against synthetic events without any cluster.
//!
//! ```sh
//! cargo run --release --example scenario_compile
//! ```

use failmpi::core::lang::codegen;
use failmpi::prelude::*;
use failmpi::sim::SimRng;

const SRC: &str = r#"
// A bespoke scenario: crash the job's most loaded machine twice, 10 s
// apart, then watch. (Here "most loaded" is simply machine 0.)
daemon Adversary {
  int shots = 2;
  node 1:
    timer t = 10;
    t && shots > 0 -> !crash(G[0]), shots = shots - 1, goto 2;
    t && shots <= 0 -> goto 3;
  node 2:
    ?ok -> goto 1;
    ?no -> goto 1;
  node 3:
}

daemon Machine {
  node 1:
    onload -> continue, goto 2;
    ?crash -> !no(P), goto 1;
  node 2:
    onexit -> goto 1;
    onerror -> goto 1;
    ?crash -> !ok(P), halt, goto 1;
}

instance P = Adversary;
group G[3] = Machine;
"#;

fn main() {
    // Parse + compile.
    let scenario = compile(SRC).expect("scenario compiles");
    println!("== compiled automata ==");
    for class in &scenario.classes {
        let transitions: usize = class.nodes.iter().map(|n| n.transitions.len()).sum();
        println!(
            "daemon {:<10} {} nodes, {} transitions, vars [{}], timers [{}]",
            class.name,
            class.nodes.len(),
            transitions,
            class.var_names.join(", "),
            class.timer_names.join(", ")
        );
    }

    // Static analysis: the compiled automata lint clean...
    let findings = failmpi::analyze::analyze_scenario(&scenario);
    println!("\n== static analysis ==");
    println!("failck on the scenario above: {} findings", findings.len());
    assert!(findings.is_empty(), "expected a clean scenario: {findings:?}");

    // ...while a defective one is flagged before it ever runs: `ping`
    // goes to a class that never receives it (FA008) and node 3 is
    // unreachable (FA001).
    let broken = "daemon A {\n  node 1:\n    onload -> !ping(G[0]), goto 1;\n  node 3:\n    onexit -> halt;\n}\ndaemon B {\n  node 1:\n    onload -> continue;\n}\ninstance P = A;\ngroup G[3] = B;\n";
    let report = failmpi::analyze::Report::new(
        "broken-example".to_string(),
        failmpi::analyze::check_source(broken),
    );
    print!("{}", report.render_human());

    // The code-generation step (what FCI shipped to every machine).
    let generated = codegen::generate(&scenario);
    println!(
        "\n== generated Rust (first 12 lines of {} total) ==",
        generated.lines().count()
    );
    for line in generated.lines().take(12) {
        println!("{line}");
    }

    // Deploy and dry-run against synthetic events — no cluster needed.
    let deployment = Deployment::from_suggested(&scenario).expect("deploys");
    let mut rt = FailRuntime::new(&scenario, deployment, &[]).expect("binds");
    let mut rng = SimRng::new(7);
    println!("\n== dry run ==");
    let actions = rt.start(&mut rng);
    println!("start: {actions:?}");

    let g0 = rt.deployment().instance_index("G[0]").unwrap();
    let p = rt.deployment().instance_index("P").unwrap();
    let actions = rt.feed(FailInput::OnLoad { instance: g0, proc: 4242 }, &mut rng);
    println!("onload(G[0], pid 4242): {actions:?}");

    // Fire the adversary's timer: it must order the crash of machine 0.
    let actions = rt.feed(
        FailInput::Timer {
            instance: p,
            timer: 0,
            gen: 1,
        },
        &mut rng,
    );
    println!("timer(P): {actions:?}");

    let crash = rt.scenario().message_id("crash").unwrap();
    let actions = rt.feed(FailInput::Msg { from: p, to: g0, msg: crash }, &mut rng);
    println!("crash -> G[0]: {actions:?}");
    assert!(actions.iter().any(|a| matches!(a, FailAction::Halt { proc: 4242 })));
    println!("\npid 4242 was halted — the scenario does what it says.");
}
