//! String-pattern strategies: `&str` regex-like patterns as in proptest.
//!
//! Only the tiny pattern subset this workspace uses is honoured:
//! `"\\PC*"` (any printable, non-control characters, any length). Every
//! other pattern falls back to the same printable-character sampler, which
//! keeps fuzz inputs flowing rather than failing the build on an
//! unsupported regex feature.

use crate::rng::TestRng;
use crate::strategy::Strategy;

const MAX_LEN: u64 = 48;

fn printable_char(rng: &mut TestRng) -> char {
    // Mostly ASCII (keeps lexer fuzzing pointed at interesting bytes),
    // with an occasional non-ASCII scalar to exercise UTF-8 paths.
    match rng.below(10) {
        0 => char::from_u32(0xA1 + rng.below(0x4_00) as u32).unwrap_or('§'),
        _ => (0x20 + rng.below(0x5F) as u8) as char,
    }
}

impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let n = rng.below(MAX_LEN) as usize;
        (0..n).map(|_| printable_char(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn patterns_yield_printable_strings() {
        let mut rng = TestRng::from_seed(17);
        for _ in 0..32 {
            let s = "\\PC*".generate(&mut rng);
            assert!(s.chars().all(|c| !c.is_control()), "{s:?}");
        }
    }
}
