//! The [`Strategy`] trait and the primitive strategies (ranges, tuples).

use std::ops::{Range, RangeInclusive};

use crate::rng::TestRng;

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no value tree and no shrinking: a strategy
/// is just a deterministic sampler over a [`TestRng`].
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Samples one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                if span == 0 {
                    // Full-width range: any value works.
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($n:ident),+))*) => {$(
        impl<$($n: Strategy),+> Strategy for ($($n,)+) {
            type Value = ($($n::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($n,)+) = self;
                ($($n.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_ranges_cover_bounds() {
        let mut rng = TestRng::from_seed(1);
        let s = 0u8..4;
        let mut seen = [false; 4];
        for _ in 0..256 {
            seen[s.generate(&mut rng) as usize] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn negative_ranges_work() {
        let mut rng = TestRng::from_seed(2);
        for _ in 0..128 {
            let v = (-1000i64..1000).generate(&mut rng);
            assert!((-1000..1000).contains(&v));
        }
    }

    #[test]
    fn inclusive_range_hits_top() {
        let mut rng = TestRng::from_seed(3);
        let mut saw_top = false;
        for _ in 0..256 {
            let v = (0u8..=1).generate(&mut rng);
            assert!(v <= 1);
            saw_top |= v == 1;
        }
        assert!(saw_top);
    }
}
