//! Collection strategies (`collection::vec`).

use std::ops::Range;

use crate::rng::TestRng;
use crate::strategy::Strategy;

/// Strategy producing a `Vec` whose length is drawn from `len` and whose
/// elements come from `element`.
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

/// A `Vec<S::Value>` strategy with length in `len`.
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    assert!(len.start < len.end || len.start == 0, "empty length range");
    VecStrategy { element, len }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = self.len.end.saturating_sub(self.len.start).max(1) as u64;
        let n = self.len.start + rng.below(span) as usize;
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_respect_range() {
        let mut rng = TestRng::from_seed(5);
        let s = vec(0u8..10, 2..6);
        for _ in 0..64 {
            let v = s.generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }
}
