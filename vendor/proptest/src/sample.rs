//! Sampling strategies over explicit value sets (`sample::select`).

use crate::rng::TestRng;
use crate::strategy::Strategy;

/// Strategy picking uniformly from a fixed list.
#[derive(Clone, Debug)]
pub struct Select<T> {
    options: Vec<T>,
}

/// A strategy yielding clones of elements of `options` (must be non-empty).
pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select over an empty list");
    Select { options }
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.options[rng.below(self.options.len() as u64) as usize].clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn select_covers_all_options() {
        let mut rng = TestRng::from_seed(11);
        let s = select(vec![1, 2, 3]);
        let mut seen = [false; 3];
        for _ in 0..64 {
            seen[s.generate(&mut rng) as usize - 1] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }
}
