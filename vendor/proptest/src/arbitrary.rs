//! `any::<T>()` and the [`Arbitrary`] trait behind typed parameters.

use crate::rng::TestRng;
use crate::strategy::Strategy;

/// Types that can be sampled without an explicit strategy.
pub trait Arbitrary: Sized {
    /// Samples one value from the type's full (or canonical) domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit_f64()
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        // Printable ASCII keeps generated text debuggable.
        (0x20 + rng.below(0x5F) as u32 as u8) as char
    }
}

/// The strategy returned by [`any`].
#[derive(Clone, Copy, Debug)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// Strategy generating an arbitrary `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_samples_full_width() {
        let mut rng = TestRng::from_seed(9);
        let mut any_high = false;
        for _ in 0..64 {
            any_high |= any::<u64>().generate(&mut rng) > u32::MAX as u64;
        }
        assert!(any_high);
    }
}
