//! Runner configuration ([`Config`]) and [`TestCaseError`].

use std::fmt;

/// A failed (or rejected) test case. Property bodies may `return`/`?` a
/// `Result<_, TestCaseError>`; the runner panics on `Err` (no shrinking).
#[derive(Clone, Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }

    /// Upstream proptest rejects (re-draws) such cases; the stand-in has
    /// no rejection machinery, so a reject fails loudly instead of
    /// silently passing.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError(format!("rejected: {}", msg.into()))
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Cases per property when nothing overrides it. Smaller than upstream
/// proptest's 256: several properties here run whole cluster simulations
/// per case, and the deterministic sampler already covers each test's
/// domain evenly.
pub const DEFAULT_CASES: u32 = 64;

/// Per-block runner configuration (`#![proptest_config(..)]`).
#[derive(Clone, Debug)]
pub struct Config {
    /// Number of sampled cases per property.
    pub cases: u32,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            cases: DEFAULT_CASES,
        }
    }
}

impl Config {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }

    /// The case count after applying the `PROPTEST_CASES` env override.
    pub fn effective_cases(&self) -> u32 {
        match std::env::var("PROPTEST_CASES") {
            Ok(v) => v.parse().unwrap_or(self.cases),
            Err(_) => self.cases,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn with_cases_sets_count() {
        assert_eq!(Config::with_cases(16).cases, 16);
        assert_eq!(Config::default().cases, DEFAULT_CASES);
    }
}
