//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate, providing the subset of its API this workspace uses.
//!
//! The container building this repository has no crates.io access, so the
//! real proptest cannot be compiled. This crate keeps the same surface —
//! the `proptest!` macro, `prop_assert!`/`prop_assert_eq!`, `any::<T>()`,
//! integer/float range strategies, `collection::vec`, `sample::select`,
//! string-pattern strategies and `test_runner::Config` — but samples cases
//! from a seeded deterministic RNG instead of a persisted random stream,
//! and performs no shrinking: a failing case panics with the ordinary
//! assert message. Case count defaults to [`test_runner::DEFAULT_CASES`]
//! and can be overridden per-block with `#![proptest_config(..)]` or
//! globally with the `PROPTEST_CASES` environment variable.
//!
//! Determinism is a feature here: every test function derives its RNG seed
//! from its own name, so failures reproduce exactly without regression
//! files (`*.proptest-regressions` are not read).

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod rng;
pub mod sample;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// The common imports: macros, [`strategy::Strategy`], and [`any`].
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

pub use arbitrary::any;

/// Asserts a condition inside a property body (panics on failure — this
/// stand-in has no shrink/reject machinery, so it is `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// The `proptest! { ... }` block: wraps each contained `fn` in a loop that
/// samples its parameters from strategies and runs the body per case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::Config::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr); ) => {};
    (($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($params:tt)*) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::Config = $cfg;
            for __case in 0..__config.effective_cases() {
                let mut __rng =
                    $crate::rng::TestRng::for_case(stringify!($name), __case);
                // The closure lets property bodies use `?` with
                // `TestCaseError`, as upstream proptest allows.
                #[allow(clippy::redundant_closure_call)]
                let __outcome: ::std::result::Result<
                    (),
                    $crate::test_runner::TestCaseError,
                > = (|| {
                    $crate::__proptest_bind!(__rng; $($params)*);
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                })();
                if let Err(e) = __outcome {
                    panic!("property {} case {}: {}", stringify!($name), __case, e);
                }
            }
        }
        $crate::__proptest_fns! { ($cfg); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident; ) => {};
    ($rng:ident; $name:ident in $strat:expr) => {
        let $name = $crate::strategy::Strategy::generate(&($strat), &mut $rng);
    };
    ($rng:ident; $name:ident in $strat:expr, $($rest:tt)*) => {
        let $name = $crate::strategy::Strategy::generate(&($strat), &mut $rng);
        $crate::__proptest_bind!($rng; $($rest)*);
    };
    ($rng:ident; $name:ident : $ty:ty) => {
        let $name: $ty = $crate::arbitrary::Arbitrary::arbitrary(&mut $rng);
    };
    ($rng:ident; $name:ident : $ty:ty, $($rest:tt)*) => {
        let $name: $ty = $crate::arbitrary::Arbitrary::arbitrary(&mut $rng);
        $crate::__proptest_bind!($rng; $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, y in -5i64..5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-5..5).contains(&y));
        }

        #[test]
        fn tuples_and_vecs(v in crate::collection::vec((any::<u8>(), 0u64..9), 0..40)) {
            prop_assert!(v.len() < 40);
            for (_, b) in &v {
                prop_assert!(*b < 9);
            }
        }

        #[test]
        fn typed_params_and_select(seed: u64, w in crate::sample::select(vec!["a", "b"])) {
            let _ = seed;
            prop_assert!(w == "a" || w == "b");
        }
    }

    proptest! {
        #![proptest_config(crate::test_runner::Config::with_cases(7))]
        #[test]
        fn config_is_accepted(f in 0.0f64..1.0) {
            prop_assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn same_name_same_stream() {
        let mut a = crate::rng::TestRng::for_case("x", 3);
        let mut b = crate::rng::TestRng::for_case("x", 3);
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
