//! The deterministic case RNG (splitmix64 core).

/// A small, fast, deterministic RNG. Each `(test name, case index)` pair
/// gets an independent stream, so failures reproduce without state files.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

/// One splitmix64 output step.
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TestRng {
    /// An RNG seeded from raw state.
    pub fn from_seed(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// The RNG for one case of one named test.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng::from_seed(h ^ ((case as u64) << 32 | 0x5EED))
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        splitmix64(&mut self.state)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Multiply-shift reduction; bias is negligible for test sampling.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn below_respects_bound() {
        let mut r = TestRng::from_seed(42);
        for bound in [1u64, 2, 7, 1000] {
            for _ in 0..64 {
                assert!(r.below(bound) < bound);
            }
        }
    }

    #[test]
    fn distinct_cases_distinct_streams() {
        let a = TestRng::for_case("t", 0).next_u64();
        let b = TestRng::for_case("t", 1).next_u64();
        assert_ne!(a, b);
    }
}
