//! `#[derive(Serialize)]` for the offline serde stand-in.
//!
//! Supports the shape the workspace uses: non-generic structs with named
//! fields (field attributes are ignored). Anything else — enums, tuple
//! structs, generics — fails the build with a clear message rather than
//! serializing wrongly.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` (JSON object with one member per field).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip attributes (`#[...]`, including doc comments) and visibility.
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => break,
        }
    }

    match tokens.get(i) {
        Some(TokenTree::Ident(id)) if id.to_string() == "struct" => i += 1,
        other => panic!("Serialize stand-in supports only structs, got {other:?}"),
    }

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected struct name, got {other:?}"),
    };
    i += 1;

    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        other => panic!(
            "Serialize stand-in supports only named-field structs \
             (no generics/tuple structs); `{name}` has {other:?}"
        ),
    };

    let fields = field_names(body);
    let mut writes = String::new();
    for (k, f) in fields.iter().enumerate() {
        if k > 0 {
            writes.push_str("out.push(',');");
        }
        writes.push_str(&format!(
            "::serde::write_json_str(out, \"{f}\");\
             out.push(':');\
             ::serde::Serialize::serialize_json(&self.{f}, out);"
        ));
    }

    format!(
        "impl ::serde::Serialize for {name} {{\
             fn serialize_json(&self, out: &mut ::std::string::String) {{\
                 out.push('{{');\
                 {writes}\
                 out.push('}}');\
             }}\
         }}"
    )
    .parse()
    .expect("generated impl parses")
}

/// Extracts field identifiers from a named-field struct body.
fn field_names(body: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut depth = 0usize; // angle-bracket nesting inside types
    let mut at_field_start = true;
    let mut tokens = body.into_iter().peekable();
    while let Some(t) = tokens.next() {
        match &t {
            TokenTree::Punct(p) if p.as_char() == '#' && at_field_start => {
                // Field attribute: skip the following [...] group.
                tokens.next();
            }
            TokenTree::Ident(id) if at_field_start && id.to_string() == "pub" => {
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next();
                    }
                }
            }
            TokenTree::Ident(id) if at_field_start => {
                fields.push(id.to_string());
                at_field_start = false;
            }
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth = depth.saturating_sub(1),
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                at_field_start = true;
            }
            _ => {}
        }
    }
    fields
}
