//! Offline stand-in for the [`serde`](https://serde.rs) crate.
//!
//! The build container has no crates.io access, so this crate provides the
//! one capability the workspace actually uses: `#[derive(Serialize)]` on
//! plain named-field structs, consumed by `serde_json::to_string_pretty`.
//! Instead of serde's generic data model, [`Serialize`] writes compact
//! JSON directly; the `serde_json` stand-in pretty-prints it. The trait
//! covers the primitive/container types the experiment records use
//! (integers, floats, bool, strings, `Option`, `Vec`, slices, maps,
//! tuples, references).

#![forbid(unsafe_code)]

pub use serde_derive::Serialize;

/// JSON-serializable values.
///
/// `serialize_json` must append one complete JSON value to `out`.
pub trait Serialize {
    /// Appends `self` as compact JSON.
    fn serialize_json(&self, out: &mut String);
}

/// Appends `s` as a JSON string literal (with escaping).
pub fn write_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

macro_rules! int_serialize {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_json(&self, out: &mut String) {
                out.push_str(&self.to_string());
            }
        }
    )*};
}

int_serialize!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

macro_rules! float_serialize {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_json(&self, out: &mut String) {
                if self.is_finite() {
                    let s = self.to_string();
                    out.push_str(&s);
                    // `Display` drops ".0" on whole floats; keep a float shape
                    // so consumers parsing the JSON see a consistent type.
                    if !s.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    // serde_json maps non-finite floats to null.
                    out.push_str("null");
                }
            }
        }
    )*};
}

float_serialize!(f32, f64);

impl Serialize for bool {
    fn serialize_json(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}

impl Serialize for str {
    fn serialize_json(&self, out: &mut String) {
        write_json_str(out, self);
    }
}

impl Serialize for String {
    fn serialize_json(&self, out: &mut String) {
        write_json_str(out, self);
    }
}

impl Serialize for char {
    fn serialize_json(&self, out: &mut String) {
        write_json_str(out, &self.to_string());
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_json(&self, out: &mut String) {
        (**self).serialize_json(out);
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize_json(&self, out: &mut String) {
        (**self).serialize_json(out);
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_json(&self, out: &mut String) {
        match self {
            Some(v) => v.serialize_json(out),
            None => out.push_str("null"),
        }
    }
}

fn write_seq<'a, T: Serialize + 'a>(
    out: &mut String,
    items: impl Iterator<Item = &'a T>,
) {
    out.push('[');
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        item.serialize_json(out);
    }
    out.push(']');
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_json(&self, out: &mut String) {
        write_seq(out, self.iter());
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_json(&self, out: &mut String) {
        write_seq(out, self.iter());
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_json(&self, out: &mut String) {
        write_seq(out, self.iter());
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize_json(&self, out: &mut String) {
        out.push('[');
        self.0.serialize_json(out);
        out.push(',');
        self.1.serialize_json(out);
        out.push(']');
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn serialize_json(&self, out: &mut String) {
        out.push('[');
        self.0.serialize_json(out);
        out.push(',');
        self.1.serialize_json(out);
        out.push(',');
        self.2.serialize_json(out);
        out.push(']');
    }
}

impl<A: Serialize, B: Serialize, C: Serialize, D: Serialize> Serialize for (A, B, C, D) {
    fn serialize_json(&self, out: &mut String) {
        out.push('[');
        self.0.serialize_json(out);
        out.push(',');
        self.1.serialize_json(out);
        out.push(',');
        self.2.serialize_json(out);
        out.push(',');
        self.3.serialize_json(out);
        out.push(']');
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn serialize_json(&self, out: &mut String) {
        out.push('{');
        for (i, (k, v)) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_json_str(out, k);
            out.push(':');
            v.serialize_json(out);
        }
        out.push('}');
    }
}

impl<V: Serialize, S: std::hash::BuildHasher> Serialize
    for std::collections::HashMap<String, V, S>
{
    fn serialize_json(&self, out: &mut String) {
        // Deterministic output: emit in sorted key order.
        let mut keys: Vec<&String> = self.keys().collect();
        keys.sort();
        out.push('{');
        for (i, k) in keys.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_json_str(out, k);
            out.push(':');
            self[*k].serialize_json(out);
        }
        out.push('}');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn json<T: Serialize>(v: T) -> String {
        let mut s = String::new();
        v.serialize_json(&mut s);
        s
    }

    #[test]
    fn primitives() {
        assert_eq!(json(3u32), "3");
        assert_eq!(json(-7i64), "-7");
        assert_eq!(json(true), "true");
        assert_eq!(json(1.5f64), "1.5");
        assert_eq!(json(2.0f64), "2.0");
        assert_eq!(json(f64::NAN), "null");
        assert_eq!(json("a\"b"), "\"a\\\"b\"");
    }

    #[test]
    fn containers() {
        assert_eq!(json(vec![1u8, 2, 3]), "[1,2,3]");
        assert_eq!(json(Option::<u8>::None), "null");
        assert_eq!(json(Some(4u8)), "4");
        assert_eq!(json((1u8, "x")), "[1,\"x\"]");
    }
}
