//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! Provides the API surface the `failmpi-bench` benches use —
//! [`Criterion::bench_function`], [`Bencher::iter`], [`black_box`] — with a
//! plain wall-clock sampler: each benchmark runs `sample_size` samples
//! after a warm-up period and reports mean/min/max per iteration. No
//! statistical analysis, no HTML reports, no comparison to saved
//! baselines.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Opaque-value helper preventing the optimizer from deleting benchmarked
/// work.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(2),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the warm-up duration before sampling starts.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the target measurement budget (a cap on total sampling time).
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::new(),
        };
        // Warm-up: run untimed until the warm-up budget elapses.
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warm_up_time {
            routine(&mut b);
            b.samples.clear();
        }
        // Timed samples, bounded by sample count and measurement budget.
        let measure_start = Instant::now();
        while b.samples.len() < self.sample_size
            && (b.samples.is_empty() || measure_start.elapsed() < self.measurement_time)
        {
            routine(&mut b);
        }
        let n = b.samples.len().max(1) as u32;
        let mean = b.samples.iter().sum::<Duration>() / n;
        let min = b.samples.iter().min().copied().unwrap_or_default();
        let max = b.samples.iter().max().copied().unwrap_or_default();
        println!(
            "{name:<44} samples {n:>3}  mean {mean:>12?}  min {min:>12?}  max {max:>12?}"
        );
        self
    }

    /// Prints the run footer (the stand-in reports per-bench lines only).
    pub fn final_summary(&self) {
        println!("(criterion stand-in: wall-clock sampling, no statistical analysis)");
    }
}

/// Per-benchmark sampler handed to the routine.
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times one sample of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        black_box(routine());
        self.samples.push(start.elapsed());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(50));
        let mut runs = 0u32;
        c.bench_function("stub/smoke", |b| {
            b.iter(|| {
                runs += 1;
                black_box(runs)
            })
        });
        assert!(runs >= 3);
    }
}
