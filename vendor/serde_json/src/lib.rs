//! Offline stand-in for `serde_json`: serialization to compact or pretty
//! JSON strings on top of the offline `serde` stand-in, plus parsing into
//! a dynamic [`Value`] (the only deserialization shape this workspace
//! uses — `from_str` is not generic over `Deserialize`).

#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::fmt;
use std::ops::Index;

/// Serialization/parse error.
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// `Result` alias matching serde_json's.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes `value` as a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    value.serialize_json(&mut out);
    Ok(out)
}

/// Serializes `value` as an indented JSON string (2-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    Ok(prettify(&to_string(value)?))
}

/// Re-indents compact JSON (as produced by the serde stand-in, which emits
/// no whitespace outside string literals).
fn prettify(compact: &str) -> String {
    let mut out = String::with_capacity(compact.len() * 2);
    let mut indent = 0usize;
    let mut in_str = false;
    let mut escaped = false;
    let mut chars = compact.chars().peekable();

    fn newline(out: &mut String, indent: usize) {
        out.push('\n');
        for _ in 0..indent {
            out.push_str("  ");
        }
    }

    while let Some(c) = chars.next() {
        if in_str {
            out.push(c);
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_str = false;
            }
            continue;
        }
        match c {
            '"' => {
                in_str = true;
                out.push(c);
            }
            '{' | '[' => {
                out.push(c);
                // Keep empty containers inline.
                let closer = if c == '{' { '}' } else { ']' };
                if chars.peek() == Some(&closer) {
                    out.push(closer);
                    chars.next();
                } else {
                    indent += 1;
                    newline(&mut out, indent);
                }
            }
            '}' | ']' => {
                indent = indent.saturating_sub(1);
                newline(&mut out, indent);
                out.push(c);
            }
            ',' => {
                out.push(c);
                newline(&mut out, indent);
            }
            ':' => {
                out.push_str(": ");
            }
            c => out.push(c),
        }
    }
    out
}

/// A parsed JSON document.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (held as `f64`, like serde_json's lossy accessors).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object (key order not preserved).
    Object(BTreeMap<String, Value>),
}

static NULL: Value = Value::Null;

impl Value {
    /// The elements, when this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The members, when this is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// The string content, when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The number, when this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as a non-negative integer, when exactly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The number as an integer, when exactly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) if n.fract() == 0.0 => Some(*n as i64),
            _ => None,
        }
    }

    /// The boolean, when this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Member lookup (`None` when absent or not an object).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|o| o.get(key))
    }
}

impl Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl Index<usize> for Value {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        self.as_array().and_then(|a| a.get(i)).unwrap_or(&NULL)
    }
}

/// Parses a JSON document into a [`Value`].
pub fn from_str(s: &str) -> Result<Value> {
    let bytes = s.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error(format!("trailing input at byte {pos}")));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<()> {
    if b.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(Error(format!("expected `{}` at byte {pos}", c as char)))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err(Error("unexpected end of input".into())),
        Some(b'n') => parse_lit(b, pos, "null", Value::Null),
        Some(b't') => parse_lit(b, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Value::Bool(false)),
        Some(b'"') => Ok(Value::String(parse_string(b, pos)?)),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return Err(Error(format!("expected `,` or `]` at byte {pos}"))),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut members = BTreeMap::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Object(members));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, b':')?;
                members.insert(key, parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Object(members));
                    }
                    _ => return Err(Error(format!("expected `,` or `}}` at byte {pos}"))),
                }
            }
        }
        Some(_) => {
            let start = *pos;
            while *pos < b.len()
                && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            let text = std::str::from_utf8(&b[start..*pos])
                .map_err(|_| Error("invalid utf8 in number".into()))?;
            text.parse()
                .map(Value::Number)
                .map_err(|_| Error(format!("invalid number `{text}` at byte {start}")))
        }
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Value) -> Result<Value> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(Error(format!("expected `{lit}` at byte {pos}")))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err(Error("unterminated string".into())),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| Error("truncated \\u escape".into()))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| Error(format!("bad \\u escape `{hex}`")))?;
                        // Surrogate pairs are not produced by the serializer
                        // half of this stand-in; map them to U+FFFD.
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        *pos += 4;
                    }
                    _ => return Err(Error(format!("bad escape at byte {pos}"))),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte sequences arrive as
                // raw bytes inside the quoted region).
                let rest = std::str::from_utf8(&b[*pos..])
                    .map_err(|_| Error("invalid utf8 in string".into()))?;
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrips_serializer_output() {
        let v = from_str("{\"a\":[1,2.5,null,true],\"b\":\"x\\\"y\"}").unwrap();
        assert_eq!(v["a"][1].as_f64(), Some(2.5));
        assert_eq!(v["a"][2], Value::Null);
        assert_eq!(v["a"][3].as_bool(), Some(true));
        assert_eq!(v["b"].as_str(), Some("x\"y"));
        assert_eq!(v["a"].as_array().unwrap().len(), 4);
        assert_eq!(v["missing"], Value::Null);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(from_str("{").is_err());
        assert!(from_str("[1,]").is_err());
        assert!(from_str("12 34").is_err());
        assert!(from_str("nul").is_err());
    }

    #[test]
    fn negative_and_exponent_numbers() {
        assert_eq!(from_str("-3").unwrap().as_i64(), Some(-3));
        assert_eq!(from_str("1e2").unwrap().as_f64(), Some(100.0));
        assert_eq!(from_str("7").unwrap().as_u64(), Some(7));
    }

    #[test]
    fn compact_and_pretty() {
        let v = vec![1u32, 2];
        assert_eq!(to_string(&v).unwrap(), "[1,2]");
        assert_eq!(to_string_pretty(&v).unwrap(), "[\n  1,\n  2\n]");
    }

    #[test]
    fn empty_containers_stay_inline() {
        let v: Vec<u32> = Vec::new();
        assert_eq!(to_string_pretty(&v).unwrap(), "[]");
    }

    #[test]
    fn strings_with_structure_chars_survive() {
        let s = "a{,}:[]b";
        assert_eq!(to_string_pretty(&s).unwrap(), "\"a{,}:[]b\"");
    }
}
