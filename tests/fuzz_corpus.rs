//! Corpus-replay regression suite: every checked-in fuzz fixture is
//! re-evaluated against its pinned verdicts on every test run.
//!
//! The seed corpus under `tests/fixtures/fuzz/` pins, per scenario, the
//! static model-check verdict under both dispatcher modes, the dynamic
//! outcome class per probe seed, and the per-backend (ULFM, replication)
//! static and dynamic views. Any drift (an FZ004 diagnostic) means
//! either a behavioural regression in the simulator/model checker or an
//! intentional change that requires regenerating the corpus with
//! `failmpi-fuzz --seed 1 --budget 30 --corpus tests/fixtures/fuzz`.

use std::collections::BTreeSet;
use std::path::PathBuf;

use failmpi::fuzz::{load_corpus, replay_entry, FuzzConfig};

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/fuzz")
}

#[test]
fn corpus_is_wide_enough_and_well_formed() {
    let entries = load_corpus(&corpus_dir()).expect("seed corpus loads");
    assert!(
        entries.len() >= 10,
        "seed corpus shrank to {} entries; the regression suite needs \
         at least 10 distinct behaviours",
        entries.len()
    );

    let mut names = BTreeSet::new();
    for (entry, source) in &entries {
        assert!(names.insert(entry.name.clone()), "duplicate entry {}", entry.name);
        assert!(!source.is_empty(), "{}: empty source", entry.name);
        assert!(
            failmpi::fuzz::passes_filter(source),
            "{}: checked-in scenario no longer passes the validity filter",
            entry.name
        );
        assert!(
            !entry.dynamic_historical.is_empty() && !entry.dynamic_fixed.is_empty(),
            "{}: entry pins no dynamic probes",
            entry.name
        );
    }

    // The corpus must cover both sides of the paper's story: scenarios the
    // historical dispatcher freezes on, and scenarios everything survives.
    let frozen = entries
        .iter()
        .filter(|(e, _)| e.dynamic_historical.iter().any(|(_, c)| c == "buggy"))
        .count();
    assert!(frozen >= 1, "no pinned historical freeze in the corpus");
    assert!(
        frozen < entries.len(),
        "every corpus entry freezes; no surviving behaviour is pinned"
    );
}

#[test]
fn corpus_replay_sees_no_drift() {
    let entries = load_corpus(&corpus_dir()).expect("seed corpus loads");
    let cfg = FuzzConfig::default();
    let mut drift = Vec::new();
    for (entry, source) in &entries {
        for d in replay_entry(entry, source, &cfg) {
            drift.push(format!("{}: {}", entry.name, d.message));
        }
    }
    assert!(
        drift.is_empty(),
        "corpus replay drift ({} finding(s)):\n{}",
        drift.len(),
        drift.join("\n")
    );
}

#[test]
fn corpus_pins_the_backend_axis() {
    // Every entry carries the per-backend pins (the manifest was
    // regenerated when the backend axis landed), and the corpus preserves
    // the cross-backend differential: at least one entry must freeze
    // under the historical Vcl dispatcher while ULFM's abstract model
    // proves the same scenario survivable — the FZ008 divergence the
    // fuzzer's oracle hunts, pinned as data.
    let entries = load_corpus(&corpus_dir()).expect("seed corpus loads");
    for (entry, _) in &entries {
        assert!(
            !entry.static_ulfm.is_empty() && !entry.static_replica.is_empty(),
            "{}: entry pins no backend verdicts",
            entry.name
        );
        assert!(
            !entry.dynamic_ulfm.is_empty() && !entry.dynamic_replica.is_empty(),
            "{}: entry pins no backend probes",
            entry.name
        );
    }
    let divergent = entries
        .iter()
        .filter(|(e, _)| {
            e.dynamic_historical.iter().any(|(_, c)| c == "buggy") && e.static_ulfm == "survives"
        })
        .count();
    assert!(
        divergent >= 1,
        "no pinned Vcl-freezes/ULFM-survives divergence in the corpus"
    );
}

#[test]
fn minimized_fig10_reproducer_is_pinned() {
    // The delta-debugged Fig. 10-family reproducer rides in the corpus:
    // it must stay frozen under the historical dispatcher and never under
    // the fixed one — the paper's headline asymmetry in miniature.
    let entries = load_corpus(&corpus_dir()).expect("seed corpus loads");
    let (entry, _) = entries
        .iter()
        .find(|(e, _)| e.name == "min-fig10-stale-entry")
        .expect("minimized reproducer present in the corpus");
    assert_eq!(entry.static_historical, "freezes");
    assert!(entry.dynamic_historical.iter().any(|(_, c)| c == "buggy"));
    assert!(entry.dynamic_fixed.iter().all(|(_, c)| c != "buggy"));
}
