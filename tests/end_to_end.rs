//! Cross-crate integration tests through the facade: the full pipeline
//! from FAIL source to classified experiment outcomes.

use failmpi::experiments::figures::{FIG10_SRC, FIG5_SRC, FIG8_SRC};
use failmpi::prelude::*;

fn mini_cluster(n: u32) -> VclConfig {
    let mut cluster = VclConfig::small(n, SimDuration::from_secs(2));
    cluster.ssh_stagger = SimDuration::from_millis(20);
    cluster.restart_overhead = SimDuration::from_millis(400);
    cluster.terminate_delay = SimDuration::from_millis(30);
    cluster
}

fn mini_spec(n: u32, seed: u64) -> ExperimentSpec {
    ExperimentSpec {
        cluster: mini_cluster(n),
        workload: Workload::Bt(BtClass::S),
        injection: None,
        timeout: SimTime::from_secs(90),
        freeze_window: SimDuration::from_secs(9),
        seed,
        tie_break: failmpi::prelude::TieBreak::Fifo,
        backend: failmpi::prelude::BackendKind::Vcl,
    }
}

#[test]
fn fault_free_run_completes_through_facade() {
    let rec = run_one(&mini_spec(4, 1));
    assert!(matches!(rec.outcome, Outcome::Completed { .. }));
    assert_eq!(rec.max_progress, BtClass::S.iterations);
    assert_eq!(rec.faults_injected, 0);
    assert!(rec.waves_committed >= 1);
}

#[test]
fn faults_slow_the_run_but_it_survives() {
    let clean = run_one(&mini_spec(4, 2));
    let mut spec = mini_spec(4, 2);
    spec.injection = Some(
        InjectionSpec::new(FIG5_SRC, "ADV1", "ADVnodes")
            .with_param("X", 4)
            .with_param("N", 5),
    );
    let faulty = run_one(&spec);
    assert!(faulty.faults_injected >= 1, "no fault was injected");
    assert!(faulty.recoveries >= 1, "no recovery happened");
    let (t_clean, t_faulty) = (
        clean.outcome.time().expect("clean completes"),
        faulty.outcome.time().expect("faulty completes"),
    );
    assert!(t_faulty > t_clean, "recovery must cost time");
}

#[test]
fn too_frequent_faults_starve_progress() {
    let mut spec = mini_spec(4, 3);
    spec.injection = Some(
        InjectionSpec::new(FIG5_SRC, "ADV1", "ADVnodes")
            .with_param("X", 1) // one fault per second: hopeless
            .with_param("N", 5),
    );
    let rec = run_one(&spec);
    assert!(
        rec.outcome.is_non_terminating(),
        "expected starvation, got {:?}",
        rec.outcome
    );
    assert!(rec.faults_injected > 10);
    assert!(!rec.outcome.is_buggy(), "starvation is not a bug");
}

#[test]
fn fig10_scenario_freezes_historical_dispatcher_every_time() {
    for seed in 0..4 {
        let mut spec = mini_spec(4, seed);
        spec.injection = Some(
            InjectionSpec::new(FIG10_SRC, "ADV1", "ADVG1")
                .with_param("T", 2)
                .with_param("N", 5),
        );
        let rec = run_one(&spec);
        assert!(
            rec.outcome.is_buggy(),
            "seed {seed}: expected freeze, got {:?}",
            rec.outcome
        );
        assert_eq!(rec.faults_injected, 2, "exactly two faults in the scenario");
    }
}

#[test]
fn fig10_scenario_passes_with_fixed_dispatcher() {
    for seed in 0..4 {
        let mut spec = mini_spec(4, seed);
        spec.cluster.dispatcher = DispatcherMode::Fixed;
        spec.injection = Some(
            InjectionSpec::new(FIG10_SRC, "ADV1", "ADVG1")
                .with_param("T", 2)
                .with_param("N", 5),
        );
        let rec = run_one(&spec);
        assert!(
            matches!(rec.outcome, Outcome::Completed { .. }),
            "seed {seed}: fix failed, got {:?}",
            rec.outcome
        );
    }
}

#[test]
fn fig8_scenario_is_timing_dependent() {
    let mut buggy = 0;
    let mut completed = 0;
    for seed in 0..16 {
        let mut spec = mini_spec(4, seed);
        spec.injection = Some(
            InjectionSpec::new(FIG8_SRC, "ADV1", "ADVnodes")
                .with_param("T", 2)
                .with_param("N", 5),
        );
        match run_one(&spec).outcome {
            Outcome::Buggy => buggy += 1,
            Outcome::Completed { .. } => completed += 1,
            Outcome::NonTerminating => {}
        }
    }
    // The paper's observation: the random synchronized fault sometimes
    // triggers the bug, but a large majority of runs survive.
    assert!(buggy >= 1, "the bug never triggered in 16 runs");
    assert!(completed > buggy, "most runs must survive");
}

#[test]
fn experiments_are_deterministic_per_seed() {
    let mut spec = mini_spec(4, 9);
    spec.injection = Some(
        InjectionSpec::new(FIG5_SRC, "ADV1", "ADVnodes")
            .with_param("X", 4)
            .with_param("N", 5),
    );
    let a = run_one(&spec);
    let b = run_one(&spec);
    assert_eq!(a.outcome, b.outcome);
    assert_eq!(a.end, b.end);
    assert_eq!(a.faults_injected, b.faults_injected);
    assert_eq!(a.recoveries, b.recoveries);
}

#[test]
fn blocking_checkpoints_cost_more_than_non_blocking() {
    let non_blocking = run_one(&mini_spec(4, 11));
    let mut spec = mini_spec(4, 11);
    spec.cluster.checkpoint_style = CheckpointStyle::Blocking;
    let blocking = run_one(&spec);
    let (t_nb, t_b) = (
        non_blocking.outcome.time().expect("completes"),
        blocking.outcome.time().expect("completes"),
    );
    assert!(
        t_b > t_nb,
        "blocking waves must freeze the app: {t_b} <= {t_nb}"
    );
}

#[test]
fn custom_scenario_through_the_whole_stack() {
    // A bespoke one-shot scenario written inline: crash machine 2 after
    // three seconds, then leave the job alone.
    let src = r#"
        daemon OneShot {
          node 1:
            timer t = 3;
            t -> !crash(G1[2]), goto 2;
          node 2:
            ?ok -> goto 3;
            ?no -> goto 3;
          node 3:
        }
        daemon Ctl {
          node 1:
            onload -> continue, goto 2;
            ?crash -> !no(P1), goto 1;
          node 2:
            onexit -> goto 1;
            onerror -> goto 1;
            onload -> continue, goto 2;
            ?crash -> !ok(P1), halt, goto 1;
        }
    "#;
    let mut spec = mini_spec(4, 13);
    spec.injection = Some(InjectionSpec::new(src, "OneShot", "Ctl"));
    let rec = run_one(&spec);
    assert!(matches!(rec.outcome, Outcome::Completed { .. }));
    assert_eq!(rec.faults_injected, 1);
    assert_eq!(rec.recoveries, 1);
}
