//! FAIL-MPI is application-agnostic: the same scenarios strain arbitrary
//! MPI communication patterns, not just BT. These tests run the auxiliary
//! workloads (token ring, 1D stencil, master–worker) under injection.

use std::sync::Arc;

use failmpi::experiments::figures::FIG5_SRC;
use failmpi::prelude::*;
use failmpi::workloads::aux;

fn mini_spec(n: u32, programs: Vec<Arc<Program>>, seed: u64) -> ExperimentSpec {
    let mut cluster = VclConfig::small(n, SimDuration::from_secs(2));
    cluster.ssh_stagger = SimDuration::from_millis(20);
    cluster.restart_overhead = SimDuration::from_millis(400);
    cluster.terminate_delay = SimDuration::from_millis(30);
    ExperimentSpec {
        cluster,
        workload: Workload::Fixed(programs),
        injection: None,
        timeout: SimTime::from_secs(120),
        freeze_window: SimDuration::from_secs(12),
        seed,
        tie_break: TieBreak::Fifo,
        backend: failmpi_backend::BackendKind::Vcl,
    }
}

fn one_fault_every(spec: &mut ExperimentSpec, interval: i64) {
    let n_hosts = spec.cluster.n_compute_hosts;
    spec.injection = Some(
        InjectionSpec::new(FIG5_SRC, "ADV1", "ADVnodes")
            .with_param("X", interval)
            .with_param("N", n_hosts as i64 - 1),
    );
}

#[test]
fn token_ring_survives_faults() {
    // 50 laps with 100 ms of work per hop: ~20 s of sequential-dependency
    // chain — the worst case for rollback (any lost token stalls everyone).
    let programs = aux::ring_programs(
        4,
        50,
        4 << 10,
        SimDuration::from_millis(100),
        10 << 20,
    );
    let clean = run_one(&mini_spec(4, programs.clone(), 5));
    let t_clean = clean.outcome.time().expect("ring completes clean");

    let mut spec = mini_spec(4, programs, 5);
    one_fault_every(&mut spec, 8);
    let faulty = run_one(&spec);
    assert!(faulty.faults_injected >= 1);
    let t_faulty = faulty.outcome.time().expect("ring survives faults");
    assert!(t_faulty > t_clean);
    assert_eq!(faulty.max_progress, 50, "every lap completed");
}

#[test]
fn stencil_survives_faults() {
    let programs = aux::stencil_programs(
        6,
        40,
        64 << 10,
        SimDuration::from_millis(120),
        16 << 20,
    );
    let mut spec = mini_spec(6, programs, 6);
    one_fault_every(&mut spec, 4);
    let rec = run_one(&spec);
    assert!(rec.faults_injected >= 1, "no fault landed");
    assert!(
        matches!(rec.outcome, Outcome::Completed { .. }),
        "stencil under faults: {:?}",
        rec.outcome
    );
    assert_eq!(rec.max_progress, 40);
}

#[test]
fn master_worker_survives_a_master_or_worker_crash() {
    // The non-SPMD style the paper's Sec. 3 calls out. Rollback must also
    // restore the master's bookkeeping consistently.
    let programs = aux::master_worker_programs(
        4,
        60,
        32 << 10,
        8 << 10,
        SimDuration::from_millis(150),
        12 << 20,
    );
    let mut spec = mini_spec(4, programs, 7);
    one_fault_every(&mut spec, 2);
    let rec = run_one(&spec);
    assert!(rec.faults_injected >= 1);
    assert!(
        matches!(rec.outcome, Outcome::Completed { .. }),
        "farm under faults: {:?}",
        rec.outcome
    );
    assert_eq!(rec.max_progress, 60, "all tasks accounted for");
}

#[test]
fn rollback_preserves_ring_token_semantics() {
    // A deterministic single fault mid-run: after recovery the ring must
    // still deliver exactly `laps` progress markers per rank — no lap may
    // be lost or duplicated by the replayed channel state.
    let programs = aux::ring_programs(
        3,
        30,
        1 << 10,
        SimDuration::from_millis(80),
        8 << 20,
    );
    let src = r#"
        daemon OneShot {
          node 1:
            timer t = 3;
            t -> !crash(G1[1]), goto 2;
          node 2:
            ?ok -> goto 3;
            ?no -> goto 3;
          node 3:
        }
        daemon Ctl {
          node 1:
            onload -> continue, goto 2;
            ?crash -> !no(P1), goto 1;
          node 2:
            onexit -> goto 1;
            onerror -> goto 1;
            onload -> continue, goto 2;
            ?crash -> !ok(P1), halt, goto 1;
        }
    "#;
    let mut spec = mini_spec(3, programs, 8);
    spec.injection = Some(InjectionSpec::new(src, "OneShot", "Ctl"));
    let rec = run_one(&spec);
    assert!(matches!(rec.outcome, Outcome::Completed { .. }));
    assert_eq!(rec.faults_injected, 1);
    assert_eq!(rec.max_progress, 30);
}
