//! Whole-system property tests: randomized fault schedules against the
//! fault-tolerance guarantees.

use failmpi::experiments::{run_one_keeping_cluster, validate_trace};
use failmpi::prelude::*;
use proptest::prelude::*;
use proptest::test_runner::Config as PropConfig;

/// Builds a one-shot FAIL scenario crashing a machine at each given
/// (second, machine) pair, sequentially.
fn schedule_scenario(faults: &[(u8, u8)], n_machines: usize) -> String {
    let mut src = String::new();
    let mut nodes = String::new();
    let mut t_prev = 0u32;
    for (k, &(gap, machine)) in faults.iter().enumerate() {
        let at = t_prev + 1 + gap as u32 % 10;
        let delay = at - t_prev;
        t_prev = at;
        let m = machine as usize % n_machines;
        let node = 10 + 2 * k;
        nodes.push_str(&format!(
            "  node {node}:\n    timer t{k} = {delay};\n    t{k} -> !crash(G1[{m}]), goto {};\n",
            node + 1
        ));
        let next = if k + 1 < faults.len() { 10 + 2 * (k + 1) } else { 1 };
        nodes.push_str(&format!(
            "  node {}:\n    ?ok -> goto {next};\n    ?no -> goto {next};\n",
            node + 1
        ));
    }
    src.push_str("daemon Seq {\n");
    if faults.is_empty() {
        src.push_str("  node 1:\n");
    } else {
        src.push_str(&nodes);
        src.push_str("  node 1:\n");
    }
    src.push_str("}\n");
    src.push_str(
        "daemon Ctl {\n  node 1:\n    onload -> continue, goto 2;\n    ?crash -> !no(P1), goto 1;\n  node 2:\n    onexit -> goto 1;\n    onerror -> goto 1;\n    onload -> continue, goto 2;\n    ?crash -> !ok(P1), halt, goto 1;\n}\n",
    );
    src
}

fn spec_with(faults: &[(u8, u8)], mode: DispatcherMode, seed: u64) -> ExperimentSpec {
    let mut cluster = VclConfig::small(4, SimDuration::from_secs(2));
    cluster.dispatcher = mode;
    cluster.ssh_stagger = SimDuration::from_millis(20);
    cluster.restart_overhead = SimDuration::from_millis(400);
    cluster.terminate_delay = SimDuration::from_millis(30);
    let n_machines = cluster.n_compute_hosts;
    ExperimentSpec {
        cluster,
        workload: Workload::Bt(BtClass::S),
        injection: Some(InjectionSpec::new(
            &schedule_scenario(faults, n_machines),
            "Seq",
            "Ctl",
        )),
        timeout: SimTime::from_secs(200),
        freeze_window: SimDuration::from_secs(20),
        seed,
        tie_break: failmpi::prelude::TieBreak::Fifo,
        backend: failmpi::prelude::BackendKind::Vcl,
    }
}

proptest! {
    #![proptest_config(PropConfig::with_cases(16))]

    /// The fixed dispatcher is robust: ANY schedule of sequential crashes
    /// (arbitrary victims, 1–10 s apart) either completes or is merely
    /// starved — it never produces a frozen (buggy) run.
    #[test]
    fn fixed_dispatcher_never_freezes(
        faults in proptest::collection::vec((any::<u8>(), any::<u8>()), 0..6),
        seed in 0u64..1000,
    ) {
        let rec = run_one(&spec_with(&faults, DispatcherMode::Fixed, seed));
        prop_assert!(
            !rec.outcome.is_buggy(),
            "fixed dispatcher froze under {faults:?}: {:?}",
            rec.outcome
        );
    }

    /// Liveness under sparse faults: with generous spacing the job always
    /// completes, and every crash that landed produced exactly one
    /// detected recovery (historical dispatcher, no overlap ⇒ no bug).
    #[test]
    fn sparse_faults_always_complete(
        victims in proptest::collection::vec(any::<u8>(), 0..3),
        seed in 0u64..1000,
    ) {
        // 8–10 s apart: far beyond the miniature's recovery + wave cycle.
        let faults: Vec<(u8, u8)> = victims.iter().map(|&v| (7, v)).collect();
        let rec = run_one(&spec_with(&faults, DispatcherMode::Historical, seed));
        prop_assert!(
            matches!(rec.outcome, Outcome::Completed { .. }),
            "sparse schedule {faults:?} did not complete: {:?}",
            rec.outcome
        );
        // Each injected fault triggered exactly one recovery.
        prop_assert_eq!(rec.recoveries as u32, rec.faults_injected);
        prop_assert_eq!(rec.max_progress, BtClass::S.iterations);
    }

    /// Trace coherence: whatever the schedule and dispatcher variant, the
    /// execution trace satisfies every structural invariant (monotone
    /// waves, epoch numbering, spawn-before-register, complete-⇒-all-
    /// finalized…).
    #[test]
    fn any_schedule_yields_a_coherent_trace(
        faults in proptest::collection::vec((any::<u8>(), any::<u8>()), 0..5),
        seed in 0u64..1000,
        fixed: bool,
    ) {
        let mode = if fixed { DispatcherMode::Fixed } else { DispatcherMode::Historical };
        let (_, cluster) = run_one_keeping_cluster(&spec_with(&faults, mode, seed));
        validate_trace(&cluster).map_err(|e| {
            TestCaseError::fail(format!("schedule {faults:?}: {e}"))
        })?;
    }

    /// Determinism: any schedule, same seed ⇒ identical outcome and
    /// timeline, on both dispatcher variants.
    #[test]
    fn any_schedule_is_deterministic(
        faults in proptest::collection::vec((any::<u8>(), any::<u8>()), 0..4),
        seed in 0u64..1000,
        fixed: bool,
    ) {
        let mode = if fixed { DispatcherMode::Fixed } else { DispatcherMode::Historical };
        let a = run_one(&spec_with(&faults, mode, seed));
        let b = run_one(&spec_with(&faults, mode, seed));
        prop_assert_eq!(a.outcome, b.outcome);
        prop_assert_eq!(a.end, b.end);
        prop_assert_eq!(a.recoveries, b.recoveries);
        prop_assert_eq!(a.waves_committed, b.waves_committed);
    }
}

fn v2_spec(faults: &[(u8, u8)], seed: u64) -> ExperimentSpec {
    let mut spec = spec_with(faults, DispatcherMode::Historical, seed);
    spec.cluster.protocol = failmpi::mpichv::VProtocol::V2;
    spec
}

proptest! {
    #![proptest_config(PropConfig::with_cases(16))]

    /// V2 has no stop-the-world and hence no recovery-confusion window:
    /// ANY sequential crash schedule leaves it un-frozen (and its traces
    /// coherent), even under the historical dispatcher.
    #[test]
    fn v2_never_freezes_under_any_schedule(
        faults in proptest::collection::vec((any::<u8>(), any::<u8>()), 0..6),
        seed in 0u64..1000,
    ) {
        let (rec, cluster) = run_one_keeping_cluster(&v2_spec(&faults, seed));
        prop_assert!(
            !rec.outcome.is_buggy(),
            "V2 froze under {faults:?}: {:?}",
            rec.outcome
        );
        validate_trace(&cluster).map_err(|e| {
            TestCaseError::fail(format!("V2 schedule {faults:?}: {e}"))
        })?;
    }

    /// V2 sparse-fault completions preserve exact application semantics:
    /// full progress, one solo restart per fault, no fleet respawns.
    #[test]
    fn v2_sparse_faults_complete_with_solo_restarts(
        victims in proptest::collection::vec(any::<u8>(), 0..3),
        seed in 0u64..1000,
    ) {
        let faults: Vec<(u8, u8)> = victims.iter().map(|&v| (7, v)).collect();
        let (rec, cluster) = run_one_keeping_cluster(&v2_spec(&faults, seed));
        prop_assert!(
            matches!(rec.outcome, Outcome::Completed { .. }),
            "V2 sparse schedule {faults:?}: {:?}",
            rec.outcome
        );
        prop_assert_eq!(rec.max_progress, BtClass::S.iterations);
        // Fleet spawns = n + one per injected fault (solo restarts only).
        let spawns = cluster
            .trace()
            .count(|k| matches!(k, VclEvent::DaemonSpawned { .. }));
        prop_assert_eq!(
            spawns as u32,
            4 + rec.faults_injected,
            "stop-the-world detected under V2"
        );
    }
}
