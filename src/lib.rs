//! # failmpi — *FAIL-MPI: How fault-tolerant is fault-tolerant MPI?* in Rust
//!
//! A full reproduction of Hérault, Hoarau, Lemarinier, Rodriguez & Tixeuil
//! (INRIA/LRI RR-1450, CLUSTER 2006): the **FAIL** fault-scenario language,
//! the **FAIL-MPI** injection middleware, a reimplementation of the
//! **MPICH-Vcl** fault-tolerant MPI runtime (non-blocking Chandy–Lamport),
//! a deterministic cluster simulator to run it all on, and the paper's
//! complete evaluation (Table 1, Figs. 5–11) as reproducible experiments.
//!
//! This facade crate re-exports the workspace layers:
//!
//! | layer | crate | contents |
//! |---|---|---|
//! | [`sim`] | `failmpi-sim` | deterministic discrete-event kernel |
//! | [`net`] | `failmpi-net` | simulated TCP-like cluster network |
//! | [`core`](mod@core) | `failmpi-core` | the FAIL language + injection runtime |
//! | [`mpi`] | `failmpi-mpi` | virtual MPI op-programs |
//! | [`mpichv`] | `failmpi-mpichv` | the MPICH-Vcl runtime under test |
//! | [`workloads`] | `failmpi-workloads` | NAS-BT-pattern generators |
//! | [`experiments`] | `failmpi-experiments` | figure-by-figure evaluation |
//! | [`analyze`] | `failmpi-analyze` | static verification of scenarios & op-programs (`failck`) |
//!
//! ## Quickstart
//!
//! ```
//! use failmpi::prelude::*;
//!
//! // A miniature of the paper's headline experiment: strain MPICH-Vcl
//! // (historical dispatcher) with one fault every 4 virtual seconds.
//! let mut spec = ExperimentSpec {
//!     cluster: VclConfig::small(4, SimDuration::from_secs(2)),
//!     workload: Workload::Bt(BtClass::S),
//!     injection: Some(
//!         InjectionSpec::new(failmpi::experiments::figures::FIG5_SRC, "ADV1", "ADVnodes")
//!             .with_param("X", 4)
//!             .with_param("N", 5),
//!     ),
//!     timeout: SimTime::from_secs(90),
//!     freeze_window: SimDuration::from_secs(9),
//!     seed: 1,
//!     tie_break: TieBreak::Fifo,
//!     backend: BackendKind::Vcl,
//! };
//! let record = run_one(&spec);
//! assert!(record.faults_injected >= 1);
//!
//! // The same workload without faults finishes faster.
//! spec.injection = None;
//! let clean = run_one(&spec);
//! assert!(clean.outcome.time().unwrap() <= record.end);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use failmpi_analyze as analyze;
pub use failmpi_core as core;
pub use failmpi_experiments as experiments;
pub use failmpi_fuzz as fuzz;
pub use failmpi_mpi as mpi;
pub use failmpi_mpichv as mpichv;
pub use failmpi_net as net;
pub use failmpi_sim as sim;
pub use failmpi_workloads as workloads;

/// The names most programs need.
pub mod prelude {
    pub use failmpi_analyze::{analyze_programs, analyze_scenario, check_source, Report, Severity};
    pub use failmpi_core::{compile, Deployment, FailAction, FailInput, FailRuntime};
    pub use failmpi_experiments::{
        run_one, BackendKind, ExperimentSpec, InjectionSpec, LintMode, Outcome, RunRecord,
        Workload,
    };
    pub use failmpi_mpi::{Interp, Op, Program, ProgramBuilder, Rank, Tag};
    pub use failmpi_mpichv::{
        run_standalone, CheckpointStyle, Cluster, DispatcherMode, VclConfig, VclEvent,
    };
    pub use failmpi_sim::{Engine, Model, SimDuration, SimRng, SimTime, TieBreak};
    pub use failmpi_workloads::{bt_programs, bt_programs_noisy, BtClass};
}
